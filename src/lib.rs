//! # croxmap — mapping spiking neural networks to heterogeneous crossbars
//!
//! A Rust reproduction of *"Mapping Spiking Neural Networks to
//! Heterogeneous Crossbar Architectures using Integer Linear Programming"*
//! (DATE 2025). This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`snn`] | `croxmap-snn` | network graph model and sparsity statistics |
//! | [`mca`] | `croxmap-mca` | crossbar dimensions, area model, architecture catalogs, pools |
//! | [`ilp`] | `croxmap-ilp` | from-scratch anytime 0/1 ILP solver (simplex + branch & bound + LNS) |
//! | [`sim`] | `croxmap-sim` | LIF simulator, spike profiles, mapped-processor packet accounting |
//! | [`gen`] | `croxmap-gen` | calibrated network generators, EONS-lite, synthetic SmartPixel workload |
//! | [`core`] | `croxmap-core` | the paper's formulations, baselines, metrics and pipelines |
//!
//! ## Quickstart
//!
//! ```
//! use croxmap::prelude::*;
//!
//! // 1. A sparse network (scaled-down Table I analog).
//! let spec = NetworkSpec::scaled_a(16);
//! let network = generate(&spec);
//!
//! // 2. A heterogeneous crossbar pool (Table II catalog).
//! let arch = ArchitectureSpec::table_ii_heterogeneous();
//! let pool = CrossbarPool::for_network_capped(
//!     &arch,
//!     &AreaModel::memristor_count(),
//!     network.node_count(),
//!     2,
//! );
//!
//! // 3. Area-optimise with the axon-sharing ILP.
//! let config = PipelineConfig::with_budget(2.0);
//! let run = optimize_area(&network, &pool, &config);
//! let mapping = run.best_mapping().expect("mappable");
//! mapping.validate(&network, &pool).expect("valid");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use croxmap_core as core;
pub use croxmap_gen as gen;
pub use croxmap_ilp as ilp;
pub use croxmap_mca as mca;
pub use croxmap_sim as sim;
pub use croxmap_snn as snn;

/// Everything you need for the common flows, in one import.
pub mod prelude {
    pub use croxmap_core::baseline::{
        greedy_first_fit, local_search_area, local_search_routes, naive_sequential,
        spikehard_iterate,
    };
    pub use croxmap_core::pipeline::{
        area_snu_evolution, optimize_area, optimize_pgo_after_area, optimize_routes_after_area,
        OptimizationRun, PipelineConfig,
    };
    pub use croxmap_core::{
        FormulationConfig, Linking, Mapping, MappingIlp, MappingMetrics, MappingObjective,
    };
    pub use croxmap_gen::calibrated::{generate, NetworkSpec};
    pub use croxmap_gen::eons::{evolve, EonsConfig};
    pub use croxmap_gen::smartpixel::{EventSet, SmartPixelConfig};
    pub use croxmap_ilp::{Model, SolveStatus, Solver, SolverConfig};
    pub use croxmap_mca::{ArchitectureSpec, AreaModel, CrossbarDim, CrossbarPool};
    pub use croxmap_sim::{
        count_packets, count_routes, LifConfig, LifSimulator, SpikeProfile, SpikeTrain, Stimulus,
    };
    pub use croxmap_snn::{Network, NetworkBuilder, NetworkStats, NeuronId, NodeRole};
}
