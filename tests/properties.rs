//! Property-based tests over randomly generated networks, pools and
//! solver inputs.

use croxmap::prelude::*;
use croxmap_core::pipeline;
use proptest::prelude::*;

/// Strategy: a random simple digraph with `n` in 3..=8 nodes.
fn arb_network() -> impl Strategy<Value = Network> {
    (3usize..=8)
        .prop_flat_map(|n| {
            let edges = proptest::collection::btree_set((0..n, 0..n), 1..=(n * 2).min(12));
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = NetworkBuilder::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let role = if i == 0 {
                        NodeRole::Input
                    } else if i == n - 1 {
                        NodeRole::Output
                    } else {
                        NodeRole::Hidden
                    };
                    b.add_neuron(role, 1.0, 0.1)
                })
                .collect();
            for (u, v) in edges {
                b.add_edge(ids[u], ids[v], 0.8, 1).unwrap();
            }
            b.build().unwrap()
        })
}

fn arb_pool() -> impl Strategy<Value = CrossbarPool> {
    (2u32..=6, 2u32..=4, 2usize..=4).prop_map(|(inputs, outputs, count)| {
        CrossbarPool::from_counts(
            &AreaModel::memristor_count(),
            [
                (CrossbarDim::new(inputs, outputs), count),
                (CrossbarDim::new(inputs * 2, outputs), 2),
            ],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_mapping_always_validates(net in arb_network(), pool in arb_pool()) {
        if let Ok(m) = greedy_first_fit(&net, &pool) {
            prop_assert!(m.validate(&net, &pool).is_ok());
        }
    }

    #[test]
    fn ilp_solutions_always_validate(net in arb_network(), pool in arb_pool()) {
        let cfg = pipeline::PipelineConfig::with_budget(3.0);
        let run = pipeline::optimize_area(&net, &pool, &cfg);
        if let Some(m) = run.best_mapping() {
            prop_assert!(m.validate(&net, &pool).is_ok());
        }
    }

    #[test]
    fn warm_start_encoding_is_feasible(net in arb_network(), pool in arb_pool()) {
        if let Ok(m) = greedy_first_fit(&net, &pool) {
            let ilp = MappingIlp::build(
                &net,
                &pool,
                &MappingObjective::Area,
                &FormulationConfig::new(),
            );
            let warm = ilp.warm_start(&net, &m);
            prop_assert!(ilp.model().is_feasible(&warm, 1e-6));
            // Decoding the warm start recovers the mapping.
            let sol = croxmap::ilp::Solution::new(warm, 0.0);
            prop_assert_eq!(ilp.decode(&sol), m);
        }
    }

    #[test]
    fn route_objective_equals_metric(net in arb_network(), pool in arb_pool()) {
        if let Ok(m) = greedy_first_fit(&net, &pool) {
            let ilp = MappingIlp::build(
                &net,
                &pool,
                &MappingObjective::GlobalRoutes,
                &FormulationConfig::new(),
            );
            let warm = ilp.warm_start(&net, &m);
            let obj = ilp.model().objective_value(&warm);
            let routes = count_routes(&net, m.assignment());
            prop_assert!((obj - routes.global as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn total_route_objective_equals_metric(net in arb_network(), pool in arb_pool()) {
        if let Ok(m) = greedy_first_fit(&net, &pool) {
            let ilp = MappingIlp::build(
                &net,
                &pool,
                &MappingObjective::TotalRoutes,
                &FormulationConfig::new(),
            );
            let warm = ilp.warm_start(&net, &m);
            let obj = ilp.model().objective_value(&warm);
            let routes = count_routes(&net, m.assignment());
            prop_assert!((obj - routes.total() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn packets_never_below_weighted_routes_lower_bound(net in arb_network(), pool in arb_pool()) {
        // For any mapping and any profile, measured packets from a real
        // simulation equal the Eq. 12 prediction on that simulation's
        // own profile.
        if let Ok(m) = greedy_first_fit(&net, &pool) {
            let input = net.input_ids().next().unwrap();
            let stim = Stimulus::new([(input, SpikeTrain::periodic(0, 2, 12))]);
            let rec = LifSimulator::default().run(&net, &stim, 12);
            let profile = SpikeProfile::from_record(&rec);
            let measured = count_packets(&net, m.assignment(), &rec).global;
            let predicted = croxmap::sim::predicted_global_packets(
                &net,
                m.assignment(),
                profile.counts(),
            );
            prop_assert_eq!(measured, predicted);
        }
    }

    #[test]
    fn gini_index_bounded(values in proptest::collection::vec(0.0f64..100.0, 1..40)) {
        let g = croxmap::snn::gini_index(&values);
        prop_assert!((0.0..=1.0).contains(&g), "gini {}", g);
    }

    #[test]
    fn simulator_fire_counts_bounded_by_steps(net in arb_network(), steps in 1u32..20) {
        let input = net.input_ids().next().unwrap();
        let stim = Stimulus::new([(input, SpikeTrain::periodic(0, 1, steps))]);
        let rec = LifSimulator::default().run(&net, &stim, steps);
        for i in net.neuron_ids() {
            prop_assert!(rec.fire_count(i) <= u64::from(steps));
        }
    }
}
