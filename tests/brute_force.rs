//! Cross-checks the ILP formulations against exhaustive enumeration on
//! tiny instances: the ground truth for area (Eq. 8) and global routes
//! (Eq. 11) is computed by trying every neuron→slot assignment.

use croxmap::prelude::*;
use croxmap_core::pipeline;

/// Enumerates every total assignment and returns the minimum area and the
/// minimum global-route count among *valid* mappings.
fn brute_force(network: &Network, pool: &CrossbarPool) -> Option<(f64, u64)> {
    let n = network.node_count();
    let j = pool.len();
    let mut best_area = f64::INFINITY;
    let mut best_routes = u64::MAX;
    let mut assignment = vec![0usize; n];
    let total = (j as u64).pow(n as u32);
    for code in 0..total {
        let mut c = code;
        for slot in assignment.iter_mut() {
            *slot = (c % j as u64) as usize;
            c /= j as u64;
        }
        let mapping = Mapping::new(assignment.clone());
        if mapping.validate(network, pool).is_ok() {
            best_area = best_area.min(mapping.area(pool));
            best_routes = best_routes.min(count_routes(network, mapping.assignment()).global);
        }
    }
    if best_area.is_finite() {
        Some((best_area, best_routes))
    } else {
        None
    }
}

fn tiny_networks() -> Vec<Network> {
    let mut nets = Vec::new();
    // Chain of 4.
    {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0, 1).unwrap();
        }
        nets.push(b.build().unwrap());
    }
    // Diamond.
    {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0))
            .collect();
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(ids[u], ids[v], 1.0, 1).unwrap();
        }
        nets.push(b.build().unwrap());
    }
    // Star + tail with a self loop.
    {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0))
            .collect();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 4)] {
            b.add_edge(ids[u], ids[v], 1.0, 1).unwrap();
        }
        nets.push(b.build().unwrap());
    }
    // Dense 5-node with inhibition pattern (structure only matters).
    {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0))
            .collect();
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (1, 4)] {
            b.add_edge(ids[u], ids[v], 1.0, 1).unwrap();
        }
        nets.push(b.build().unwrap());
    }
    nets
}

fn tiny_pools() -> Vec<CrossbarPool> {
    let area = AreaModel::memristor_count();
    vec![
        CrossbarPool::from_counts(&area, [(CrossbarDim::new(4, 2), 3)]),
        CrossbarPool::from_counts(
            &area,
            [(CrossbarDim::new(2, 2), 2), (CrossbarDim::new(4, 4), 2)],
        ),
        CrossbarPool::from_counts(
            &area,
            [(CrossbarDim::new(3, 1), 2), (CrossbarDim::new(6, 3), 2)],
        ),
    ]
}

#[test]
fn ilp_area_matches_brute_force() {
    let config = pipeline::PipelineConfig::with_budget(20.0);
    for (ni, net) in tiny_networks().iter().enumerate() {
        for (pi, pool) in tiny_pools().iter().enumerate() {
            let truth = brute_force(net, pool);
            let run = pipeline::optimize_area(net, pool, &config);
            match truth {
                None => assert!(
                    run.best_mapping().is_none(),
                    "net {ni} pool {pi}: ILP found a mapping where none exists"
                ),
                Some((best_area, _)) => {
                    let m = run
                        .best_mapping()
                        .unwrap_or_else(|| panic!("net {ni} pool {pi}: ILP found nothing"));
                    m.validate(net, pool).unwrap();
                    assert_eq!(run.status, SolveStatus::Optimal, "net {ni} pool {pi}");
                    assert!(
                        (m.area(pool) - best_area).abs() < 1e-9,
                        "net {ni} pool {pi}: ILP {} vs brute force {best_area}",
                        m.area(pool)
                    );
                }
            }
        }
    }
}

#[test]
fn ilp_global_routes_match_brute_force() {
    // Unrestricted GlobalRoutes optimisation must reach the brute-force
    // minimum when every slot is admissible.
    let config = pipeline::PipelineConfig::with_budget(20.0);
    for (ni, net) in tiny_networks().iter().enumerate() {
        let pool =
            CrossbarPool::from_counts(&AreaModel::memristor_count(), [(CrossbarDim::new(8, 3), 2)]);
        let Some((_, best_routes)) = brute_force(net, &pool) else {
            continue;
        };
        // Optimise routes over the full pool (restrict_to_slots = all).
        let base = greedy_first_fit(net, &pool).expect("greedy");
        let all_slots = Mapping::new(base.assignment().to_vec());
        let mut cfg = config.clone();
        cfg.formulation.restrict_to_slots = Some((0..pool.len()).collect());
        let run = pipeline::optimize_routes_after_area(net, &pool, &all_slots, &cfg);
        let m = run.best_mapping().expect("feasible");
        let got = count_routes(net, m.assignment()).global;
        assert_eq!(
            got, best_routes,
            "net {ni}: ILP routes {got} vs brute force {best_routes}"
        );
    }
}

#[test]
fn spikehard_never_beats_axon_sharing_on_area() {
    // The MCC relaxation over-constrains inputs, so its optimum can never
    // be better than the axon-sharing optimum.
    let config = pipeline::PipelineConfig::with_budget(20.0);
    let solver_cfg = SolverConfig::default().with_det_time_limit(10.0);
    for net in tiny_networks() {
        for pool in tiny_pools() {
            let Ok(initial) = greedy_first_fit(&net, &pool) else {
                continue;
            };
            let sh =
                spikehard_iterate(&net, &pool, &initial, &solver_cfg, 8).expect("valid initial");
            let sh_area = sh.best().map_or_else(|| initial.area(&pool), |r| r.area);
            let ours = pipeline::optimize_area(&net, &pool, &config);
            if let Some(m) = ours.best_mapping() {
                assert!(
                    m.area(&pool) <= sh_area + 1e-9,
                    "axon sharing must not lose: {} vs {sh_area}",
                    m.area(&pool)
                );
            }
        }
    }
}
