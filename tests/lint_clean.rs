//! Tier-1 gate: the workspace must scan clean under `croxmap-lint`.
//!
//! This is the same analysis `cargo run -p croxmap-lint -- --deny` runs
//! in CI, wired into plain `cargo test -q` so a determinism or
//! concurrency-hygiene violation fails the suite the moment it is
//! introduced — with the finding's file, line, snippet and the waiver
//! syntax in the assertion message. Beyond cleanliness, the committed
//! artifacts are checked for freshness: `docs/lock_order.md` must match
//! the graph the scan just built, and `lint-baseline.json` must parse.

use std::path::Path;

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = croxmap_lint::scan_workspace_full(root).expect("workspace scan runs");
    let report = &out.report;
    assert!(
        report.is_clean(),
        "croxmap-lint found unwaived violations:\n{}",
        report.render()
    );
    // Sanity-check the scan actually covered the tree: the workspace has
    // dozens of sources, and a walker bug that scanned nothing would
    // otherwise pass vacuously.
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}); walker broken?",
        report.files
    );
    // Every suppression carries a non-empty reason by construction
    // (malformed waivers are findings, the allowlist parser rejects
    // empty reasons) — assert it end-to-end anyway.
    for (finding, reason) in &report.waived {
        assert!(
            !reason.trim().is_empty(),
            "waiver without reason at {finding}"
        );
    }
}

#[test]
fn lock_order_contract_is_acyclic_and_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = croxmap_lint::scan_workspace_full(root).expect("workspace scan runs");
    assert!(
        out.lock_graph.find_cycle().is_none(),
        "lock graph has a cycle: {:?}",
        out.lock_graph.find_cycle()
    );
    // The committed contract must be exactly what the scan proves now —
    // regenerate with `cargo run -p croxmap-lint -- --lock-graph`.
    let committed = std::fs::read_to_string(root.join("docs/lock_order.md"))
        .expect("docs/lock_order.md is committed");
    assert_eq!(
        committed.trim(),
        out.lock_graph.render_contract().trim(),
        "docs/lock_order.md is stale; regenerate with `cargo run -p croxmap-lint -- --lock-graph > docs/lock_order.md`"
    );
}

#[test]
fn lint_baseline_parses_and_matches_schema() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed");
    let baseline =
        croxmap_lint::baseline::Baseline::parse(&text).expect("committed baseline parses");
    // The baseline and the live scan agree through the same partition
    // CI's `--baseline` step uses: no finding may be new.
    let out = croxmap_lint::scan_workspace_full(root).expect("workspace scan runs");
    let (new, _old) = baseline.partition(&out.report.findings);
    assert!(
        new.is_empty(),
        "findings not covered by lint-baseline.json: {new:?}"
    );
}
