//! Tier-1 gate: the workspace must scan clean under `croxmap-lint`.
//!
//! This is the same analysis `cargo run -p croxmap-lint -- --deny` runs
//! in CI, wired into plain `cargo test -q` so a determinism or
//! concurrency-hygiene violation fails the suite the moment it is
//! introduced — with the finding's file, line, snippet and the waiver
//! syntax in the assertion message.

use std::path::Path;

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = croxmap_lint::scan_workspace(root).expect("workspace scan runs");
    assert!(
        report.is_clean(),
        "croxmap-lint found unwaived violations:\n{}",
        report.render()
    );
    // Sanity-check the scan actually covered the tree: the workspace has
    // dozens of sources, and a walker bug that scanned nothing would
    // otherwise pass vacuously.
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}); walker broken?",
        report.files
    );
    // Every suppression carries a non-empty reason by construction
    // (malformed waivers are findings, the allowlist parser rejects
    // empty reasons) — assert it end-to-end anyway.
    for (finding, reason) in &report.waived {
        assert!(
            !reason.trim().is_empty(),
            "waiver without reason at {finding}"
        );
    }
}
