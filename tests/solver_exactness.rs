//! Property-based exactness check of the ILP engine itself: random small
//! 0/1 models are solved both by `croxmap-ilp` and by exhaustive
//! enumeration, and the optima must agree.

use croxmap::ilp::{Model, SolveStatus, Solver, SolverConfig, VarId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomIlp {
    n: usize,
    /// (coeffs per var, sense_le, rhs) rows; coeffs in -3..=3.
    rows: Vec<(Vec<i32>, bool, i32)>,
    objective: Vec<i32>,
}

fn arb_ilp() -> impl Strategy<Value = RandomIlp> {
    (2usize..=7)
        .prop_flat_map(|n| {
            let row = (
                proptest::collection::vec(-3i32..=3, n),
                any::<bool>(),
                -4i32..=6,
            );
            let rows = proptest::collection::vec(row, 1..=5);
            let objective = proptest::collection::vec(-5i32..=5, n);
            (Just(n), rows, objective)
        })
        .prop_map(|(n, rows, objective)| RandomIlp { n, rows, objective })
}

fn build(ilp: &RandomIlp) -> (Model, Vec<VarId>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..ilp.n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for (r, (coeffs, le, rhs)) in ilp.rows.iter().enumerate() {
        let expr = m.expr(vars.iter().zip(coeffs).map(|(&v, &c)| (v, f64::from(c))));
        let cmp = if *le {
            expr.leq(f64::from(*rhs))
        } else {
            expr.geq(f64::from(*rhs))
        };
        m.add_constraint(format!("r{r}"), cmp);
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .zip(&ilp.objective)
                .map(|(&v, &c)| (v, f64::from(c))),
        ),
    );
    (m, vars)
}

/// Exhaustive optimum over all 2^n assignments, if any is feasible.
fn brute_force(ilp: &RandomIlp) -> Option<i64> {
    let mut best: Option<i64> = None;
    for code in 0u32..(1 << ilp.n) {
        let assignment: Vec<i64> = (0..ilp.n).map(|i| i64::from((code >> i) & 1)).collect();
        let feasible = ilp.rows.iter().all(|(coeffs, le, rhs)| {
            let lhs: i64 = coeffs
                .iter()
                .zip(&assignment)
                .map(|(&c, &x)| i64::from(c) * x)
                .sum();
            if *le {
                lhs <= i64::from(*rhs)
            } else {
                lhs >= i64::from(*rhs)
            }
        });
        if feasible {
            let obj: i64 = ilp
                .objective
                .iter()
                .zip(&assignment)
                .map(|(&c, &x)| i64::from(c) * x)
                .sum();
            best = Some(best.map_or(obj, |b: i64| b.min(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_matches_brute_force(ilp in arb_ilp()) {
        let (model, _) = build(&ilp);
        let truth = brute_force(&ilp);
        let result = Solver::new(SolverConfig::default().with_det_time_limit(10.0))
            .solve(&model);
        match truth {
            None => {
                prop_assert_eq!(result.status, SolveStatus::Infeasible);
                prop_assert!(result.best.is_none());
            }
            Some(opt) => {
                let best = result.best.expect("solver must find a solution");
                prop_assert_eq!(result.status, SolveStatus::Optimal);
                prop_assert!((best.objective() - opt as f64).abs() < 1e-6,
                    "solver {} vs brute force {}", best.objective(), opt);
                // And the reported solution must really be feasible.
                prop_assert!(model.is_feasible(best.values(), 1e-6));
            }
        }
    }

    #[test]
    fn warm_started_solver_matches_brute_force(ilp in arb_ilp()) {
        let (model, _) = build(&ilp);
        let Some(opt) = brute_force(&ilp) else { return Ok(()); };
        // Find any feasible point to warm start from.
        let warm = (0u32..(1 << ilp.n)).find_map(|code| {
            let v: Vec<f64> = (0..ilp.n).map(|i| f64::from((code >> i) & 1)).collect();
            model.is_feasible(&v, 1e-9).then_some(v)
        });
        let solver = Solver::new(SolverConfig::default().with_det_time_limit(10.0));
        let result = match warm {
            Some(w) => solver.solve_with_warm_start(&model, &w),
            None => solver.solve(&model),
        };
        let best = result.best.expect("feasible by construction");
        prop_assert!((best.objective() - opt as f64).abs() < 1e-6);
    }

    #[test]
    fn branch_priorities_do_not_change_the_optimum(ilp in arb_ilp()) {
        let (mut model, vars) = build(&ilp);
        let Some(opt) = brute_force(&ilp) else { return Ok(()); };
        // Arbitrary priority spread must not affect correctness.
        for (i, &v) in vars.iter().enumerate() {
            model.set_branch_priority(v, (i % 3) as i32);
        }
        let result = Solver::new(SolverConfig::default().with_det_time_limit(10.0))
            .solve(&model);
        let best = result.best.expect("feasible");
        prop_assert!((best.objective() - opt as f64).abs() < 1e-6);
    }
}
