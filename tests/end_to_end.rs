//! End-to-end integration tests spanning every crate: generated networks,
//! area → SNU → PGO pipelines, and cross-validation of the static metrics
//! against the packet-level processor simulation.

use croxmap::gen::smartpixel;
use croxmap::prelude::*;
use croxmap_core::pipeline;

fn scaled_network() -> Network {
    generate(&NetworkSpec::scaled_a(14))
}

fn het_pool(n: usize) -> CrossbarPool {
    CrossbarPool::for_network_capped(
        &ArchitectureSpec::table_ii_heterogeneous(),
        &AreaModel::memristor_count(),
        n,
        2,
    )
}

#[test]
fn area_pipeline_on_generated_network() {
    let net = scaled_network();
    let pool = het_pool(net.node_count());
    let run = pipeline::optimize_area(&net, &pool, &pipeline::PipelineConfig::with_budget(15.0));
    let m = run.best_mapping().expect("mappable");
    m.validate(&net, &pool).unwrap();
    // The incumbent stream is strictly improving and time-ordered.
    for w in run.incumbents.windows(2) {
        assert!(w[1].objective < w[0].objective);
        assert!(w[1].det_time >= w[0].det_time);
    }
}

#[test]
fn heterogeneous_beats_homogeneous_area() {
    // The paper's headline: on sparse networks, a heterogeneous catalog
    // yields (much) lower area than homogeneous 16×16.
    let net = scaled_network();
    let hom_pool = CrossbarPool::for_network(
        &ArchitectureSpec::paper_homogeneous(),
        &AreaModel::memristor_count(),
        net.node_count(),
        16,
    );
    let het_pool = het_pool(net.node_count());
    let cfg = pipeline::PipelineConfig::with_budget(15.0);
    let hom = pipeline::optimize_area(&net, &hom_pool, &cfg);
    let het = pipeline::optimize_area(&net, &het_pool, &cfg);
    let hom_area = hom.best_objective().expect("hom feasible");
    let het_area = het.best_objective().expect("het feasible");
    assert!(
        het_area < hom_area,
        "heterogeneous {het_area} must beat homogeneous {hom_area}"
    );
}

#[test]
fn snu_then_pgo_chain_preserves_area_and_improves_routes() {
    let net = scaled_network();
    let pool = het_pool(net.node_count());
    let cfg = pipeline::PipelineConfig::with_budget(10.0);
    let area_run = pipeline::optimize_area(&net, &pool, &cfg);
    let base = area_run.best_mapping().expect("mappable").clone();
    let base_area = base.area(&pool);
    let base_routes = count_routes(&net, base.assignment()).global;

    let snu_run = pipeline::optimize_routes_after_area(&net, &pool, &base, &cfg);
    let snu = snu_run.best_mapping().expect("base stays feasible");
    assert!(snu.area(&pool) <= base_area + 1e-9);
    let snu_routes = count_routes(&net, snu.assignment()).global;
    assert!(snu_routes <= base_routes);

    // PGO with uniform weights is equivalent to SNU up to solver budget.
    let weights = vec![1u64; net.node_count()];
    let pgo_run = pipeline::optimize_pgo_after_area(&net, &pool, &base, &weights, &cfg);
    let pgo = pgo_run.best_mapping().expect("base stays feasible");
    assert!(pgo.area(&pool) <= base_area + 1e-9);
}

#[test]
fn metrics_match_processor_simulation() {
    // Static route metrics and the packet-level simulation must agree:
    // measured global packets == Σ W_k · (global targets of k) when W is
    // the profile of the same run.
    let net = scaled_network();
    let pool = het_pool(net.node_count());
    let cfg = pipeline::PipelineConfig::with_budget(8.0);
    let mapping = pipeline::optimize_area(&net, &pool, &cfg)
        .best_mapping()
        .expect("mappable")
        .clone();

    let events = EventSet::generate(&SmartPixelConfig::default(), 20);
    let sim = LifSimulator::default();
    let mut measured = 0u64;
    let mut profile = SpikeProfile::with_len(net.node_count());
    for e in events.events() {
        let stim = smartpixel::encode(&net, e, 16);
        let rec = sim.run(&net, &stim, 16);
        measured += count_packets(&net, mapping.assignment(), &rec).global;
        profile.merge(&SpikeProfile::from_record(&rec));
    }
    let metrics = MappingMetrics::with_profile(&net, &pool, &mapping, profile.counts());
    assert_eq!(metrics.predicted_packets, Some(measured));
}

#[test]
fn pgo_beats_or_ties_snu_on_predicted_packets() {
    // On a small instance with generous budget, PGO's optimum for Eq. 12
    // must be at least as good as evaluating Eq. 12 on the SNU mapping.
    let net = generate(&NetworkSpec::scaled_a(20));
    let pool = het_pool(net.node_count());
    let cfg = pipeline::PipelineConfig::with_budget(20.0);
    let base = pipeline::optimize_area(&net, &pool, &cfg)
        .best_mapping()
        .expect("mappable")
        .clone();

    // Skewed profile: a couple of hot neurons.
    let mut weights = vec![1u64; net.node_count()];
    weights[0] = 50;
    weights[net.node_count() / 2] = 30;

    let snu = pipeline::optimize_routes_after_area(&net, &pool, &base, &cfg)
        .best_mapping()
        .expect("feasible")
        .clone();
    let pgo = pipeline::optimize_pgo_after_area(&net, &pool, &base, &weights, &cfg)
        .best_mapping()
        .expect("feasible")
        .clone();
    let snu_packets = croxmap::sim::predicted_global_packets(&net, snu.assignment(), &weights);
    let pgo_packets = croxmap::sim::predicted_global_packets(&net, pgo.assignment(), &weights);
    assert!(
        pgo_packets <= snu_packets,
        "PGO {pgo_packets} must not lose to SNU {snu_packets} on its own objective"
    );
}

#[test]
fn eons_champion_is_mappable() {
    let cfg = EonsConfig {
        population: 8,
        generations: 4,
        hidden_count: 8,
        ..EonsConfig::default()
    };
    let events = EventSet::generate(&SmartPixelConfig::default(), 10);
    let sim = LifSimulator::default();
    let run = evolve(&cfg, |n| smartpixel::accuracy(n, &sim, &events, 12));
    let net = run.best.to_network(&cfg);
    let pool = het_pool(net.node_count());
    let mapping =
        pipeline::optimize_area(&net, &pool, &pipeline::PipelineConfig::with_budget(10.0))
            .best_mapping()
            .expect("evolved networks are mappable")
            .clone();
    mapping.validate(&net, &pool).unwrap();
}

#[test]
fn deterministic_pipeline_runs() {
    let net = scaled_network();
    let pool = het_pool(net.node_count());
    let cfg = pipeline::PipelineConfig::with_budget(5.0);
    let a = pipeline::optimize_area(&net, &pool, &cfg);
    let b = pipeline::optimize_area(&net, &pool, &cfg);
    assert_eq!(a.det_time, b.det_time);
    assert_eq!(a.incumbents.len(), b.incumbents.len());
    for (x, y) in a.incumbents.iter().zip(&b.incumbents) {
        assert_eq!(x.mapping, y.mapping);
        assert_eq!(x.det_time, y.det_time);
    }
}
