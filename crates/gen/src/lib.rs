//! # croxmap-gen — network generators and synthetic workloads
//!
//! The paper evaluates on five EONS-trained SNNs for a high-energy-physics
//! SmartPixel filtering task. Neither the trained networks nor the 5 GB
//! dataset are redistributable, so this crate regenerates equivalents:
//!
//! * [`calibrated`] — a stochastic sparse-graph generator whose outputs
//!   match the published Table I statistics (node/edge counts, max fan-in,
//!   edge density, in/out Gini sparsity index). These are the workloads the
//!   mapping experiments consume.
//! * [`eons`] — a compact evolutionary optimiser in the spirit of EONS
//!   (Schuman et al.): tournament selection and structural mutation over
//!   edge sets with a parsimony pressure that yields sparse networks. Used
//!   by the end-to-end example to show the full train→map pipeline.
//! * [`smartpixel`] — a synthetic pixel-detector event generator: charged
//!   particle tracks deposit charge clusters on a pixel matrix, which are
//!   encoded as spike trains. Binary "keep/filter" labels follow the track
//!   inclination, mirroring the on-sensor filtering task of the paper's
//!   reference \[35\].
//!
//! ## Example
//!
//! ```
//! use croxmap_gen::calibrated::{NetworkSpec, generate};
//!
//! let spec = NetworkSpec::table_i_a();
//! let net = generate(&spec);
//! assert_eq!(net.node_count(), 229);
//! let stats = net.stats();
//! assert!(stats.max_fan_in <= 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrated;
pub mod eons;
pub mod smartpixel;
