//! Stochastic sparse-network generator calibrated to Table I.
//!
//! The paper's five networks (A–E) are described by their statistics:
//!
//! | Net | Nodes | Edges | Max fan-in | Density | Gini in | Gini out |
//! |-----|-------|-------|------------|---------|---------|----------|
//! | A   | 229   | 464   | 11         | 0.0088  | 0.6889  | 0.6764   |
//! | B   | 257   | 464   | 10         | 0.0070  | 0.6411  | 0.6304   |
//! | C   | 148   | 487   | 15         | 0.0222  | 0.5744  | 0.6067   |
//! | D   | 253   | 499   | 13         | 0.0078  | 0.6431  | 0.6541   |
//! | E   | 150   | 446   | 11         | 0.0198  | 0.5876  | 0.6229   |
//!
//! This module samples graphs with heavy-tailed degree propensities
//! (truncated Pareto) so the generated in/out degree distributions land in
//! the same Gini range, with hard caps on fan-in matching the table.

use croxmap_snn::{Network, NetworkBuilder, NeuronId, NodeRole};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of one generated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Display name ("A".."E" for the Table I analogs).
    pub name: String,
    /// Total neuron count.
    pub node_count: usize,
    /// Total synapse count.
    pub edge_count: usize,
    /// Hard cap on any neuron's fan-in.
    pub max_fan_in: usize,
    /// Number of input neurons (spike-train entry points).
    pub input_count: usize,
    /// Number of output neurons (classification readout).
    pub output_count: usize,
    /// Pareto shape for degree propensities; smaller = more concentrated
    /// (higher Gini). Values around 1.2–1.8 reproduce Table I.
    pub concentration: f64,
    /// RNG seed — generation is fully deterministic per spec.
    pub seed: u64,
}

impl NetworkSpec {
    /// A scaled-down spec for fast tests and default benches: same shape as
    /// network A at roughly `1/scale` size.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn scaled_a(scale: usize) -> Self {
        assert!(scale > 0, "scale must be positive");
        NetworkSpec {
            name: format!("A/{scale}"),
            node_count: (229 / scale).max(8),
            edge_count: (464 / scale).max(10),
            max_fan_in: 11,
            input_count: (16 / scale).max(2),
            output_count: 2,
            concentration: 1.4,
            seed: 0xA,
        }
    }

    /// Table I network A analog.
    #[must_use]
    pub fn table_i_a() -> Self {
        NetworkSpec {
            name: "A".into(),
            node_count: 229,
            edge_count: 464,
            max_fan_in: 11,
            input_count: 16,
            output_count: 2,
            concentration: 1.0,
            seed: 0xA,
        }
    }

    /// Table I network B analog.
    #[must_use]
    pub fn table_i_b() -> Self {
        NetworkSpec {
            name: "B".into(),
            node_count: 257,
            edge_count: 464,
            max_fan_in: 10,
            input_count: 16,
            output_count: 2,
            concentration: 1.1,
            seed: 0xB,
        }
    }

    /// Table I network C analog.
    #[must_use]
    pub fn table_i_c() -> Self {
        NetworkSpec {
            name: "C".into(),
            node_count: 148,
            edge_count: 487,
            max_fan_in: 15,
            input_count: 16,
            output_count: 2,
            concentration: 1.25,
            seed: 0xC,
        }
    }

    /// Table I network D analog.
    #[must_use]
    pub fn table_i_d() -> Self {
        NetworkSpec {
            name: "D".into(),
            node_count: 253,
            edge_count: 499,
            max_fan_in: 13,
            input_count: 16,
            output_count: 2,
            concentration: 1.1,
            seed: 0xD,
        }
    }

    /// Table I network E analog.
    #[must_use]
    pub fn table_i_e() -> Self {
        NetworkSpec {
            name: "E".into(),
            node_count: 150,
            edge_count: 446,
            max_fan_in: 11,
            input_count: 16,
            output_count: 2,
            concentration: 1.2,
            seed: 0xE,
        }
    }

    /// All five Table I analogs, in order A–E.
    #[must_use]
    pub fn table_i_all() -> Vec<NetworkSpec> {
        vec![
            NetworkSpec::table_i_a(),
            NetworkSpec::table_i_b(),
            NetworkSpec::table_i_c(),
            NetworkSpec::table_i_d(),
            NetworkSpec::table_i_e(),
        ]
    }

    /// All five analogs scaled down by `scale` (for quick benches).
    #[must_use]
    pub fn table_i_scaled(scale: usize) -> Vec<NetworkSpec> {
        NetworkSpec::table_i_all()
            .into_iter()
            .map(|mut s| {
                s.name = format!("{}/{scale}", s.name);
                s.node_count = (s.node_count / scale).max(8);
                s.edge_count = (s.edge_count / scale).max(10);
                s.input_count = (s.input_count / scale).max(2);
                s
            })
            .collect()
    }
}

/// Samples a truncated-Pareto propensity in `[1, cap]`.
fn pareto(rng: &mut SmallRng, shape: f64, cap: f64) -> f64 {
    // lint: allow(tolerance-drift) — sampling-domain guard keeping the
    // Pareto inverse finite, not a solver tolerance (gen has no ilp dep).
    let u: f64 = rng.gen_range(1e-9..1.0f64);
    (1.0 / u.powf(1.0 / shape)).min(cap)
}

/// Generates a network matching `spec`.
///
/// Properties guaranteed by construction:
///
/// * exactly `spec.node_count` neurons,
/// * exactly `spec.edge_count` synapses (no duplicates),
/// * every fan-in `≤ spec.max_fan_in`,
/// * the first `input_count` neurons are [`NodeRole::Input`] and the last
///   `output_count` are [`NodeRole::Output`],
/// * deterministic for a fixed spec.
///
/// Degree distributions follow heavy-tailed propensities so the Gini
/// sparsity indices land in Table I's 0.55–0.70 range (asserted in tests).
///
/// # Panics
///
/// Panics if the spec is internally inconsistent (more edges than a simple
/// graph of that size and fan-in cap can carry, or roles exceeding nodes).
#[must_use]
pub fn generate(spec: &NetworkSpec) -> Network {
    let n = spec.node_count;
    assert!(
        spec.input_count + spec.output_count <= n,
        "roles exceed node count"
    );
    assert!(
        spec.edge_count <= n * spec.max_fan_in,
        "edge count exceeds fan-in capacity"
    );
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    let mut builder = NetworkBuilder::new();
    let ids: Vec<NeuronId> = (0..n)
        .map(|i| {
            let role = if i < spec.input_count {
                NodeRole::Input
            } else if i >= n - spec.output_count {
                NodeRole::Output
            } else {
                NodeRole::Hidden
            };
            let threshold = rng.gen_range(0.4..1.4);
            let leak = rng.gen_range(0.0..0.25);
            builder.add_neuron(role, threshold, leak)
        })
        .collect();

    // Heavy-tailed propensities; inputs get extra out-propensity (they must
    // drive the network) and outputs extra in-propensity.
    let out_prop: Vec<f64> = (0..n)
        .map(|i| {
            let base = pareto(&mut rng, spec.concentration, 64.0);
            if i < spec.input_count {
                base * 2.0
            } else if i >= n - spec.output_count {
                base * 0.1
            } else {
                base
            }
        })
        .collect();
    let in_prop: Vec<f64> = (0..n)
        .map(|i| {
            let base = pareto(&mut rng, spec.concentration, 64.0);
            if i < spec.input_count {
                base * 0.1
            } else {
                base
            }
        })
        .collect();

    // Cumulative samplers.
    let sample = |rng: &mut SmallRng, weights: &[f64], blocked: &dyn Fn(usize) -> bool| -> usize {
        let total: f64 = weights
            .iter()
            .enumerate()
            .filter(|&(i, _)| !blocked(i))
            .map(|(_, &w)| w)
            .sum();
        // lint: allow(tolerance-drift) — degenerate-weight guard for the
        // roulette draw, not a solver tolerance (gen has no ilp dep).
        let mut target = rng.gen_range(0.0..total.max(1e-12));
        for (i, &w) in weights.iter().enumerate() {
            if blocked(i) {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        // Fallback: last unblocked index.
        (0..weights.len())
            .rev()
            .find(|&i| !blocked(i))
            // lint: allow(panic-path) — callers invoke the sampler only after checking some index is unblocked; an empty scan means the degree bookkeeping broke, a bug to stop on
            .expect("at least one unblocked index")
    };

    let mut in_degree = vec![0usize; n];
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = spec.edge_count * 200;
    while placed < spec.edge_count && attempts < max_attempts {
        attempts += 1;
        let dst = sample(&mut rng, &in_prop, &|i| {
            in_degree[i] >= spec.max_fan_in || i < spec.input_count
        });
        let src = sample(&mut rng, &out_prop, &|i| i == dst);
        if builder.contains_edge(ids[src], ids[dst]) {
            continue;
        }
        let weight = if rng.gen_bool(0.8) {
            rng.gen_range(0.3..1.2)
        } else {
            -rng.gen_range(0.3..1.2)
        };
        let delay = rng.gen_range(1..=4);
        builder
            .add_edge(ids[src], ids[dst], weight, delay)
            // lint: allow(panic-path) — src/dst index the `ids` vec we just built, and the sampler rejects duplicate edges before this call
            .expect("ids are valid");
        in_degree[dst] += 1;
        placed += 1;
    }
    assert!(
        placed == spec.edge_count,
        "could not place all edges for spec {} ({placed}/{})",
        spec.name,
        spec.edge_count
    );
    // lint: allow(panic-path) — the generator only emits edges the builder's own checks accepted; a build failure is a generator bug worth a loud stop
    builder.build().expect("generated graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_a_matches_table_counts() {
        let net = generate(&NetworkSpec::table_i_a());
        let stats = net.stats();
        assert_eq!(stats.node_count, 229);
        assert_eq!(stats.edge_count, 464);
        assert!(stats.max_fan_in <= 11);
        assert!((stats.edge_density - 0.0088).abs() < 0.002);
    }

    #[test]
    fn gini_lands_in_table_range() {
        for spec in NetworkSpec::table_i_all() {
            let stats = generate(&spec).stats();
            assert!(
                stats.gini_incoming > 0.35 && stats.gini_incoming < 0.85,
                "{}: gini_in {}",
                spec.name,
                stats.gini_incoming
            );
            assert!(
                stats.gini_outgoing > 0.35 && stats.gini_outgoing < 0.85,
                "{}: gini_out {}",
                spec.name,
                stats.gini_outgoing
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = NetworkSpec::scaled_a(8);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = NetworkSpec::scaled_a(8);
        let mut s2 = NetworkSpec::scaled_a(8);
        s1.seed = 1;
        s2.seed = 2;
        assert_ne!(generate(&s1), generate(&s2));
    }

    #[test]
    fn roles_assigned_in_order() {
        let spec = NetworkSpec::scaled_a(4);
        let net = generate(&spec);
        assert_eq!(net.input_ids().count(), spec.input_count);
        assert_eq!(net.output_ids().count(), spec.output_count);
    }

    #[test]
    fn inputs_receive_no_synapses() {
        let net = generate(&NetworkSpec::scaled_a(4));
        for i in net.input_ids() {
            assert_eq!(net.in_degree(i), 0, "input {i} must be source-only");
        }
    }

    #[test]
    fn fan_in_cap_respected_at_scale() {
        for spec in NetworkSpec::table_i_scaled(4) {
            let net = generate(&spec);
            let stats = net.stats();
            assert!(stats.max_fan_in <= spec.max_fan_in);
            assert_eq!(stats.edge_count, spec.edge_count);
        }
    }

    #[test]
    #[should_panic(expected = "edge count exceeds fan-in capacity")]
    fn impossible_spec_panics() {
        let spec = NetworkSpec {
            name: "bad".into(),
            node_count: 4,
            edge_count: 100,
            max_fan_in: 2,
            input_count: 1,
            output_count: 1,
            concentration: 1.1,
            seed: 0,
        };
        let _ = generate(&spec);
    }
}
