//! Synthetic SmartPixel workload.
//!
//! The paper profiles and evaluates its networks on spike-encoded pixel
//! clusters from high-energy particle collision simulations (references
//! \[35\]/\[36\]): next-generation pixel detectors filter hits on-sensor by
//! estimating whether a cluster came from a high-momentum (steep, short)
//! or low-momentum (shallow, elongated) track.
//!
//! This module generates the synthetic equivalent: straight charged-particle
//! tracks crossing a pixel matrix deposit charge along their path (plus
//! noise); the cluster's column-wise charge profile is encoded into spike
//! trains; the label says whether the track's inclination is below the
//! "keep" cutoff. The 1 %/99 % profile/evaluation split of §V-H is
//! reproduced by [`EventSet::split`].

use croxmap_sim::{SpikeTrain, Stimulus};
use croxmap_snn::{Network, NeuronId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic pixel detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartPixelConfig {
    /// Pixel matrix width (columns).
    pub width: usize,
    /// Pixel matrix height (rows).
    pub height: usize,
    /// Standard deviation of per-pixel charge noise (relative to the unit
    /// deposit of a track crossing one pixel).
    pub noise: f64,
    /// Track inclination cutoff in `tan(θ)` units: steeper tracks (below
    /// the cutoff) are labelled "keep" (high transverse momentum).
    pub slope_cutoff: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmartPixelConfig {
    fn default() -> Self {
        SmartPixelConfig {
            width: 16,
            height: 8,
            noise: 0.08,
            slope_cutoff: 1.0,
            seed: 7,
        }
    }
}

/// One pixel-cluster event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Column-wise integrated charge, length = detector width.
    pub column_charge: Vec<f64>,
    /// `true` = keep (high-pT / steep track).
    pub label: bool,
    /// Ground-truth slope used to generate the track.
    pub slope: f64,
}

/// A generated dataset of events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSet {
    events: Vec<Event>,
}

impl EventSet {
    /// Generates `count` events under `config`, deterministically.
    #[must_use]
    pub fn generate(config: &SmartPixelConfig, count: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let events = (0..count)
            .map(|_| generate_event(config, &mut rng))
            .collect();
        EventSet { events }
    }

    /// The events.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the set holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Splits into (profile, evaluation) subsets, taking every
    /// `1/fraction`-th event for profiling — the paper uses a randomly
    /// selected 1 % sample for PGO and evaluates on the remaining 99 %.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn split(&self, fraction: f64) -> (EventSet, EventSet) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let stride = (1.0 / fraction).round().max(1.0) as usize;
        let mut profile = Vec::new();
        let mut eval = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if i % stride == 0 {
                profile.push(e.clone());
            } else {
                eval.push(e.clone());
            }
        }
        (EventSet { events: profile }, EventSet { events: eval })
    }
}

fn generate_event(config: &SmartPixelConfig, rng: &mut SmallRng) -> Event {
    // Track: enters at a random column at row 0 with slope dx/dy.
    let keep = rng.gen_bool(0.5);
    let slope = if keep {
        rng.gen_range(0.0..config.slope_cutoff)
    } else {
        rng.gen_range(config.slope_cutoff..config.slope_cutoff * 4.0)
    } * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let entry = rng.gen_range(0.0..config.width as f64);
    let mut column_charge = vec![0.0f64; config.width];
    for row in 0..config.height {
        let x = entry + slope * row as f64 / config.height as f64 * config.width as f64 * 0.25;
        let col = x.round();
        if col >= 0.0 && (col as usize) < config.width {
            column_charge[col as usize] += 1.0;
        }
    }
    // Per-column Gaussian-ish noise (sum of two uniforms, cheap and smooth).
    for c in &mut column_charge {
        let u: f64 = rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0f64);
        *c = (*c + u * config.noise).max(0.0);
    }
    Event {
        column_charge,
        label: slope.abs() < config.slope_cutoff,
        slope,
    }
}

/// Encodes an event as spike trains for the first `input_count` input
/// neurons of `network`: column `c`'s charge `q` produces `round(q)` spikes
/// on input neuron `c mod input_count`, spread one per timestep from `t=0`.
///
/// `window` bounds the encoding horizon.
///
/// # Panics
///
/// Panics if the network has no input neurons.
#[must_use]
pub fn encode(network: &Network, event: &Event, window: u32) -> Stimulus {
    let inputs: Vec<NeuronId> = network.input_ids().collect();
    assert!(
        !inputs.is_empty(),
        "network needs input neurons for encoding"
    );
    let mut per_input: Vec<Vec<u32>> = vec![Vec::new(); inputs.len()];
    for (c, &q) in event.column_charge.iter().enumerate() {
        let spikes = q.round().max(0.0) as u32;
        let slot = c % inputs.len();
        for k in 0..spikes.min(window) {
            per_input[slot].push(k);
        }
    }
    Stimulus::new(
        inputs
            .into_iter()
            .zip(per_input)
            .map(|(id, times)| (id, SpikeTrain::from_times(times))),
    )
}

/// Classifies an event with `network`: runs the simulator and compares the
/// spike counts of the first two output neurons (keep if the first output
/// outfires the second).
///
/// Returns `None` when the network has fewer than two outputs.
#[must_use]
pub fn classify(
    network: &Network,
    simulator: &croxmap_sim::LifSimulator,
    event: &Event,
    window: u32,
) -> Option<bool> {
    let outputs: Vec<NeuronId> = network.output_ids().collect();
    if outputs.len() < 2 {
        return None;
    }
    let stimulus = encode(network, event, window);
    let record = simulator.run(network, &stimulus, window);
    Some(record.fire_count(outputs[0]) >= record.fire_count(outputs[1]))
}

/// Classification accuracy of `network` over `events` — the fitness used
/// by [`crate::eons`], and a quick sanity metric for
/// [`crate::calibrated`]-generated networks.
#[must_use]
pub fn accuracy(
    network: &Network,
    simulator: &croxmap_sim::LifSimulator,
    events: &EventSet,
    window: u32,
) -> f64 {
    if events.is_empty() {
        return 0.0;
    }
    let correct = events
        .events()
        .iter()
        .filter(|e| classify(network, simulator, e, window) == Some(e.label))
        .count();
    correct as f64 / events.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use croxmap_sim::LifSimulator;
    use croxmap_snn::{NetworkBuilder, NodeRole};

    fn cfg() -> SmartPixelConfig {
        SmartPixelConfig::default()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EventSet::generate(&cfg(), 20);
        let b = EventSet::generate(&cfg(), 20);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_follow_slope() {
        let set = EventSet::generate(&cfg(), 100);
        for e in set.events() {
            assert_eq!(e.label, e.slope.abs() < cfg().slope_cutoff);
        }
    }

    #[test]
    fn both_classes_present() {
        let set = EventSet::generate(&cfg(), 200);
        let keeps = set.events().iter().filter(|e| e.label).count();
        assert!(keeps > 50 && keeps < 150, "keeps {keeps}");
    }

    #[test]
    fn steep_tracks_concentrate_charge() {
        // A steep (keep) track crosses few columns → higher max column
        // charge on average than a shallow one.
        let set = EventSet::generate(&cfg(), 400);
        let avg_max = |label: bool| {
            let sel: Vec<f64> = set
                .events()
                .iter()
                .filter(|e| e.label == label)
                .map(|e| e.column_charge.iter().fold(0.0f64, |a, &b| a.max(b)))
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(avg_max(true) > avg_max(false));
    }

    #[test]
    fn split_fractions() {
        let set = EventSet::generate(&cfg(), 1000);
        let (profile, eval) = set.split(0.01);
        assert_eq!(profile.len(), 10);
        assert_eq!(eval.len(), 990);
    }

    #[test]
    fn encode_produces_stimulus() {
        let mut b = NetworkBuilder::new();
        let i0 = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let i1 = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let o = b.add_neuron(NodeRole::Output, 1.0, 0.0);
        b.add_edge(i0, o, 1.0, 1).unwrap();
        b.add_edge(i1, o, 1.0, 1).unwrap();
        let net = b.build().unwrap();
        let event = Event {
            column_charge: vec![2.0, 0.0, 3.0, 1.0],
            label: true,
            slope: 0.1,
        };
        let stim = encode(&net, &event, 16);
        // Columns 0 and 2 hit input 0 (2+3 spikes merged per timestep),
        // columns 1 and 3 hit input 1.
        assert_eq!(stim.trains().len(), 2);
        assert!(stim.total_spikes() > 0);
    }

    #[test]
    fn accuracy_bounded() {
        let mut b = NetworkBuilder::new();
        let i0 = b.add_neuron(NodeRole::Input, 0.5, 0.0);
        let o0 = b.add_neuron(NodeRole::Output, 0.5, 0.0);
        let o1 = b.add_neuron(NodeRole::Output, 2.0, 0.0);
        b.add_edge(i0, o0, 1.0, 1).unwrap();
        b.add_edge(i0, o1, 0.3, 1).unwrap();
        let net = b.build().unwrap();
        let set = EventSet::generate(&cfg(), 30);
        let acc = accuracy(&net, &LifSimulator::default(), &set, 16);
        assert!((0.0..=1.0).contains(&acc));
    }
}
