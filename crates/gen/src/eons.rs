//! EONS-lite: evolutionary optimisation for spiking networks.
//!
//! A compact reimplementation of the ideas behind EONS (Evolutionary
//! Optimization for Neuromorphic Systems, Schuman et al. — references
//! \[37\]/\[38\] of the paper): a population of network genomes evolves under
//! tournament selection with structural mutations (edge add/remove,
//! parameter perturbation) and uniform edge crossover. A parsimony term
//! penalises edge count, which is precisely the pressure that produces the
//! structurally sparse networks motivating heterogeneous crossbars.
//!
//! The node set is fixed per run (inputs/outputs/hidden budget); structure
//! evolves in the edge set. Fitness is supplied by the caller, typically
//! classification accuracy on a [`crate::smartpixel::EventSet`].

use croxmap_snn::{Network, NetworkBuilder, NeuronId, NodeRole};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Evolution hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EonsConfig {
    /// Number of input neurons.
    pub input_count: usize,
    /// Number of output neurons.
    pub output_count: usize,
    /// Hidden-neuron budget (all present; unused ones simply stay
    /// disconnected and are harmless for mapping experiments).
    pub hidden_count: usize,
    /// Population size.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals copied unchanged each generation.
    pub elitism: usize,
    /// Probability of each mutation kind per offspring.
    pub mutation_rate: f64,
    /// Fitness penalty per edge (parsimony pressure towards sparsity).
    pub edge_penalty: f64,
    /// Initial edges per genome.
    pub initial_edges: usize,
    /// Hard cap on any neuron's fan-in (keeps networks mappable).
    pub max_fan_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EonsConfig {
    fn default() -> Self {
        EonsConfig {
            input_count: 4,
            output_count: 2,
            hidden_count: 10,
            population: 16,
            generations: 12,
            tournament: 3,
            elitism: 2,
            mutation_rate: 0.7,
            edge_penalty: 0.002,
            initial_edges: 12,
            max_fan_in: 8,
            seed: 42,
        }
    }
}

/// One evolvable genome: fixed node set, variable edge set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    thresholds: Vec<f64>,
    leaks: Vec<f64>,
    /// `(src, dst, weight, delay)` with unique `(src, dst)` pairs.
    edges: Vec<(usize, usize, f64, u32)>,
}

impl Genome {
    fn node_count(cfg: &EonsConfig) -> usize {
        cfg.input_count + cfg.hidden_count + cfg.output_count
    }

    fn role(cfg: &EonsConfig, i: usize) -> NodeRole {
        if i < cfg.input_count {
            NodeRole::Input
        } else if i >= cfg.input_count + cfg.hidden_count {
            NodeRole::Output
        } else {
            NodeRole::Hidden
        }
    }

    fn random(cfg: &EonsConfig, rng: &mut SmallRng) -> Self {
        let n = Self::node_count(cfg);
        let thresholds = (0..n).map(|_| rng.gen_range(0.3..1.2)).collect();
        let leaks = (0..n).map(|_| rng.gen_range(0.0..0.3)).collect();
        let mut genome = Genome {
            thresholds,
            leaks,
            edges: Vec::new(),
        };
        for _ in 0..cfg.initial_edges {
            genome.mutate_add_edge(cfg, rng);
        }
        genome
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.edges.iter().any(|&(s, d, _, _)| s == src && d == dst)
    }

    fn in_degree(&self, dst: usize) -> usize {
        self.edges.iter().filter(|&&(_, d, _, _)| d == dst).count()
    }

    fn mutate_add_edge(&mut self, cfg: &EonsConfig, rng: &mut SmallRng) {
        let n = Self::node_count(cfg);
        for _ in 0..16 {
            let src = rng.gen_range(0..n - cfg.output_count); // outputs are sinks
            let dst = rng.gen_range(cfg.input_count..n); // inputs are sources
            if src == dst || self.has_edge(src, dst) || self.in_degree(dst) >= cfg.max_fan_in {
                continue;
            }
            let weight = if rng.gen_bool(0.8) {
                rng.gen_range(0.3..1.2)
            } else {
                -rng.gen_range(0.3..1.2)
            };
            self.edges.push((src, dst, weight, rng.gen_range(1..=3)));
            return;
        }
    }

    fn mutate_remove_edge(&mut self, rng: &mut SmallRng) {
        if !self.edges.is_empty() {
            let idx = rng.gen_range(0..self.edges.len());
            self.edges.swap_remove(idx);
        }
    }

    fn mutate_perturb(&mut self, rng: &mut SmallRng) {
        if rng.gen_bool(0.5) && !self.edges.is_empty() {
            let idx = rng.gen_range(0..self.edges.len());
            self.edges[idx].2 += rng.gen_range(-0.3..0.3);
        } else {
            let idx = rng.gen_range(0..self.thresholds.len());
            self.thresholds[idx] = (self.thresholds[idx] + rng.gen_range(-0.2..0.2)).max(0.1);
        }
    }

    /// Uniform edge crossover: child takes the union of parents' edges,
    /// each kept with probability ½ (always keeping at least one), subject
    /// to the fan-in cap.
    fn crossover(a: &Genome, b: &Genome, cfg: &EonsConfig, rng: &mut SmallRng) -> Genome {
        let mut child = Genome {
            thresholds: a.thresholds.clone(),
            leaks: b.leaks.clone(),
            edges: Vec::new(),
        };
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut pool: Vec<(usize, usize, f64, u32)> =
            a.edges.iter().chain(b.edges.iter()).copied().collect();
        pool.shuffle(rng);
        for e in pool {
            if seen.contains(&(e.0, e.1)) || child.in_degree(e.1) >= cfg.max_fan_in {
                continue;
            }
            if rng.gen_bool(0.5) || child.edges.is_empty() {
                seen.insert((e.0, e.1));
                child.edges.push(e);
            }
        }
        child
    }

    /// Decodes the genome into a network.
    ///
    /// # Panics
    ///
    /// Panics only on internal inconsistency (duplicate edges), which the
    /// mutation operators prevent.
    #[must_use]
    pub fn to_network(&self, cfg: &EonsConfig) -> Network {
        let n = Self::node_count(cfg);
        let mut b = NetworkBuilder::new();
        let ids: Vec<NeuronId> = (0..n)
            .map(|i| b.add_neuron(Self::role(cfg, i), self.thresholds[i], self.leaks[i]))
            .collect();
        for &(src, dst, w, d) in &self.edges {
            b.add_edge(ids[src], ids[dst], w, d)
                // lint: allow(panic-path) — genome edges are produced by mutation operators that stay within node_count and dedupe; invalid ids mean a corrupted genome, a bug to stop on
                .expect("genome ids valid");
        }
        // lint: allow(panic-path) — decoding only replays edges the mutation operators validated; failure here is genome corruption, not user input
        b.build().expect("genome decodes to valid network")
    }
}

/// Progress of one generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index.
    pub generation: usize,
    /// Best raw fitness (before parsimony penalty).
    pub best_fitness: f64,
    /// Mean edge count of the population.
    pub mean_edges: f64,
}

/// Result of an evolution run.
#[derive(Debug, Clone)]
pub struct EonsRun {
    /// The champion genome.
    pub best: Genome,
    /// Its raw fitness.
    pub best_fitness: f64,
    /// Per-generation progress.
    pub history: Vec<GenerationStats>,
}

/// Runs EONS-lite with caller-supplied fitness.
///
/// `fitness` receives a decoded network and returns a score to maximise
/// (e.g. classification accuracy in `[0, 1]`). The effective selection
/// score is `fitness − edge_penalty · edges`, the parsimony pressure that
/// drives structural sparsity.
#[must_use]
pub fn evolve(config: &EonsConfig, mut fitness: impl FnMut(&Network) -> f64) -> EonsRun {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut population: Vec<Genome> = (0..config.population)
        .map(|_| Genome::random(config, &mut rng))
        .collect();
    let mut history = Vec::new();
    let mut scored: Vec<(f64, f64, Genome)> = Vec::new(); // (selection, raw, genome)

    for generation in 0..config.generations {
        scored = population
            .iter()
            .map(|g| {
                let raw = fitness(&g.to_network(config));
                let sel = raw - config.edge_penalty * g.edge_count() as f64;
                (sel, raw, g.clone())
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        history.push(GenerationStats {
            generation,
            best_fitness: scored[0].1,
            mean_edges: scored
                .iter()
                .map(|(_, _, g)| g.edge_count() as f64)
                .sum::<f64>()
                / scored.len() as f64,
        });

        let mut next: Vec<Genome> = scored
            .iter()
            .take(config.elitism)
            .map(|(_, _, g)| g.clone())
            .collect();
        while next.len() < config.population {
            let pa = tournament(&scored, config.tournament, &mut rng);
            let pb = tournament(&scored, config.tournament, &mut rng);
            let mut child = Genome::crossover(pa, pb, config, &mut rng);
            if rng.gen_bool(config.mutation_rate) {
                match rng.gen_range(0..3) {
                    0 => child.mutate_add_edge(config, &mut rng),
                    1 => child.mutate_remove_edge(&mut rng),
                    _ => child.mutate_perturb(&mut rng),
                }
            }
            next.push(child);
        }
        population = next;
    }
    // Final scoring pass to pick the champion.
    let mut final_scored: Vec<(f64, f64, Genome)> = population
        .iter()
        .map(|g| {
            let raw = fitness(&g.to_network(config));
            (
                raw - config.edge_penalty * g.edge_count() as f64,
                raw,
                g.clone(),
            )
        })
        .collect();
    final_scored.extend(scored);
    final_scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let (_, best_fitness, best) = final_scored.swap_remove(0);
    EonsRun {
        best,
        best_fitness,
        history,
    }
}

fn tournament<'a>(scored: &'a [(f64, f64, Genome)], k: usize, rng: &mut SmallRng) -> &'a Genome {
    let mut best: Option<&(f64, f64, Genome)> = None;
    for _ in 0..k.max(1) {
        let cand = &scored[rng.gen_range(0..scored.len())];
        if best.is_none_or(|b| cand.0 > b.0) {
            best = Some(cand);
        }
    }
    // lint: allow(panic-path) — the tournament loop runs k.max(1) ≥ 1 times over a non-empty `scored`, so `best` is always Some
    &best.expect("non-empty population").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smartpixel::{accuracy, EventSet, SmartPixelConfig};
    use croxmap_sim::LifSimulator;

    fn tiny_config() -> EonsConfig {
        EonsConfig {
            population: 8,
            generations: 4,
            hidden_count: 6,
            initial_edges: 8,
            ..EonsConfig::default()
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let cfg = tiny_config();
        let f = |n: &Network| 1.0 / (1.0 + n.edge_count() as f64);
        let a = evolve(&cfg, f);
        let b = evolve(&cfg, f);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parsimony_shrinks_networks() {
        // Fitness constant: only the edge penalty differentiates genomes,
        // so mean edges must fall over generations.
        let cfg = EonsConfig {
            edge_penalty: 0.05,
            generations: 10,
            ..tiny_config()
        };
        let run = evolve(&cfg, |_| 0.5);
        let first = run.history.first().unwrap().mean_edges;
        let last = run.history.last().unwrap().mean_edges;
        assert!(last < first, "mean edges {first} → {last}");
    }

    #[test]
    fn genomes_decode_to_valid_networks() {
        let cfg = tiny_config();
        let run = evolve(&cfg, |n| n.edge_count() as f64 * 0.01);
        let net = run.best.to_network(&cfg);
        assert_eq!(
            net.node_count(),
            cfg.input_count + cfg.hidden_count + cfg.output_count
        );
        let stats = net.stats();
        assert!(stats.max_fan_in <= cfg.max_fan_in);
    }

    #[test]
    fn fitness_improves_on_smartpixel_task() {
        let cfg = EonsConfig {
            population: 10,
            generations: 6,
            input_count: 4,
            hidden_count: 6,
            seed: 3,
            ..EonsConfig::default()
        };
        let events = EventSet::generate(
            &SmartPixelConfig {
                width: 8,
                ..SmartPixelConfig::default()
            },
            20,
        );
        let simulator = LifSimulator::default();
        let run = evolve(&cfg, |net| accuracy(net, &simulator, &events, 12));
        let first = run.history.first().unwrap().best_fitness;
        let last = run.best_fitness;
        assert!(last >= first, "fitness must not regress: {first} → {last}");
        assert!(last > 0.4, "champion should beat random-ish: {last}");
    }

    #[test]
    fn outputs_never_source_edges() {
        let cfg = tiny_config();
        let run = evolve(&cfg, |_| 0.0);
        let net = run.best.to_network(&cfg);
        for o in net.output_ids() {
            assert_eq!(net.out_degree(o), 0);
        }
    }

    #[test]
    fn inputs_never_receive_edges() {
        let cfg = tiny_config();
        let run = evolve(&cfg, |_| 0.0);
        let net = run.best.to_network(&cfg);
        for i in net.input_ids() {
            assert_eq!(net.in_degree(i), 0);
        }
    }
}
