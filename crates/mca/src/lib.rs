//! # croxmap-mca — memristor crossbar architecture model
//!
//! Models the hardware side of the mapping problem: crossbar dimensions
//! (input lines `A_j` × output lines `N_j`), the area cost `C_j` of an
//! enabled crossbar, architecture catalogs (the homogeneous 16×16 baseline
//! and the heterogeneous Table II set of the paper), and the finite
//! *crossbar pool* the ILP optimises over.
//!
//! ## Example
//!
//! ```
//! use croxmap_mca::{ArchitectureSpec, AreaModel, CrossbarPool};
//!
//! let arch = ArchitectureSpec::table_ii_heterogeneous();
//! assert_eq!(arch.catalog().len(), 10); // Table II has 10 dimensions
//! let pool = CrossbarPool::for_network(&arch, &AreaModel::memristor_count(), 32, 8);
//! assert!(pool.len() > 0);
//! // Every slot can hold at least one neuron output.
//! assert!(pool.slots().iter().all(|s| s.dim.outputs() >= 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod area;
mod dim;
mod pool;

pub use arch::ArchitectureSpec;
pub use area::AreaModel;
pub use dim::CrossbarDim;
pub use pool::{CrossbarPool, CrossbarSlot, SymmetryGroup};
