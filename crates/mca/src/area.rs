//! Crossbar area cost model (the `C_j` coefficients of objective Eq. 8).

use crate::CrossbarDim;
use serde::{Deserialize, Serialize};

/// Computes the area cost `C_j` of enabling a crossbar.
///
/// The paper's experiments "only consider memristor count to focus on the
/// effectiveness of our method absent of hardware specifics", but the
/// formulation explicitly supports a per-crossbar overhead term for
/// peripheral circuitry (drivers, ADCs, routers) that scales super-linearly
/// with nothing — it is a constant per enabled unit. Both knobs are exposed:
///
/// `cost(dim) = per_memristor · inputs · outputs + per_crossbar`
///
/// ```
/// use croxmap_mca::{AreaModel, CrossbarDim};
/// let paper = AreaModel::memristor_count();
/// assert_eq!(paper.cost(CrossbarDim::new(16, 4)), 64.0);
/// let with_overhead = AreaModel::new(1.0, 100.0);
/// assert_eq!(with_overhead.cost(CrossbarDim::new(16, 4)), 164.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    per_memristor: f64,
    per_crossbar: f64,
}

impl AreaModel {
    /// Creates an area model with the given per-device and per-crossbar costs.
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or not finite.
    #[must_use]
    pub fn new(per_memristor: f64, per_crossbar: f64) -> Self {
        assert!(
            per_memristor.is_finite() && per_memristor >= 0.0,
            "per-memristor cost must be finite and non-negative"
        );
        assert!(
            per_crossbar.is_finite() && per_crossbar >= 0.0,
            "per-crossbar cost must be finite and non-negative"
        );
        AreaModel {
            per_memristor,
            per_crossbar,
        }
    }

    /// The paper's experimental model: cost equals memristor count.
    #[must_use]
    pub fn memristor_count() -> Self {
        AreaModel::new(1.0, 0.0)
    }

    /// Area cost `C_j` of a crossbar of dimension `dim`.
    #[must_use]
    pub fn cost(&self, dim: CrossbarDim) -> f64 {
        self.per_memristor * dim.memristors() as f64 + self.per_crossbar
    }

    /// Per-memristor cost component.
    #[must_use]
    pub fn per_memristor(&self) -> f64 {
        self.per_memristor
    }

    /// Per-crossbar constant overhead component.
    #[must_use]
    pub fn per_crossbar(&self) -> f64 {
        self.per_crossbar
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::memristor_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_memristor_count() {
        assert_eq!(AreaModel::default(), AreaModel::memristor_count());
    }

    #[test]
    fn cost_is_monotone_in_dimensions() {
        let m = AreaModel::memristor_count();
        assert!(m.cost(CrossbarDim::new(8, 8)) < m.cost(CrossbarDim::new(16, 8)));
        assert!(m.cost(CrossbarDim::new(16, 8)) < m.cost(CrossbarDim::new(16, 16)));
    }

    #[test]
    fn overhead_penalises_many_small_crossbars() {
        // With overhead, two 8x8s cost more than one 16x8.
        let m = AreaModel::new(1.0, 50.0);
        let two_small = 2.0 * m.cost(CrossbarDim::new(8, 8));
        let one_tall = m.cost(CrossbarDim::new(16, 8));
        assert!(two_small > one_tall);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let _ = AreaModel::new(-1.0, 0.0);
    }
}
