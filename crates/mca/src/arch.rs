//! Architecture specifications: the catalog of crossbar dimensions a target
//! platform offers.

use crate::CrossbarDim;
use serde::{Deserialize, Serialize};

/// A target architecture, described by the set of crossbar dimensions it can
/// instantiate.
///
/// A *homogeneous* architecture offers a single dimension (the paper's
/// baseline uses 16×16, the smallest power-of-two square that fits the most
/// fan-in-intense network of Table I). A *heterogeneous* architecture offers
/// several dimensions simultaneously; the paper's Table II combines square
/// crossbars 4×4 … 32×32 with multi-macro stacked variants up to 32 input
/// channels.
///
/// ```
/// use croxmap_mca::{ArchitectureSpec, CrossbarDim};
/// let hom = ArchitectureSpec::homogeneous(CrossbarDim::square(16));
/// assert_eq!(hom.catalog(), &[CrossbarDim::square(16)]);
/// assert!(hom.is_homogeneous());
/// let het = ArchitectureSpec::table_ii_heterogeneous();
/// assert!(!het.is_homogeneous());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchitectureSpec {
    name: String,
    catalog: Vec<CrossbarDim>,
}

impl ArchitectureSpec {
    /// Creates an architecture from a name and a catalog of dimensions.
    ///
    /// Duplicate dimensions are merged and the catalog is sorted for
    /// deterministic downstream behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, catalog: impl IntoIterator<Item = CrossbarDim>) -> Self {
        let mut catalog: Vec<CrossbarDim> = catalog.into_iter().collect();
        assert!(
            !catalog.is_empty(),
            "architecture catalog must not be empty"
        );
        catalog.sort();
        catalog.dedup();
        ArchitectureSpec {
            name: name.into(),
            catalog,
        }
    }

    /// A homogeneous architecture offering a single crossbar dimension.
    #[must_use]
    pub fn homogeneous(dim: CrossbarDim) -> Self {
        ArchitectureSpec::new(format!("homogeneous-{dim}"), [dim])
    }

    /// The paper's homogeneous baseline: 16×16 crossbars (§V-C).
    #[must_use]
    pub fn paper_homogeneous() -> Self {
        ArchitectureSpec::homogeneous(CrossbarDim::square(16))
    }

    /// The paper's heterogeneous configuration (Table II): power-of-two
    /// square crossbars 4×4 through 32×32 plus multi-macro 2×/4×/8× stacked
    /// variants, excluding anything above 32 input channels.
    #[must_use]
    pub fn table_ii_heterogeneous() -> Self {
        let mut dims = Vec::new();
        for base in [4u32, 8, 16, 32] {
            for factor in [1u32, 2, 4, 8] {
                let dim = CrossbarDim::multi_macro(base, factor);
                if dim.inputs() <= 32 {
                    dims.push(dim);
                }
            }
        }
        ArchitectureSpec::new("table-ii-heterogeneous", dims)
    }

    /// The architecture's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted, de-duplicated catalog of offered dimensions.
    #[must_use]
    pub fn catalog(&self) -> &[CrossbarDim] {
        &self.catalog
    }

    /// Returns `true` if the catalog has exactly one dimension.
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.catalog.len() == 1
    }

    /// The largest number of input lines any catalog member offers. A
    /// network whose maximum fan-in exceeds this cannot be mapped.
    #[must_use]
    pub fn max_inputs(&self) -> u32 {
        self.catalog.iter().map(|d| d.inputs()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let arch = ArchitectureSpec::table_ii_heterogeneous();
        let expected: Vec<CrossbarDim> = [
            (4, 4),
            (8, 4),
            (16, 4),
            (32, 4),
            (8, 8),
            (16, 8),
            (32, 8),
            (16, 16),
            (32, 16),
            (32, 32),
        ]
        .into_iter()
        .map(|(i, o)| CrossbarDim::new(i, o))
        .collect();
        let mut expected = expected;
        expected.sort();
        assert_eq!(arch.catalog(), expected.as_slice());
        assert_eq!(arch.catalog().len(), 10);
        assert_eq!(arch.max_inputs(), 32);
    }

    #[test]
    fn homogeneous_baseline() {
        let arch = ArchitectureSpec::paper_homogeneous();
        assert!(arch.is_homogeneous());
        assert_eq!(arch.catalog(), &[CrossbarDim::square(16)]);
    }

    #[test]
    fn duplicates_are_merged() {
        let arch = ArchitectureSpec::new("dup", [CrossbarDim::square(8), CrossbarDim::square(8)]);
        assert_eq!(arch.catalog().len(), 1);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalog_panics() {
        let _ = ArchitectureSpec::new("empty", []);
    }
}
