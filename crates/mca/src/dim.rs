//! Crossbar dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a single memristor crossbar: `inputs × outputs`
/// (`A_j × N_j` in the paper's notation, printed "In x Out" as in Fig. 3).
///
/// * `inputs` — word lines; each carries the spikes of one *axon source*
///   (a neuron feeding at least one neuron mapped to this crossbar).
///   Thanks to axon sharing one word line can drive many synapses.
/// * `outputs` — bit lines; each accumulates into exactly one neuron mapped
///   to this crossbar.
///
/// The paper's multi-macro stacking technique (reference \[11\]) produces
/// *tall* rectangular crossbars: stacking `f` square `b×b` macros yields a
/// `(f·b)×b` crossbar — see [`CrossbarDim::multi_macro`].
///
/// ```
/// use croxmap_mca::CrossbarDim;
/// let dim = CrossbarDim::new(16, 4);
/// assert_eq!(dim.inputs(), 16);
/// assert_eq!(dim.outputs(), 4);
/// assert_eq!(dim.memristors(), 64);
/// assert_eq!(format!("{dim}"), "16x4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CrossbarDim {
    inputs: u32,
    outputs: u32,
}

impl CrossbarDim {
    /// Creates a crossbar dimension of `inputs` word lines × `outputs` bit lines.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(inputs: u32, outputs: u32) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "crossbar dimensions must be positive"
        );
        CrossbarDim { inputs, outputs }
    }

    /// A square `side × side` crossbar.
    #[must_use]
    pub fn square(side: u32) -> Self {
        CrossbarDim::new(side, side)
    }

    /// Vertically stacks `factor` square `base × base` macros into a
    /// `(factor·base) × base` crossbar (the multi-macro technique of
    /// reference \[11\] of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `base` or `factor` is zero.
    #[must_use]
    pub fn multi_macro(base: u32, factor: u32) -> Self {
        assert!(factor > 0, "multi-macro factor must be positive");
        CrossbarDim::new(base * factor, base)
    }

    /// Number of input (word) lines: `A_j`.
    #[must_use]
    pub fn inputs(self) -> u32 {
        self.inputs
    }

    /// Number of output (bit) lines: `N_j`.
    #[must_use]
    pub fn outputs(self) -> u32 {
        self.outputs
    }

    /// Number of memristor devices in this crossbar (`inputs · outputs`),
    /// the paper's default area measure.
    #[must_use]
    pub fn memristors(self) -> u64 {
        u64::from(self.inputs) * u64::from(self.outputs)
    }

    /// Returns `true` if a neuron with the given fan-in could ever be placed
    /// alone on this crossbar (its presynaptic sources all fit as inputs).
    #[must_use]
    pub fn admits_fan_in(self, fan_in: usize) -> bool {
        fan_in <= self.inputs as usize
    }
}

impl fmt::Display for CrossbarDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.inputs, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_and_multi_macro() {
        assert_eq!(CrossbarDim::square(8), CrossbarDim::new(8, 8));
        assert_eq!(CrossbarDim::multi_macro(4, 8), CrossbarDim::new(32, 4));
        assert_eq!(CrossbarDim::multi_macro(16, 2), CrossbarDim::new(32, 16));
    }

    #[test]
    fn memristor_count() {
        assert_eq!(CrossbarDim::new(32, 4).memristors(), 128);
        assert_eq!(CrossbarDim::square(16).memristors(), 256);
    }

    #[test]
    fn admits_fan_in() {
        let dim = CrossbarDim::new(16, 4);
        assert!(dim.admits_fan_in(16));
        assert!(!dim.admits_fan_in(17));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_panics() {
        let _ = CrossbarDim::new(0, 4);
    }

    #[test]
    fn ordering_is_by_inputs_then_outputs() {
        assert!(CrossbarDim::new(8, 8) < CrossbarDim::new(16, 4));
        assert!(CrossbarDim::new(16, 4) < CrossbarDim::new(16, 8));
    }

    #[test]
    fn display() {
        assert_eq!(CrossbarDim::new(32, 8).to_string(), "32x8");
    }
}
