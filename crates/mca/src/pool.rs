//! The finite crossbar pool the ILP optimises over.
//!
//! ILP formulations need a concrete, finite index set `j ∈ {1..#Crossbars}`.
//! A [`CrossbarPool`] expands an [`ArchitectureSpec`] catalog into enough
//! *slots* (candidate crossbar instances) that any valid mapping of the
//! target network is expressible, and records which slots are identical so
//! that solvers can break the resulting symmetry.

use crate::{ArchitectureSpec, AreaModel, CrossbarDim};
use serde::{Deserialize, Serialize};

/// One candidate crossbar instance in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarSlot {
    /// The slot's dimensions (`A_j × N_j`).
    pub dim: CrossbarDim,
    /// Its enable cost `C_j` under the pool's area model.
    pub cost: f64,
}

/// A maximal run of identical (same-dimension) slots `start..start+len`.
///
/// Within a group the enable variables can be ordered
/// (`y_j ≥ y_{j+1}`) without excluding any solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryGroup {
    /// Index of the first slot in the group.
    pub start: usize,
    /// Number of identical slots in the group.
    pub len: usize,
}

/// A finite list of candidate crossbar slots plus symmetry information.
///
/// ```
/// use croxmap_mca::{ArchitectureSpec, AreaModel, CrossbarDim, CrossbarPool};
/// let arch = ArchitectureSpec::homogeneous(CrossbarDim::square(4));
/// // 10 neurons on 4-output crossbars need at most ceil(10/4) = 3 slots.
/// let pool = CrossbarPool::for_network(&arch, &AreaModel::memristor_count(), 10, 3);
/// assert_eq!(pool.len(), 3);
/// assert_eq!(pool.symmetry_groups().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarPool {
    slots: Vec<CrossbarSlot>,
    groups: Vec<SymmetryGroup>,
}

impl CrossbarPool {
    /// Builds a pool sized for a network of `node_count` neurons with the
    /// given maximum fan-in.
    ///
    /// Each catalog dimension is replicated `ceil(node_count / outputs)`
    /// times — enough for the degenerate mapping that uses only that
    /// dimension. Dimensions whose input capacity cannot host *any* neuron
    /// even alone (i.e. `inputs < min over neurons of fan-in` is not known
    /// here, so we use the weaker per-network test `inputs` < 1) are kept;
    /// use [`CrossbarPool::retain_admitting`] to prune by fan-in when the
    /// formulation layer knows per-neuron fan-ins.
    ///
    /// `max_fan_in` is used only to *warn by construction*: dimensions whose
    /// `inputs` are smaller than the smallest per-neuron fan-in still
    /// participate because neurons with lower fan-in may fit there.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    #[must_use]
    pub fn for_network(
        arch: &ArchitectureSpec,
        area: &AreaModel,
        node_count: usize,
        _max_fan_in: usize,
    ) -> Self {
        assert!(node_count > 0, "pool needs a non-empty network");
        let counts = arch
            .catalog()
            .iter()
            .map(|&dim| (dim, node_count.div_ceil(dim.outputs() as usize)))
            .collect::<Vec<_>>();
        Self::from_counts(area, counts)
    }

    /// Builds a pool sized as [`CrossbarPool::for_network`] but with each
    /// dimension's replica count capped at `cap`. Useful to keep ILP sizes
    /// tractable on large catalogs; a cap that is too small can make the
    /// model infeasible.
    #[must_use]
    pub fn for_network_capped(
        arch: &ArchitectureSpec,
        area: &AreaModel,
        node_count: usize,
        cap: usize,
    ) -> Self {
        assert!(node_count > 0, "pool needs a non-empty network");
        let counts = arch
            .catalog()
            .iter()
            .map(|&dim| {
                let need = node_count.div_ceil(dim.outputs() as usize);
                (dim, need.min(cap.max(1)))
            })
            .collect::<Vec<_>>();
        Self::from_counts(area, counts)
    }

    /// Builds a pool from explicit `(dimension, replica count)` pairs.
    ///
    /// Pairs with a zero count are dropped. Slots of equal dimension are
    /// grouped contiguously and form one [`SymmetryGroup`].
    #[must_use]
    pub fn from_counts(
        area: &AreaModel,
        counts: impl IntoIterator<Item = (CrossbarDim, usize)>,
    ) -> Self {
        let mut counts: Vec<(CrossbarDim, usize)> =
            counts.into_iter().filter(|&(_, c)| c > 0).collect();
        counts.sort_by_key(|&(dim, _)| dim);
        let mut slots = Vec::new();
        let mut groups = Vec::new();
        for (dim, count) in counts {
            let start = slots.len();
            for _ in 0..count {
                slots.push(CrossbarSlot {
                    dim,
                    cost: area.cost(dim),
                });
            }
            groups.push(SymmetryGroup { start, len: count });
        }
        CrossbarPool { slots, groups }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the pool has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All slots, grouped contiguously by dimension.
    #[must_use]
    pub fn slots(&self) -> &[CrossbarSlot] {
        &self.slots
    }

    /// The slot at index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn slot(&self, j: usize) -> CrossbarSlot {
        self.slots[j]
    }

    /// Maximal runs of identical slots.
    #[must_use]
    pub fn symmetry_groups(&self) -> &[SymmetryGroup] {
        &self.groups
    }

    /// Sum of all slot output capacities — an upper bound on mappable neurons.
    #[must_use]
    pub fn total_outputs(&self) -> usize {
        self.slots.iter().map(|s| s.dim.outputs() as usize).sum()
    }

    /// Removes every slot whose dimension fails `keep`, preserving grouping.
    #[must_use]
    pub fn retain_admitting(&self, keep: impl Fn(CrossbarDim) -> bool) -> Self {
        let mut counts: Vec<(CrossbarDim, usize)> = Vec::new();
        for g in &self.groups {
            let dim = self.slots[g.start].dim;
            if keep(dim) {
                counts.push((dim, g.len));
            }
        }
        // Costs are uniform per dimension; rebuild via a synthetic area model
        // is wrong if costs were custom — rebuild slots directly instead.
        let mut slots = Vec::new();
        let mut groups = Vec::new();
        for (dim, count) in counts {
            let start = slots.len();
            let cost = self
                .slots
                .iter()
                .find(|s| s.dim == dim)
                .map(|s| s.cost)
                .unwrap_or_default();
            for _ in 0..count {
                slots.push(CrossbarSlot { dim, cost });
            }
            groups.push(SymmetryGroup { start, len: count });
        }
        CrossbarPool { slots, groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> AreaModel {
        AreaModel::memristor_count()
    }

    #[test]
    fn homogeneous_pool_replication() {
        let arch = ArchitectureSpec::paper_homogeneous();
        let pool = CrossbarPool::for_network(&arch, &area(), 100, 10);
        // ceil(100/16) = 7 slots of 16x16.
        assert_eq!(pool.len(), 7);
        assert!(pool
            .slots()
            .iter()
            .all(|s| s.dim == CrossbarDim::square(16)));
        assert_eq!(pool.total_outputs(), 7 * 16);
    }

    #[test]
    fn heterogeneous_pool_groups() {
        let arch = ArchitectureSpec::table_ii_heterogeneous();
        let pool = CrossbarPool::for_network(&arch, &area(), 20, 8);
        assert_eq!(pool.symmetry_groups().len(), arch.catalog().len());
        // Group runs are contiguous and cover all slots.
        let covered: usize = pool.symmetry_groups().iter().map(|g| g.len).sum();
        assert_eq!(covered, pool.len());
        for g in pool.symmetry_groups() {
            let dim = pool.slot(g.start).dim;
            for j in g.start..g.start + g.len {
                assert_eq!(pool.slot(j).dim, dim);
            }
        }
    }

    #[test]
    fn capped_pool_is_smaller() {
        let arch = ArchitectureSpec::table_ii_heterogeneous();
        let full = CrossbarPool::for_network(&arch, &area(), 64, 8);
        let capped = CrossbarPool::for_network_capped(&arch, &area(), 64, 2);
        assert!(capped.len() < full.len());
        assert_eq!(capped.symmetry_groups().len(), arch.catalog().len());
        assert!(capped.symmetry_groups().iter().all(|g| g.len <= 2));
    }

    #[test]
    fn costs_follow_area_model() {
        let arch = ArchitectureSpec::homogeneous(CrossbarDim::new(16, 4));
        let pool = CrossbarPool::for_network(&arch, &AreaModel::new(2.0, 10.0), 4, 4);
        assert_eq!(pool.slot(0).cost, 2.0 * 64.0 + 10.0);
    }

    #[test]
    fn retain_admitting_prunes_dimensions() {
        let arch = ArchitectureSpec::table_ii_heterogeneous();
        let pool = CrossbarPool::for_network(&arch, &area(), 16, 8);
        let pruned = pool.retain_admitting(|d| d.inputs() >= 16);
        assert!(pruned.slots().iter().all(|s| s.dim.inputs() >= 16));
        assert!(pruned.len() < pool.len());
    }

    #[test]
    fn zero_count_dimensions_dropped() {
        let pool = CrossbarPool::from_counts(
            &area(),
            [(CrossbarDim::square(4), 0), (CrossbarDim::square(8), 2)],
        );
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.symmetry_groups().len(), 1);
    }
}
