//! Presolve/postsolve round-trip properties on seeded random 0/1 models:
//! solving with presolve on and off — under every LP engine — must agree
//! on status and optimum, every postsolved incumbent must be feasible in
//! the *original* model, and direct presolve round-trips must preserve
//! feasibility and objectives.

use croxmap_ilp::presolve::{presolve, PresolveConfig, PresolveOutcome};
use croxmap_ilp::{
    JsonlSink, LpEngine, Model, SolveStatus, Solver, SolverConfig, TraceHandle, UpdateRule, VarId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `CROXMAP_TEST_TRACE=jsonl` re-runs the whole suite with a JSONL trace
/// sink attached (CI validates the emitted stream with the bench
/// harness's `trace_report` schema checker). Every solve of this test
/// binary appends to one file under `CROXMAP_TRACE_DIR` (default
/// `target/trace`).
fn test_trace_handle() -> Option<TraceHandle> {
    use std::sync::OnceLock;
    static HANDLE: OnceLock<Option<TraceHandle>> = OnceLock::new();
    HANDLE
        .get_or_init(|| {
            if std::env::var("CROXMAP_TEST_TRACE").ok().as_deref() != Some("jsonl") {
                return None;
            }
            let dir =
                std::env::var("CROXMAP_TRACE_DIR").unwrap_or_else(|_| "target/trace".to_owned());
            std::fs::create_dir_all(&dir).ok()?;
            let path = format!("{dir}/presolve_props-{}.jsonl", std::process::id());
            let file = std::fs::File::create(path).ok()?;
            Some(TraceHandle::new(JsonlSink::new(std::io::BufWriter::new(
                file,
            ))))
        })
        .clone()
}

/// A seeded random 0/1 model: n binaries, a few ≤/≥/= rows with small
/// integer coefficients — the same family the warm-start suite uses, plus
/// occasional equality rows so the presolve Eq paths get exercised.
fn random_model(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(3usize..=9);
    let rows = rng.gen_range(1usize..=6);
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for r in 0..rows {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-3i32..=3)))
            .collect();
        let rhs = f64::from(rng.gen_range(-4i32..=6));
        let expr = m.expr(
            vars.iter()
                .zip(&coeffs)
                .filter(|&(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c)),
        );
        let cmp = match rng.gen_range(0u32..4) {
            0 => expr.geq(rhs),
            1 if rhs >= 0.0 => expr.eq(rhs),
            _ => expr.leq(rhs),
        };
        m.add_constraint(format!("r{r}"), cmp);
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .map(|&v| (v, f64::from(rng.gen_range(-5i32..=5)))),
        ),
    );
    m
}

fn config(engine: LpEngine, presolve_on: bool) -> SolverConfig {
    config_with_update(engine, UpdateRule::default(), presolve_on)
}

fn config_with_update(engine: LpEngine, update: UpdateRule, presolve_on: bool) -> SolverConfig {
    let presolve = if presolve_on {
        PresolveConfig::default()
    } else {
        PresolveConfig::off()
    };
    // `CROXMAP_TEST_THREADS=n` re-runs the whole suite through the
    // parallel tree driver (CI exercises n = 4): every equivalence
    // property here must hold at any thread count.
    let threads = std::env::var("CROXMAP_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cfg = SolverConfig {
        det_time_limit: 5.0,
        enable_lns: false,
        ..SolverConfig::default()
    }
    .with_lp_engine(engine)
    .with_update_rule(update)
    .with_presolve(presolve)
    .with_threads(threads);
    match test_trace_handle() {
        Some(trace) => cfg.with_trace(trace),
        None => cfg,
    }
}

#[test]
fn presolve_on_off_reach_identical_optima_across_engines() {
    // The sparse engine appears twice: once per basis-update rule, so the
    // Forrest–Tomlin default and the product-form oracle are both held to
    // the dense references.
    let engines = [
        (LpEngine::SparseLu, UpdateRule::ForrestTomlin),
        (LpEngine::SparseLu, UpdateRule::ProductForm),
        (LpEngine::DenseInverse, UpdateRule::default()),
        (LpEngine::DenseTableau, UpdateRule::default()),
    ];
    let mut optimal = 0u32;
    let mut infeasible = 0u32;
    for seed in 0..120u64 {
        let model = random_model(seed);
        // Reference: presolve off, dense tableau (the battle-tested oracle).
        let reference = Solver::new(config(LpEngine::DenseTableau, false)).solve(&model);
        for (engine, update) in engines {
            for presolve_on in [true, false] {
                let run =
                    Solver::new(config_with_update(engine, update, presolve_on)).solve(&model);
                assert_eq!(
                    run.status, reference.status,
                    "seed {seed}, {engine:?}, presolve {presolve_on}: status mismatch"
                );
                match run.status {
                    SolveStatus::Optimal => {
                        let got = run.best.as_ref().expect("optimal has incumbent");
                        let want = reference.best.as_ref().expect("reference incumbent");
                        assert!(
                            (got.objective() - want.objective()).abs() <= 1e-6,
                            "seed {seed}, {engine:?}, presolve {presolve_on}: {} vs {}",
                            got.objective(),
                            want.objective()
                        );
                        // The postsolved solution must be feasible for the
                        // ORIGINAL model and have a consistent objective.
                        assert!(
                            model.is_feasible(got.values(), 1e-6),
                            "seed {seed}, {engine:?}, presolve {presolve_on}: infeasible postsolve"
                        );
                        assert!(
                            (model.objective_value(got.values()) - got.objective()).abs() <= 1e-6
                        );
                        // Every incumbent in the stream postsolves feasibly.
                        for ev in &run.incumbents {
                            assert!(
                                model.is_feasible(ev.solution.values(), 1e-6),
                                "seed {seed}, {engine:?}, presolve {presolve_on}: bad incumbent"
                            );
                        }
                    }
                    SolveStatus::Infeasible => assert!(run.best.is_none()),
                    other => panic!("seed {seed}: unexpected status {other:?}"),
                }
            }
        }
        match reference.status {
            SolveStatus::Optimal => optimal += 1,
            SolveStatus::Infeasible => infeasible += 1,
            _ => {}
        }
    }
    // The family must exercise both outcomes meaningfully.
    assert!(optimal >= 40, "only {optimal} optimal instances");
    assert!(infeasible >= 5, "only {infeasible} infeasible instances");
}

#[test]
fn direct_presolve_roundtrip_preserves_feasible_points() {
    let cfg = PresolveConfig::default();
    let mut checked = 0u32;
    for seed in 200..320u64 {
        let model = random_model(seed);
        let p = match presolve(&model, &cfg) {
            PresolveOutcome::Reduced(p) => p,
            PresolveOutcome::Infeasible(_) => continue,
        };
        let nr = p.postsolve.num_reduced_vars();
        assert_eq!(p.postsolve.num_original_vars(), model.num_vars());
        if nr > 12 {
            continue;
        }
        // Enumerate the reduced 0/1 cube: every reduced-feasible point must
        // restore to an original-feasible point with the same objective.
        for mask in 0..(1u32 << nr) {
            let reduced_point: Vec<f64> = (0..nr).map(|j| f64::from((mask >> j) & 1)).collect();
            if !p.model.is_feasible(&reduced_point, 1e-9) {
                continue;
            }
            let restored = p.postsolve.restore(&reduced_point);
            assert!(
                model.is_feasible(&restored, 1e-6),
                "seed {seed}, mask {mask}: restored point infeasible"
            );
            assert!(
                (model.objective_value(&restored) - p.model.objective_value(&reduced_point)).abs()
                    <= 1e-9,
                "seed {seed}, mask {mask}: objective drift"
            );
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} roundtrips checked");
}

#[test]
fn warm_start_projects_through_presolve() {
    // A caller-supplied warm start survives presolve projection: the solver
    // must still produce (at least) an equally good incumbent.
    let mut m = Model::new();
    let x = m.add_binary("x");
    let y = m.add_binary("y");
    let z = m.add_binary("z");
    m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0), (z, 1.0)]).geq(1.0));
    m.set_objective(m.expr([(x, 2.0), (y, 5.0), (z, 9.0)]));
    let warm = vec![0.0, 1.0, 0.0]; // feasible, suboptimal
    let run = Solver::new(config(LpEngine::SparseLu, true)).solve_with_warm_start(&m, &warm);
    assert_eq!(run.status, SolveStatus::Optimal);
    assert!((run.best.unwrap().objective() - 2.0).abs() < 1e-9);
    assert!(!run.incumbents.is_empty());
}
