//! Warm-start correctness: warm-started child solves must agree with cold
//! solves on seeded random 0/1 models, through every warm path (refactor
//! from snapshot, and hot in-place reuse via [`LpSolver`]), and the
//! warm-started branch-and-bound must reach the same optima as the cold
//! one.
//!
//! Runs through the **deprecated shims** on purpose: they are the
//! retained differential-test oracles over the session path, so this
//! suite pins shim-vs-session equivalence for free.
#![allow(deprecated)]

use croxmap_ilp::simplex::{solve_relaxation_warm, LpConfig, LpEngine, LpSolver, LpStatus};
use croxmap_ilp::{Model, Solver, SolverConfig, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random 0/1 model: n binaries, a few ≤/≥ rows with small
/// integer coefficients — the same family the solver-exactness suite uses.
fn random_model(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(3usize..=10);
    let rows = rng.gen_range(1usize..=6);
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for r in 0..rows {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-3i32..=3)))
            .collect();
        let rhs = f64::from(rng.gen_range(-4i32..=6));
        let expr = m.expr(vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)));
        let cmp = if rng.gen_bool(0.5) {
            expr.leq(rhs)
        } else {
            expr.geq(rhs)
        };
        m.add_constraint(format!("r{r}"), cmp);
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .map(|&v| (v, f64::from(rng.gen_range(-5i32..=5)))),
        ),
    );
    m
}

fn root_bounds(m: &Model) -> Vec<(f64, f64)> {
    m.variables().iter().map(|v| (v.lower, v.upper)).collect()
}

#[test]
fn warm_child_solves_match_cold_across_random_models() {
    let cfg = LpConfig::default();
    let mut checked = 0u32;
    for seed in 0..200u64 {
        let model = random_model(seed);
        let bounds = root_bounds(&model);
        let root = solve_relaxation_warm(&model, &bounds, &cfg, None);
        if root.result.status != LpStatus::Optimal {
            continue;
        }
        let Some(basis) = root.basis else { continue };
        // Branch on every variable, both directions.
        for j in 0..model.num_vars() {
            for fix in [0.0, 1.0] {
                let mut child = bounds.clone();
                child[j] = (fix, fix);
                let warm = solve_relaxation_warm(&model, &child, &cfg, Some(&basis));
                let cold = solve_relaxation_warm(&model, &child, &cfg, None);
                assert_eq!(
                    warm.result.status, cold.result.status,
                    "seed {seed}, var {j} fixed to {fix}: status mismatch"
                );
                if warm.result.status == LpStatus::Optimal {
                    assert!(
                        (warm.result.objective - cold.result.objective).abs() <= 1e-6,
                        "seed {seed}, var {j} fixed to {fix}: warm {} vs cold {}",
                        warm.result.objective,
                        cold.result.objective
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 500,
        "too few optimal child solves exercised: {checked}"
    );
}

#[test]
fn hot_context_reuse_matches_cold_along_a_dive() {
    // Drive one LpSolver down a dive-like trajectory (a chain of single
    // bound fixings, each warm-started from the previous solve) and check
    // every step against a cold solve.
    let cfg = LpConfig::default();
    for seed in 200..280u64 {
        let model = random_model(seed);
        let mut bounds = root_bounds(&model);
        let mut hot = LpSolver::new();
        let mut warm = None;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
        for _ in 0..model.num_vars() {
            let out = hot.solve(&model, &bounds, &cfg, warm.as_ref());
            let cold = solve_relaxation_warm(&model, &bounds, &cfg, None);
            assert_eq!(out.result.status, cold.result.status, "seed {seed}");
            if out.result.status != LpStatus::Optimal {
                break;
            }
            assert!(
                (out.result.objective - cold.result.objective).abs() <= 1e-6,
                "seed {seed}: hot {} vs cold {}",
                out.result.objective,
                cold.result.objective
            );
            warm = out.basis;
            let j = rng.gen_range(0..model.num_vars());
            let fix = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            bounds[j] = (fix, fix);
        }
    }
}

#[test]
fn warm_bb_matches_cold_bb_on_random_models() {
    for seed in 0..40u64 {
        let model = random_model(seed);
        let warm_cfg = SolverConfig {
            det_time_limit: 5.0,
            seed,
            ..SolverConfig::default()
        };
        let cold_cfg = SolverConfig {
            warm_lp: false,
            ..warm_cfg.clone()
        };
        let warm = Solver::new(warm_cfg).solve(&model);
        let cold = Solver::new(cold_cfg).solve(&model);
        assert_eq!(warm.status, cold.status, "seed {seed}");
        match (&warm.best, &cold.best) {
            (None, None) => {}
            (Some(w), Some(c)) => {
                assert!(
                    (w.objective() - c.objective()).abs() <= 1e-6,
                    "seed {seed}: warm {} vs cold {}",
                    w.objective(),
                    c.objective()
                );
            }
            _ => panic!("seed {seed}: incumbent presence mismatch"),
        }
    }
}

#[test]
fn lp_engines_agree_on_random_relaxations() {
    // The sparse-LU engine, the explicit-inverse oracle, and the dense
    // two-phase tableau must report identical LP statuses and optima.
    let engines = [
        LpEngine::SparseLu,
        LpEngine::DenseInverse,
        LpEngine::DenseTableau,
    ];
    let mut compared = 0u32;
    for seed in 0..120u64 {
        let model = random_model(seed);
        let bounds = root_bounds(&model);
        let results: Vec<_> = engines
            .iter()
            .map(|&engine| {
                let cfg = LpConfig {
                    engine,
                    ..LpConfig::default()
                };
                solve_relaxation_warm(&model, &bounds, &cfg, None).result
            })
            .collect();
        for (engine, r) in engines.iter().zip(&results).skip(1) {
            assert_eq!(
                r.status, results[0].status,
                "seed {seed}: {engine:?} status vs SparseLu"
            );
            if r.status == LpStatus::Optimal {
                assert!(
                    (r.objective - results[0].objective).abs() <= 1e-6,
                    "seed {seed}: {engine:?} {} vs SparseLu {}",
                    r.objective,
                    results[0].objective
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 100, "too few optimal comparisons: {compared}");
}

#[test]
fn engines_reach_identical_bb_optima() {
    // Full branch-and-bound through every engine: the incumbents the
    // search settles on must be identical across representations.
    let engines = [
        LpEngine::SparseLu,
        LpEngine::DenseInverse,
        LpEngine::DenseTableau,
    ];
    for seed in 0..16u64 {
        let model = random_model(seed);
        let outcomes: Vec<_> = engines
            .iter()
            .map(|&engine| {
                let cfg = SolverConfig {
                    det_time_limit: 5.0,
                    seed,
                    ..SolverConfig::default()
                }
                .with_lp_engine(engine);
                Solver::new(cfg).solve(&model)
            })
            .collect();
        for (engine, r) in engines.iter().zip(&outcomes).skip(1) {
            assert_eq!(r.status, outcomes[0].status, "seed {seed}: {engine:?}");
            match (&r.best, &outcomes[0].best) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(
                    (a.objective() - b.objective()).abs() <= 1e-6,
                    "seed {seed}: {engine:?} {} vs SparseLu {}",
                    a.objective(),
                    b.objective()
                ),
                _ => panic!("seed {seed}: {engine:?} incumbent presence mismatch"),
            }
        }
    }
}

#[test]
fn degenerate_dual_ratio_test_regression() {
    // Heavily degenerate LP: four redundant rows all active at the
    // optimum. The dual ratio test faces zero-step ties both at the root
    // and after each bound change; the solve must terminate at the exact
    // optimum every time instead of cycling.
    let mut m = Model::new();
    let x = m.add_continuous("x", 0.0, 1.0);
    let y = m.add_continuous("y", 0.0, 1.0);
    m.add_constraint("c1", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
    m.add_constraint("c2", m.expr([(x, 1.0)]).leq(1.0));
    m.add_constraint("c3", m.expr([(y, 1.0)]).leq(1.0));
    m.add_constraint("c4", m.expr([(x, 2.0), (y, 2.0)]).leq(2.0));
    m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
    let cfg = LpConfig::default();
    let bounds = vec![(0.0, 1.0), (0.0, 1.0)];

    let root = solve_relaxation_warm(&m, &bounds, &cfg, None);
    assert_eq!(root.result.status, LpStatus::Optimal);
    assert!((root.result.objective + 1.0).abs() < 1e-6);
    let basis = root.basis.expect("optimal basis");

    // Fix x in both directions; warm dual reoptimisation must terminate
    // on the degenerate rows and hit the known optima.
    for (fix, expect) in [(0.0, -1.0), (1.0, -1.0)] {
        let mut child = bounds.clone();
        child[0] = (fix, fix);
        let warm = solve_relaxation_warm(&m, &child, &cfg, Some(&basis));
        assert_eq!(warm.result.status, LpStatus::Optimal, "x fixed to {fix}");
        assert!(
            (warm.result.objective - expect).abs() < 1e-6,
            "x fixed to {fix}: got {}",
            warm.result.objective
        );
        assert!(
            warm.result.iterations <= 64,
            "degenerate reoptimisation should take few pivots, took {}",
            warm.result.iterations
        );
    }

    // The same chain through a hot context (no refactorisation).
    let mut hot = LpSolver::new();
    let root = hot.solve(&m, &bounds, &cfg, None);
    let mut warm = root.basis;
    let mut child = bounds;
    child[0] = (0.0, 0.0);
    let step = hot.solve(&m, &child, &cfg, warm.as_ref());
    assert_eq!(step.result.status, LpStatus::Optimal);
    assert!((step.result.objective + 1.0).abs() < 1e-6);
    warm = step.basis;
    child[1] = (1.0, 1.0);
    let step = hot.solve(&m, &child, &cfg, warm.as_ref());
    assert_eq!(step.result.status, LpStatus::Optimal);
    assert!((step.result.objective + 1.0).abs() < 1e-6);
}
