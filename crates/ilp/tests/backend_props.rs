//! Backend-equivalence and cut-correctness properties.
//!
//! * Every [`LpBackend`] implementation — dense tableau, dense inverse,
//!   sparse LU under both update rules — must agree on the LP optimum of
//!   seeded random 0/1 models **through the trait object** (the session
//!   API), to 1e-6.
//! * [`LpSession::add_rows`] must be exact: appending separated cuts to a
//!   live session (in-place factorisation growth) must reach the same
//!   optimum as cold-solving a rebuilt model that carries the same rows.
//! * Separated cuts must be *valid*: no knapsack cover or clique cut may
//!   ever cut off an integer-feasible point (checked by exhaustive
//!   enumeration) — and an integer-feasible LP optimum separates nothing.

use croxmap_ilp::backend::{LpBackend, LpSession, RevisedBackend, TableauBackend};
use croxmap_ilp::cuts::CutSeparator;
use croxmap_ilp::simplex::{LpConfig, LpStatus};
use croxmap_ilp::{LpEngine, Model, PricingRule, UpdateRule, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pricing rule under test: `CROXMAP_TEST_PRICING` selects `devex` (the
/// default), `steepest` or `dantzig`, so CI re-runs this whole suite
/// under each pricing rule without a code change — every property here
/// must hold regardless of how the dual loop picks its leaving row.
fn test_pricing() -> PricingRule {
    match std::env::var("CROXMAP_TEST_PRICING").as_deref() {
        Ok("steepest") => PricingRule::SteepestEdge,
        Ok("dantzig") => PricingRule::Dantzig,
        _ => PricingRule::Devex,
    }
}

/// [`LpConfig::default`] with the suite's pricing override applied.
fn default_cfg() -> LpConfig {
    LpConfig {
        pricing: test_pricing(),
        ..LpConfig::default()
    }
}

/// A seeded random 0/1 model with mixed ≤/≥/= rows, the family the
/// warm-start and presolve suites use.
fn random_model(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(3usize..=9);
    let rows = rng.gen_range(1usize..=6);
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for r in 0..rows {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-3i32..=3)))
            .collect();
        let rhs = f64::from(rng.gen_range(-4i32..=6));
        let expr = m.expr(
            vars.iter()
                .zip(&coeffs)
                .filter(|&(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c)),
        );
        let cmp = match rng.gen_range(0u32..4) {
            0 => expr.geq(rhs),
            1 if rhs >= 0.0 => expr.eq(rhs),
            _ => expr.leq(rhs),
        };
        m.add_constraint(format!("r{r}"), cmp);
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .map(|&v| (v, f64::from(rng.gen_range(-5i32..=5)))),
        ),
    );
    m
}

/// A seeded random knapsack/packing model — all-positive `≤` rows plus
/// occasional packing rows, the shapes the cover and clique separators
/// target, with a maximising (negative-cost) objective so the LP optimum
/// lands on fractional vertices.
fn random_cut_model(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) | 1);
    let n = rng.gen_range(4usize..=9);
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    let rows = rng.gen_range(1usize..=3);
    for r in 0..rows {
        let coeffs: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(1i32..=5))).collect();
        let total: f64 = coeffs.iter().sum();
        let rhs = (total * rng.gen_range(0.35..0.7)).floor().max(1.0);
        m.add_constraint(
            format!("k{r}"),
            m.expr(vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)))
                .leq(rhs),
        );
    }
    if rng.gen_bool(0.6) {
        // One packing row over a random subset of ≥ 2 variables.
        let mut subset: Vec<VarId> = vars.clone();
        while subset.len() > 2 && rng.gen_bool(0.4) {
            let at = rng.gen_range(0..subset.len());
            subset.remove(at);
        }
        m.add_constraint("pack", m.expr(subset.iter().map(|&v| (v, 1.0))).leq(1.0));
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .map(|&v| (v, -f64::from(rng.gen_range(1i32..=9)))),
        ),
    );
    m
}

fn model_bounds(m: &Model) -> Vec<(f64, f64)> {
    m.variables().iter().map(|v| (v.lower, v.upper)).collect()
}

/// Every backend × update-rule combination as `(label, session)`, all
/// held as trait objects through [`LpSession::with_backend`].
fn all_backends(model: &Model) -> Vec<(String, LpSession)> {
    let mut out = Vec::new();
    for update in [UpdateRule::ForrestTomlin, UpdateRule::ProductForm] {
        let cfg = LpConfig {
            engine: LpEngine::SparseLu,
            update,
            ..default_cfg()
        };
        let backend: Box<dyn LpBackend> = Box::new(RevisedBackend::new(LpEngine::SparseLu));
        out.push((
            format!("sparse-lu/{update:?}"),
            LpSession::with_backend(model, cfg, backend),
        ));
    }
    let cfg = LpConfig {
        engine: LpEngine::DenseInverse,
        ..default_cfg()
    };
    let backend: Box<dyn LpBackend> = Box::new(RevisedBackend::new(LpEngine::DenseInverse));
    out.push((
        "dense-inverse".to_owned(),
        LpSession::with_backend(model, cfg, backend),
    ));
    let cfg = LpConfig {
        engine: LpEngine::DenseTableau,
        ..default_cfg()
    };
    let backend: Box<dyn LpBackend> = Box::new(TableauBackend);
    out.push((
        "dense-tableau".to_owned(),
        LpSession::with_backend(model, cfg, backend),
    ));
    out
}

/// All integer-feasible points of a small binary model.
fn feasible_points(m: &Model) -> Vec<Vec<f64>> {
    let n = m.num_vars();
    assert!(n <= 16, "enumeration only");
    let mut out = Vec::new();
    for bits in 0..(1u32 << n) {
        let pt: Vec<f64> = (0..n).map(|j| f64::from((bits >> j) & 1)).collect();
        if m.is_feasible(&pt, 1e-9) {
            out.push(pt);
        }
    }
    out
}

#[test]
fn all_backends_agree_on_relaxation_optimum() {
    let mut optimal = 0u32;
    let mut infeasible = 0u32;
    for seed in 0..40u64 {
        let model = random_model(seed);
        let bounds = model_bounds(&model);
        let mut results = Vec::new();
        for (label, mut session) in all_backends(&model) {
            let out = session.solve(&bounds, None);
            results.push((label, out.result.status, out.result.objective));
        }
        let (ref label0, status0, obj0) = results[0];
        for (label, status, obj) in &results[1..] {
            assert_eq!(
                status0, *status,
                "seed {seed}: {label0} vs {label} disagree on status"
            );
            if *status == LpStatus::Optimal {
                assert!(
                    (obj0 - obj).abs() < 1e-6,
                    "seed {seed}: {label0} gives {obj0}, {label} gives {obj}"
                );
            }
        }
        match status0 {
            LpStatus::Optimal => optimal += 1,
            LpStatus::Infeasible => infeasible += 1,
            other => panic!("seed {seed}: unexpected status {other:?}"),
        }
    }
    assert!(optimal >= 10, "family too degenerate: {optimal} optimal");
    assert!(infeasible >= 1, "family never infeasible");
}

#[test]
fn incremental_rows_match_rebuilt_model_on_every_backend() {
    let mut exercised = 0u32;
    for seed in 0..60u64 {
        let model = if seed % 2 == 0 {
            random_cut_model(seed)
        } else {
            random_model(seed)
        };
        let bounds = model_bounds(&model);
        // Reference fractional point + cuts from the default engine.
        let mut probe = LpSession::open(&model, default_cfg());
        let root = probe.solve(&bounds, None);
        if root.result.status != LpStatus::Optimal {
            continue;
        }
        let mut separator = CutSeparator::new(&model, &[]);
        let cuts = separator.separate(&root.result.values, 8);
        if cuts.is_empty() {
            continue;
        }
        exercised += 1;
        // Oracle: rebuild the model with the cut rows baked in, solve
        // cold on the dense tableau.
        let mut rebuilt = model.clone();
        let rows: Vec<_> = cuts.into_iter().map(croxmap_ilp::Cut::into_row).collect();
        for (name, cmp) in &rows {
            rebuilt.add_constraint(name.clone(), cmp.clone());
        }
        let tableau_cfg = LpConfig {
            engine: LpEngine::DenseTableau,
            ..default_cfg()
        };
        let want = LpSession::open(&rebuilt, tableau_cfg).solve(&bounds, None);
        assert_eq!(want.result.status, LpStatus::Optimal, "cuts are valid");
        // Every backend: solve, append the same rows to the live session,
        // re-solve warm; the grown session must match the oracle.
        for (label, mut session) in all_backends(&model) {
            let out = session.solve(&bounds, None);
            assert_eq!(out.result.status, LpStatus::Optimal, "{label}");
            let grown = session.add_rows(rows.clone(), out.basis.as_ref());
            assert_eq!(grown.added, rows.len(), "{label}");
            let cut_out = session.solve(&bounds, grown.basis.as_ref());
            assert_eq!(cut_out.result.status, LpStatus::Optimal, "{label}");
            assert!(
                (cut_out.result.objective - want.result.objective).abs() < 1e-6,
                "seed {seed}: {label} grown session gives {}, oracle {}",
                cut_out.result.objective,
                want.result.objective
            );
        }
    }
    assert!(exercised >= 5, "only {exercised} seeds produced cuts");
}

#[test]
fn cuts_never_cut_off_integer_feasible_points() {
    let mut cuts_checked = 0u32;
    for seed in 0..80u64 {
        let model = if seed % 2 == 0 {
            random_cut_model(seed)
        } else {
            random_model(seed)
        };
        let bounds = model_bounds(&model);
        let feasible = feasible_points(&model);
        let mut session = LpSession::open(&model, default_cfg());
        let root = session.solve(&bounds, None);
        if root.result.status != LpStatus::Optimal {
            continue;
        }
        let mut separator = CutSeparator::new(&model, &[]);
        // Separate both at the LP optimum and at seeded random fractional
        // points — broader coverage than the optimum alone.
        let mut points = vec![root.result.values.clone()];
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..3 {
            points.push(
                (0..model.num_vars())
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect(),
            );
        }
        for point in &points {
            for cut in separator.separate(point, 16) {
                cuts_checked += 1;
                for pt in &feasible {
                    let lhs: f64 = cut.terms.iter().map(|&(v, c)| c * pt[v.index()]).sum();
                    assert!(
                        lhs <= cut.rhs + 1e-9,
                        "seed {seed}: {:?} cut {} cuts off feasible {pt:?}",
                        cut.kind,
                        cut.name
                    );
                }
            }
        }
    }
    assert!(cuts_checked >= 20, "only {cuts_checked} cuts exercised");
}

#[test]
fn integral_optimum_separates_nothing() {
    for seed in 0..40u64 {
        let model = random_model(seed);
        let bounds = model_bounds(&model);
        let mut session = LpSession::open(&model, default_cfg());
        let root = session.solve(&bounds, None);
        if root.result.status != LpStatus::Optimal {
            continue;
        }
        let integral = root
            .result
            .values
            .iter()
            .all(|x| (x - x.round()).abs() < 1e-9);
        if !integral {
            continue;
        }
        let mut separator = CutSeparator::new(&model, &[]);
        let cuts = separator.separate(&root.result.values, 16);
        assert!(
            cuts.is_empty(),
            "seed {seed}: integral point separated {cuts:?}"
        );
    }
}
