//! Property suite for the sparse LU basis factorisation
//! ([`croxmap_ilp::factor`]): FTRAN/BTRAN must agree with the explicit
//! dense-inverse oracle on seeded random bases (structural and slack
//! columns mixed, with pivot updates layered on top), singular and
//! degenerate bases must be rejected by both representations, and the
//! eta-accumulation + forced-refactorisation cycle must be bit-for-bit
//! deterministic across runs.

use croxmap_ilp::{CscMatrix, DenseInverse, FactorOpts, LuFactors};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random sparse `m × n` structural matrix with small integer entries
/// (2–4 non-zeros per column), the same texture the croxmap formulations
/// produce.
fn random_csc(rng: &mut SmallRng, m: usize, n: usize) -> CscMatrix {
    let cols: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|_| {
            let nnz = rng.gen_range(2usize..=4.min(m));
            let mut rows: Vec<usize> = (0..m).collect();
            // Deterministic partial shuffle: pick `nnz` distinct rows.
            for i in 0..nnz {
                let j = rng.gen_range(i..m);
                rows.swap(i, j);
            }
            rows[..nnz]
                .iter()
                .map(|&r| {
                    let mut v = f64::from(rng.gen_range(-3i32..=3));
                    if v == 0.0 {
                        v = 1.0;
                    }
                    (r, v)
                })
                .collect()
        })
        .collect();
    CscMatrix::from_columns(m, &cols)
}

/// A random basis: one column per row, mixing structural columns and
/// slacks (`n..n+m`), without repetition.
fn random_basis(rng: &mut SmallRng, m: usize, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n + m).collect();
    let mut basis = Vec::with_capacity(m);
    for _ in 0..m {
        let k = rng.gen_range(0..pool.len());
        basis.push(pool.swap_remove(k));
    }
    basis
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: entry {i}: {x} vs {y}"
        );
    }
}

#[test]
fn ftran_btran_match_dense_oracle_on_random_bases() {
    let mut factored = 0u32;
    let mut rejected = 0u32;
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = rng.gen_range(3usize..=12);
        let n = rng.gen_range(m..=2 * m);
        let a = random_csc(&mut rng, m, n);
        let basis = random_basis(&mut rng, m, n);
        let mut lu = LuFactors::identity(m);
        let mut dense = DenseInverse::identity(m);
        let lu_ok = lu.factorize(&basis, &a, n);
        let dense_ok = dense.factorize(&basis, &a, n);
        // Both representations must agree on singularity (their pivot
        // tolerances are aligned; a disagreement would let one engine
        // accept a basis the other rejects).
        assert_eq!(lu_ok, dense_ok, "seed {seed}: singularity verdict");
        if !lu_ok {
            rejected += 1;
            continue;
        }
        factored += 1;
        for trial in 0..3 {
            let rhs: Vec<f64> = (0..m)
                .map(|_| f64::from(rng.gen_range(-5i32..=5)))
                .collect();
            let mut x1 = rhs.clone();
            let mut x2 = rhs.clone();
            lu.ftran(&mut x1);
            dense.ftran(&mut x2);
            assert_close(&x1, &x2, 1e-8, &format!("seed {seed} trial {trial} ftran"));
            let mut y1 = rhs.clone();
            let mut y2 = rhs;
            lu.btran(&mut y1);
            dense.btran(&mut y2);
            assert_close(&y1, &y2, 1e-8, &format!("seed {seed} trial {trial} btran"));
        }
    }
    // The random family must exercise both outcomes.
    assert!(factored > 100, "too few nonsingular bases: {factored}");
    assert!(rejected > 10, "too few singular bases: {rejected}");
}

#[test]
fn degenerate_bases_rejected() {
    let a = CscMatrix::from_columns(
        3,
        &[
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 2.0), (1, 2.0)], // scalar multiple of column 0
            vec![(2, 1.0)],
        ],
    );
    for basis in [
        vec![0, 1, 2], // linearly dependent structural pair
        vec![0, 0, 2], // duplicated column
        vec![3, 3, 5], // duplicated slack
        vec![0, 3, 3], // slack duplicated against a structural basis
    ] {
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(!lu.factorize(&basis, &a, 3), "lu accepted {basis:?}");
        assert!(!dense.factorize(&basis, &a, 3), "dense accepted {basis:?}");
    }
}

#[test]
fn eta_updates_track_dense_rank_one_across_pivots() {
    for seed in 300..360u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = rng.gen_range(4usize..=10);
        let n = rng.gen_range(m..=2 * m);
        let a = random_csc(&mut rng, m, n);
        // Start from the all-slack identity basis and pivot structural
        // columns in one at a time, keeping LU (etas) and the dense
        // inverse (rank-one sweeps) in lockstep.
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut lu = LuFactors::identity(m);
        let mut dense = DenseInverse::identity(m);
        assert!(lu.factorize(&basis, &a, n));
        assert!(dense.factorize(&basis, &a, n));
        let mut pivots = 0u32;
        for q in 0..n {
            let r = rng.gen_range(0..m);
            // Transformed column w = B⁻¹ a_q via the LU path.
            let mut w = vec![0.0; m];
            a.axpy_col(&mut w, 1.0, q);
            let mut w_dense = w.clone();
            lu.ftran(&mut w);
            dense.ftran(&mut w_dense);
            assert_close(&w, &w_dense, 1e-8, &format!("seed {seed} col {q} w"));
            if w[r].abs() < 1e-6 || basis.contains(&q) {
                continue; // unusable pivot for this random row
            }
            lu.update(r, &w);
            dense.update(r, &w_dense);
            basis[r] = q;
            pivots += 1;
            let rhs: Vec<f64> = (0..m)
                .map(|_| f64::from(rng.gen_range(-4i32..=4)))
                .collect();
            let mut x1 = rhs.clone();
            let mut x2 = rhs;
            lu.ftran(&mut x1);
            dense.ftran(&mut x2);
            assert_close(&x1, &x2, 1e-6, &format!("seed {seed} after pivot on {q}"));
        }
        if pivots > 0 {
            assert_eq!(lu.eta_count() as u32, pivots);
            // A forced refactorisation of the updated basis must agree
            // with the eta-file representation it replaces.
            let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
            let mut before = rhs.clone();
            lu.ftran(&mut before);
            assert!(lu.factorize(&basis, &a, n), "seed {seed}: refactorise");
            assert_eq!(lu.eta_count(), 0);
            let mut after = rhs;
            lu.ftran(&mut after);
            assert_close(&before, &after, 1e-6, &format!("seed {seed} refactor"));
        }
    }
}

/// Runs one eta-accumulation + forced-refactorisation cycle and returns
/// every intermediate FTRAN image of a fixed probe vector.
fn eta_refactor_trace(seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 8;
    let n = 12;
    let a = random_csc(&mut rng, m, n);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut lu = LuFactors::identity(m);
    assert!(lu.factorize(&basis, &a, n));
    let probe: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
    let mut trace = Vec::new();
    let opts = FactorOpts {
        refactor_interval: 3,
        eta_fill_factor: 8.0,
    };
    for q in 0..n {
        let r = rng.gen_range(0..m);
        let mut w = vec![0.0; m];
        a.axpy_col(&mut w, 1.0, q);
        lu.ftran(&mut w);
        if w[r].abs() < 1e-6 || basis.contains(&q) {
            continue;
        }
        lu.update(r, &w);
        basis[r] = q;
        if lu.needs_refactor(&opts) {
            assert!(lu.factorize(&basis, &a, n));
        }
        let mut beta = probe.clone();
        lu.ftran(&mut beta);
        trace.push(beta);
    }
    assert!(trace.len() >= 4, "seed {seed}: trace too short");
    trace
}

#[test]
fn eta_accumulation_with_forced_refactorisation_is_bit_deterministic() {
    // The deterministic clock meters this machinery, so two identical
    // runs must produce bit-identical β vectors — not merely close ones —
    // through every eta append and every forced refactorisation.
    for seed in [7u64, 42, 1234] {
        let t1 = eta_refactor_trace(seed);
        let t2 = eta_refactor_trace(seed);
        assert_eq!(t1.len(), t2.len());
        for (step, (b1, b2)) in t1.iter().zip(&t2).enumerate() {
            for (i, (x, y)) in b1.iter().zip(b2).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "seed {seed} step {step} entry {i}: {x} vs {y}"
                );
            }
        }
    }
}
