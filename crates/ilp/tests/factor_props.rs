//! Property suite for the sparse LU basis factorisation
//! ([`croxmap_ilp::factor`]): FTRAN/BTRAN must agree with the explicit
//! dense-inverse oracle on seeded random bases (structural and slack
//! columns mixed, with pivot updates layered on top), the Forrest–Tomlin
//! and product-form update schemes must track each other and the oracle
//! through long (including near-singular and highly degenerate) pivot
//! sequences, the hyper-sparse and scanning solve kernels must agree
//! exactly, singular and degenerate bases must be rejected by both
//! representations, and the update-accumulation + forced-refactorisation
//! cycle must be bit-for-bit deterministic across runs under either
//! update rule.

use croxmap_ilp::{CscMatrix, DenseInverse, FactorOpts, LuFactors, MarkowitzOrdering, UpdateRule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn opts_for(rule: UpdateRule) -> FactorOpts {
    FactorOpts {
        update: rule,
        ..FactorOpts::default()
    }
}

/// A random sparse `m × n` structural matrix with small integer entries
/// (2–4 non-zeros per column), the same texture the croxmap formulations
/// produce.
fn random_csc(rng: &mut SmallRng, m: usize, n: usize) -> CscMatrix {
    let cols: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|_| {
            let nnz = rng.gen_range(2usize..=4.min(m));
            let mut rows: Vec<usize> = (0..m).collect();
            // Deterministic partial shuffle: pick `nnz` distinct rows.
            for i in 0..nnz {
                let j = rng.gen_range(i..m);
                rows.swap(i, j);
            }
            rows[..nnz]
                .iter()
                .map(|&r| {
                    let mut v = f64::from(rng.gen_range(-3i32..=3));
                    if v == 0.0 {
                        v = 1.0;
                    }
                    (r, v)
                })
                .collect()
        })
        .collect();
    CscMatrix::from_columns(m, &cols)
}

/// A random basis: one column per row, mixing structural columns and
/// slacks (`n..n+m`), without repetition.
fn random_basis(rng: &mut SmallRng, m: usize, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n + m).collect();
    let mut basis = Vec::with_capacity(m);
    for _ in 0..m {
        let k = rng.gen_range(0..pool.len());
        basis.push(pool.swap_remove(k));
    }
    basis
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: entry {i}: {x} vs {y}"
        );
    }
}

#[test]
fn ftran_btran_match_dense_oracle_on_random_bases() {
    let mut factored = 0u32;
    let mut rejected = 0u32;
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = rng.gen_range(3usize..=12);
        let n = rng.gen_range(m..=2 * m);
        let a = random_csc(&mut rng, m, n);
        let basis = random_basis(&mut rng, m, n);
        let mut lu = LuFactors::identity(m);
        let mut dense = DenseInverse::identity(m);
        let lu_ok = lu.factorize(&basis, &a, n);
        let dense_ok = dense.factorize(&basis, &a, n);
        // Both representations must agree on singularity (their pivot
        // tolerances are aligned; a disagreement would let one engine
        // accept a basis the other rejects).
        assert_eq!(lu_ok, dense_ok, "seed {seed}: singularity verdict");
        if !lu_ok {
            rejected += 1;
            continue;
        }
        factored += 1;
        for trial in 0..3 {
            let rhs: Vec<f64> = (0..m)
                .map(|_| f64::from(rng.gen_range(-5i32..=5)))
                .collect();
            let mut x1 = rhs.clone();
            let mut x2 = rhs.clone();
            lu.ftran(&mut x1);
            dense.ftran(&mut x2);
            assert_close(&x1, &x2, 1e-8, &format!("seed {seed} trial {trial} ftran"));
            let mut y1 = rhs.clone();
            let mut y2 = rhs;
            lu.btran(&mut y1);
            dense.btran(&mut y2);
            assert_close(&y1, &y2, 1e-8, &format!("seed {seed} trial {trial} btran"));
        }
    }
    // The random family must exercise both outcomes.
    assert!(factored > 100, "too few nonsingular bases: {factored}");
    assert!(rejected > 10, "too few singular bases: {rejected}");
}

#[test]
fn degenerate_bases_rejected() {
    let a = CscMatrix::from_columns(
        3,
        &[
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 2.0), (1, 2.0)], // scalar multiple of column 0
            vec![(2, 1.0)],
        ],
    );
    for basis in [
        vec![0, 1, 2], // linearly dependent structural pair
        vec![0, 0, 2], // duplicated column
        vec![3, 3, 5], // duplicated slack
        vec![0, 3, 3], // slack duplicated against a structural basis
    ] {
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(!lu.factorize(&basis, &a, 3), "lu accepted {basis:?}");
        assert!(!dense.factorize(&basis, &a, 3), "dense accepted {basis:?}");
    }
}

#[test]
fn updates_track_dense_rank_one_across_pivots_under_both_rules() {
    for rule in [UpdateRule::ProductForm, UpdateRule::ForrestTomlin] {
        let opts = opts_for(rule);
        for seed in 300..360u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = rng.gen_range(4usize..=10);
            let n = rng.gen_range(m..=2 * m);
            let a = random_csc(&mut rng, m, n);
            // Start from the all-slack identity basis and pivot structural
            // columns in one at a time, keeping the LU (under `rule`) and
            // the dense inverse (rank-one sweeps) in lockstep.
            let mut basis: Vec<usize> = (n..n + m).collect();
            let mut lu = LuFactors::identity(m);
            let mut dense = DenseInverse::identity(m);
            assert!(lu.factorize(&basis, &a, n));
            assert!(dense.factorize(&basis, &a, n));
            let mut pivots = 0u32;
            for q in 0..n {
                let r = rng.gen_range(0..m);
                // Transformed column w = B⁻¹ a_q via the LU path.
                let mut w = vec![0.0; m];
                a.axpy_col(&mut w, 1.0, q);
                let mut w_dense = w.clone();
                lu.ftran(&mut w);
                dense.ftran(&mut w_dense);
                assert_close(&w, &w_dense, 1e-8, &format!("seed {seed} col {q} w"));
                if w[r].abs() < 1e-6 || basis.contains(&q) {
                    continue; // unusable pivot for this random row
                }
                basis[r] = q;
                if !lu.update(r, &w, &opts) {
                    // A Forrest–Tomlin update the representation cannot
                    // absorb refactorises from the updated basis — the
                    // engine's recovery path.
                    assert!(lu.factorize(&basis, &a, n), "seed {seed}: recovery");
                }
                dense.update(r, &w_dense);
                pivots += 1;
                let rhs: Vec<f64> = (0..m)
                    .map(|_| f64::from(rng.gen_range(-4i32..=4)))
                    .collect();
                let mut x1 = rhs.clone();
                let mut x2 = rhs.clone();
                lu.ftran(&mut x1);
                dense.ftran(&mut x2);
                assert_close(
                    &x1,
                    &x2,
                    1e-6,
                    &format!("{rule:?} seed {seed} ftran after pivot on {q}"),
                );
                let mut y1 = rhs.clone();
                let mut y2 = rhs;
                lu.btran(&mut y1);
                dense.btran(&mut y2);
                assert_close(
                    &y1,
                    &y2,
                    1e-6,
                    &format!("{rule:?} seed {seed} btran after pivot on {q}"),
                );
            }
            if pivots > 0 {
                // A forced refactorisation of the updated basis must agree
                // with the update-file representation it replaces.
                let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
                let mut before = rhs.clone();
                lu.ftran(&mut before);
                assert!(lu.factorize(&basis, &a, n), "seed {seed}: refactorise");
                assert_eq!(lu.update_count(), 0);
                let mut after = rhs;
                lu.ftran(&mut after);
                assert_close(&before, &after, 1e-6, &format!("seed {seed} refactor"));
            }
        }
    }
}

/// Forrest–Tomlin, product-form and the dense oracle driven in lockstep
/// through long pivot sequences that revisit the same rows over and over
/// (the highly degenerate pattern set-partitioning bases produce), on
/// matrices spiked with near-singular columns.
#[test]
fn three_representations_agree_on_degenerate_and_near_singular_sequences() {
    let mut total_pivots = 0u32;
    for seed in 500..540u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = rng.gen_range(6usize..=12);
        let n = 2 * m;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::new();
        for j in 0..n {
            let base = random_csc(&mut rng, m, 1);
            let (rows, vals) = base.col(0);
            let mut col: Vec<(usize, f64)> =
                rows.iter().copied().zip(vals.iter().copied()).collect();
            // Every fourth column is scaled close to the pivot tolerance:
            // factorisation survives, but pivots get ill-conditioned.
            if j % 4 == 3 {
                for e in &mut col {
                    e.1 *= 1e-7;
                }
            }
            cols.push(col);
        }
        let a = CscMatrix::from_columns(m, &cols);
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut ft = LuFactors::identity(m);
        let mut pf = LuFactors::identity(m);
        let mut dense = DenseInverse::identity(m);
        assert!(ft.factorize(&basis, &a, n));
        assert!(pf.factorize(&basis, &a, n));
        assert!(dense.factorize(&basis, &a, n));
        let fopts = opts_for(UpdateRule::ForrestTomlin);
        let popts = opts_for(UpdateRule::ProductForm);
        let mut pivots = 0u32;
        for step in 0..3 * m {
            // Degenerate churn: a small set of rows is pivoted repeatedly.
            let r = rng.gen_range(0..m.min(4));
            let q = rng.gen_range(0..n);
            if basis.contains(&q) {
                continue;
            }
            let mut w_ft = vec![0.0; m];
            a.axpy_col(&mut w_ft, 1.0, q);
            let mut w_pf = w_ft.clone();
            let mut w_dense = w_ft.clone();
            ft.ftran(&mut w_ft);
            pf.ftran(&mut w_pf);
            dense.ftran(&mut w_dense);
            assert_close(&w_ft, &w_pf, 1e-5, &format!("seed {seed} step {step} w"));
            if w_ft[r].abs() < 1e-5 {
                continue;
            }
            basis[r] = q;
            if !ft.update(r, &w_ft, &fopts) {
                assert!(ft.factorize(&basis, &a, n), "seed {seed}: ft recovery");
            }
            assert!(pf.update(r, &w_pf, &popts));
            dense.update(r, &w_dense);
            pivots += 1;
            let rhs: Vec<f64> = (0..m)
                .map(|_| f64::from(rng.gen_range(-4i32..=4)))
                .collect();
            let mut x_ft = rhs.clone();
            let mut x_pf = rhs.clone();
            let mut x_dense = rhs.clone();
            ft.ftran(&mut x_ft);
            pf.ftran(&mut x_pf);
            dense.ftran(&mut x_dense);
            assert_close(
                &x_ft,
                &x_dense,
                1e-5,
                &format!("seed {seed} step {step} ft-vs-dense ftran"),
            );
            assert_close(
                &x_pf,
                &x_dense,
                1e-5,
                &format!("seed {seed} step {step} pf-vs-dense ftran"),
            );
            let mut y_ft = rhs.clone();
            let mut y_dense = rhs;
            ft.btran(&mut y_ft);
            dense.btran(&mut y_dense);
            assert_close(
                &y_ft,
                &y_dense,
                1e-5,
                &format!("seed {seed} step {step} ft-vs-dense btran"),
            );
        }
        total_pivots += pivots;
    }
    // The family as a whole must exercise a long pivot history.
    assert!(total_pivots > 120, "too few pivots overall: {total_pivots}");
}

/// The hyper-sparse (DFS reach) and scanning kernels execute the same
/// scatter arithmetic in the same pivot order, so forcing either via the
/// density cutover must not change a single result — across both update
/// rules, sparse and dense right-hand sides, and refactorisations.
#[test]
fn hyper_sparse_and_scanning_kernels_agree_exactly() {
    for rule in [UpdateRule::ProductForm, UpdateRule::ForrestTomlin] {
        let opts = opts_for(rule);
        for seed in 700..740u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = rng.gen_range(6usize..=14);
            let n = rng.gen_range(m..=2 * m);
            let a = random_csc(&mut rng, m, n);
            let mut basis: Vec<usize> = (n..n + m).collect();
            let mut scan = LuFactors::identity(m);
            let mut hyper = LuFactors::identity(m);
            scan.set_hyper_density_cutoff(0.0); // always the scanning kernels
            hyper.set_hyper_density_cutoff(1.0); // always the reach kernels
            assert!(scan.factorize(&basis, &a, n));
            assert!(hyper.factorize(&basis, &a, n));
            for q in 0..n {
                let r = rng.gen_range(0..m);
                let mut w1 = vec![0.0; m];
                a.axpy_col(&mut w1, 1.0, q);
                let mut w2 = w1.clone();
                scan.ftran(&mut w1);
                hyper.ftran(&mut w2);
                assert_eq!(w1, w2, "{rule:?} seed {seed} col {q}: pivot column");
                if w1[r].abs() < 1e-6 || basis.contains(&q) {
                    continue;
                }
                basis[r] = q;
                let ok1 = scan.update(r, &w1, &opts);
                let ok2 = hyper.update(r, &w2, &opts);
                assert_eq!(ok1, ok2, "{rule:?} seed {seed}: update verdict");
                if !ok1 {
                    assert!(scan.factorize(&basis, &a, n));
                    assert!(hyper.factorize(&basis, &a, n));
                }
                // Sparse probes (unit vectors: the hyper-sparse fast
                // path) and a dense probe (forced through the reach
                // kernel only on `hyper`).
                for probe in 0..m.min(3) {
                    let mut x1 = vec![0.0; m];
                    let mut x2 = vec![0.0; m];
                    x1[probe] = 1.0;
                    x2[probe] = 1.0;
                    scan.ftran(&mut x1);
                    hyper.ftran(&mut x2);
                    assert_eq!(x1, x2, "{rule:?} seed {seed} q {q}: unit ftran {probe}");
                    let mut y1 = vec![0.0; m];
                    let mut y2 = vec![0.0; m];
                    y1[probe] = 1.0;
                    y2[probe] = 1.0;
                    scan.btran(&mut y1);
                    hyper.btran(&mut y2);
                    assert_eq!(y1, y2, "{rule:?} seed {seed} q {q}: unit btran {probe}");
                }
                let dense_rhs: Vec<f64> = (0..m).map(|i| 1.0 + (i % 5) as f64).collect();
                let mut x1 = dense_rhs.clone();
                let mut x2 = dense_rhs.clone();
                scan.ftran(&mut x1);
                hyper.ftran(&mut x2);
                assert_eq!(x1, x2, "{rule:?} seed {seed} q {q}: dense ftran");
                let mut y1 = dense_rhs.clone();
                let mut y2 = dense_rhs;
                scan.btran(&mut y1);
                hyper.btran(&mut y2);
                assert_eq!(y1, y2, "{rule:?} seed {seed} q {q}: dense btran");
            }
        }
    }
}

/// The pattern-threading entry points ([`LuFactors::ftran_sparse_tracked`]
/// and [`LuFactors::btran_unit_tracked`]) run the same hyper-sparse
/// kernels as the scanning path and merely capture the result pattern on
/// the side — so their numeric results must match the scanning oracle
/// **exactly**, the captured pattern must be a sorted duplicate-free
/// superset of the result's non-zeros, and feeding a captured pattern
/// into the *next* dependent solve (the reuse the engine performs every
/// iteration) must again match the oracle exactly.
#[test]
fn tracked_kernels_match_scan_kernels_and_chain_patterns() {
    for rule in [UpdateRule::ProductForm, UpdateRule::ForrestTomlin] {
        let opts = opts_for(rule);
        let mut tracked_solves = 0u32;
        for seed in 800..840u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = rng.gen_range(6usize..=14);
            let n = rng.gen_range(m..=2 * m);
            let a = random_csc(&mut rng, m, n);
            let mut basis: Vec<usize> = (n..n + m).collect();
            let mut scan = LuFactors::identity(m);
            let mut track = LuFactors::identity(m);
            scan.set_hyper_density_cutoff(0.0); // always the scanning kernels
            track.set_hyper_density_cutoff(1.0); // always the reach kernels
            assert!(scan.factorize(&basis, &a, n));
            assert!(track.factorize(&basis, &a, n));
            let mut result_pat = Vec::new();
            let mut next_pat = Vec::new();
            for q in 0..n {
                let r = rng.gen_range(0..m);
                // FTRAN of the raw column, tracked vs oracle.
                let mut x1 = vec![0.0; m];
                a.axpy_col(&mut x1, 1.0, q);
                let mut x2 = x1.clone();
                let (rows, _) = a.col(q);
                let hit = track.ftran_sparse_tracked(&mut x1, rows, &mut result_pat);
                scan.ftran(&mut x2);
                assert_eq!(x1, x2, "{rule:?} seed {seed} col {q}: tracked ftran");
                if hit {
                    tracked_solves += 1;
                    assert!(
                        result_pat.windows(2).all(|w| w[0] < w[1]),
                        "{rule:?} seed {seed} col {q}: pattern not sorted/deduped"
                    );
                    for (i, &v) in x1.iter().enumerate() {
                        assert!(
                            v == 0.0 || result_pat.contains(&i),
                            "{rule:?} seed {seed} col {q}: non-zero {i} outside pattern"
                        );
                    }
                    // Thread the captured pattern into a dependent solve,
                    // exactly like the engine seeding its next FTRAN.
                    let mut y1 = x1.clone();
                    let mut y2 = x1.clone();
                    let rehit = track.ftran_sparse_tracked(&mut y1, &result_pat, &mut next_pat);
                    scan.ftran(&mut y2);
                    assert_eq!(y1, y2, "{rule:?} seed {seed} col {q}: chained ftran");
                    if rehit {
                        tracked_solves += 1;
                    }
                }
                // Unit BTRAN, tracked vs oracle.
                let mut u1 = vec![0.0; m];
                let mut u2 = vec![0.0; m];
                u2[r] = 1.0;
                let bhit = track.btran_unit_tracked(r, &mut u1, &mut result_pat);
                scan.btran(&mut u2);
                assert_eq!(u1, u2, "{rule:?} seed {seed} row {r}: tracked btran");
                if bhit {
                    tracked_solves += 1;
                    assert!(
                        result_pat.windows(2).all(|w| w[0] < w[1]),
                        "{rule:?} seed {seed} row {r}: btran pattern not sorted/deduped"
                    );
                    for (i, &v) in u1.iter().enumerate() {
                        assert!(
                            v == 0.0 || result_pat.contains(&i),
                            "{rule:?} seed {seed} row {r}: non-zero {i} outside btran pattern"
                        );
                    }
                }
                // Layer a pivot update so the kernels run over a growing
                // eta/transform file, where the duplicate-pattern hazard
                // actually lives.
                if x1[r].abs() < 1e-6 || basis.contains(&q) {
                    continue;
                }
                basis[r] = q;
                let ok1 = scan.update(r, &x2, &opts);
                let ok2 = track.update(r, &x1, &opts);
                assert_eq!(ok1, ok2, "{rule:?} seed {seed}: update verdict");
                if !ok1 {
                    assert!(scan.factorize(&basis, &a, n));
                    assert!(track.factorize(&basis, &a, n));
                }
            }
        }
        assert!(
            tracked_solves > 400,
            "{rule:?}: too few tracked solves: {tracked_solves}"
        );
    }
}

/// Runs one pivot/refactorisation cycle under `ordering` (refactorising
/// every third update, so the ordering actually decides pivots) and
/// returns every intermediate FTRAN image of a fixed probe vector.
fn ordering_trace(seed: u64, ordering: MarkowitzOrdering) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 10;
    let n = 16;
    let a = random_csc(&mut rng, m, n);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let opts = FactorOpts {
        refactor_interval: 3,
        ordering,
        ..FactorOpts::default()
    };
    let mut lu = LuFactors::identity(m);
    lu.set_ordering(ordering);
    assert!(lu.factorize(&basis, &a, n));
    let probe: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
    let mut trace = Vec::new();
    for q in 0..n {
        let r = rng.gen_range(0..m);
        let mut w = vec![0.0; m];
        a.axpy_col(&mut w, 1.0, q);
        lu.ftran(&mut w);
        if w[r].abs() < 1e-6 || basis.contains(&q) {
            continue;
        }
        basis[r] = q;
        if !lu.update(r, &w, &opts) || lu.needs_refactor(&opts) {
            assert!(lu.factorize(&basis, &a, n));
        }
        let mut beta = probe.clone();
        lu.ftran(&mut beta);
        trace.push(beta);
    }
    assert!(trace.len() >= 4, "seed {seed}: trace too short");
    trace
}

#[test]
fn markowitz_orderings_bit_deterministic_and_numerically_agree() {
    for seed in [11u64, 77, 4242] {
        // Each ordering must be bit-for-bit reproducible at a fixed seed —
        // the dynamic ordering's tie-breaks are deterministic, not
        // hash-order accidents.
        for ordering in [
            MarkowitzOrdering::Dynamic,
            MarkowitzOrdering::StaticColCount,
        ] {
            let t1 = ordering_trace(seed, ordering);
            let t2 = ordering_trace(seed, ordering);
            assert_eq!(t1.len(), t2.len());
            for (step, (b1, b2)) in t1.iter().zip(&t2).enumerate() {
                for (i, (x, y)) in b1.iter().zip(b2).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{ordering:?} seed {seed} step {step} entry {i}: {x} vs {y}"
                    );
                }
            }
        }
        // And across orderings the *results* must agree numerically: the
        // pivot sequences differ, the factorised operator does not.
        let dynamic = ordering_trace(seed, MarkowitzOrdering::Dynamic);
        let fixed = ordering_trace(seed, MarkowitzOrdering::StaticColCount);
        assert_eq!(dynamic.len(), fixed.len());
        for (step, (b1, b2)) in dynamic.iter().zip(&fixed).enumerate() {
            assert_close(b1, b2, 1e-8, &format!("seed {seed} step {step} orderings"));
        }
    }
}

/// Runs one update-accumulation + forced-refactorisation cycle under
/// `rule` and returns every intermediate FTRAN image of a fixed probe
/// vector.
fn update_refactor_trace(seed: u64, rule: UpdateRule) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 8;
    let n = 12;
    let a = random_csc(&mut rng, m, n);
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut lu = LuFactors::identity(m);
    assert!(lu.factorize(&basis, &a, n));
    let probe: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
    let mut trace = Vec::new();
    let opts = FactorOpts {
        refactor_interval: 3,
        eta_fill_factor: 8.0,
        update: rule,
        ..FactorOpts::default()
    };
    for q in 0..n {
        let r = rng.gen_range(0..m);
        let mut w = vec![0.0; m];
        a.axpy_col(&mut w, 1.0, q);
        lu.ftran(&mut w);
        if w[r].abs() < 1e-6 || basis.contains(&q) {
            continue;
        }
        basis[r] = q;
        if !lu.update(r, &w, &opts) || lu.needs_refactor(&opts) {
            assert!(lu.factorize(&basis, &a, n));
        }
        let mut beta = probe.clone();
        lu.ftran(&mut beta);
        trace.push(beta);
    }
    assert!(trace.len() >= 4, "seed {seed}: trace too short");
    trace
}

#[test]
fn update_accumulation_with_forced_refactorisation_is_bit_deterministic() {
    // The deterministic clock meters this machinery, so two identical
    // runs must produce bit-identical β vectors — not merely close ones —
    // through every pivot update and every forced refactorisation, under
    // either update rule.
    for rule in [UpdateRule::ProductForm, UpdateRule::ForrestTomlin] {
        for seed in [7u64, 42, 1234] {
            let t1 = update_refactor_trace(seed, rule);
            let t2 = update_refactor_trace(seed, rule);
            assert_eq!(t1.len(), t2.len());
            for (step, (b1, b2)) in t1.iter().zip(&t2).enumerate() {
                for (i, (x, y)) in b1.iter().zip(b2).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{rule:?} seed {seed} step {step} entry {i}: {x} vs {y}"
                    );
                }
            }
        }
    }
}
