//! Parallel tree-search properties.
//!
//! * **Objective equivalence**: for seeded random 0/1 models across LP
//!   engines × basis-update rules, solving with `threads ∈ {2, 4}` — in
//!   both coordination modes — must reach the same optimal objective as
//!   the sequential solver (1e-6), and agree on infeasibility.
//! * **Deterministic mode reproducibility**: at a fixed thread count,
//!   two runs of [`ParallelMode::Deterministic`] must produce identical
//!   incumbent-event sequences (objective *and* timestamp), node counts,
//!   deterministic time and factorisation stats.
//! * **Incumbent-stream invariants** hold in parallel runs too: strictly
//!   improving objectives, nondecreasing timestamps.

use croxmap_ilp::{
    JsonlSink, LpEngine, Model, ParallelMode, SolveStatus, Solver, SolverConfig, TraceHandle,
    UpdateRule, VarId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `CROXMAP_TEST_TRACE=jsonl` re-runs the whole suite with a JSONL trace
/// sink attached (CI validates the emitted stream with the bench
/// harness's `trace_report` schema checker). Every solve of this test
/// binary appends to one file under `CROXMAP_TRACE_DIR` (default
/// `target/trace`).
fn test_trace_handle() -> Option<TraceHandle> {
    use std::sync::OnceLock;
    static HANDLE: OnceLock<Option<TraceHandle>> = OnceLock::new();
    HANDLE
        .get_or_init(|| {
            if std::env::var("CROXMAP_TEST_TRACE").ok().as_deref() != Some("jsonl") {
                return None;
            }
            let dir =
                std::env::var("CROXMAP_TRACE_DIR").unwrap_or_else(|_| "target/trace".to_owned());
            std::fs::create_dir_all(&dir).ok()?;
            let path = format!("{dir}/parallel_props-{}.jsonl", std::process::id());
            let file = std::fs::File::create(path).ok()?;
            Some(TraceHandle::new(JsonlSink::new(std::io::BufWriter::new(
                file,
            ))))
        })
        .clone()
}

/// The seeded random 0/1 family the presolve/backend suites use: mixed
/// ≤/≥/= rows over 3–9 binaries.
fn random_model(seed: u64) -> Model {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(3usize..=9);
    let rows = rng.gen_range(1usize..=6);
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for r in 0..rows {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.gen_range(-3i32..=3)))
            .collect();
        let rhs = f64::from(rng.gen_range(-4i32..=6));
        let expr = m.expr(
            vars.iter()
                .zip(&coeffs)
                .filter(|&(_, &c)| c != 0.0)
                .map(|(&v, &c)| (v, c)),
        );
        let cmp = match rng.gen_range(0u32..4) {
            0 => expr.geq(rhs),
            1 if rhs >= 0.0 => expr.eq(rhs),
            _ => expr.leq(rhs),
        };
        m.add_constraint(format!("r{r}"), cmp);
    }
    m.set_objective(
        m.expr(
            vars.iter()
                .map(|&v| (v, f64::from(rng.gen_range(-5i32..=5)))),
        ),
    );
    m
}

fn base_config(engine: LpEngine, update: UpdateRule, seed: u64) -> SolverConfig {
    let cfg = SolverConfig {
        det_time_limit: 5.0,
        ..SolverConfig::default()
    }
    .with_lp_engine(engine)
    .with_update_rule(update)
    .with_seed(seed);
    match test_trace_handle() {
        Some(trace) => cfg.with_trace(trace),
        None => cfg,
    }
}

const ENGINES: [(LpEngine, UpdateRule); 3] = [
    (LpEngine::SparseLu, UpdateRule::ForrestTomlin),
    (LpEngine::SparseLu, UpdateRule::ProductForm),
    (LpEngine::DenseInverse, UpdateRule::ForrestTomlin),
];

#[test]
fn parallel_reaches_sequential_optimum_across_engines_and_modes() {
    let mut optimal = 0u32;
    let mut engaged = 0u32;
    for seed in 0..25u64 {
        let model = random_model(seed);
        for (engine, update) in ENGINES {
            let cfg = base_config(engine, update, seed);
            let reference = Solver::new(cfg.clone()).solve(&model);
            for threads in [2usize, 4] {
                for mode in [ParallelMode::Deterministic, ParallelMode::WorkStealing] {
                    let run =
                        Solver::new(cfg.clone().with_threads(threads).with_parallel_mode(mode))
                            .solve(&model);
                    assert_eq!(
                        reference.status, run.status,
                        "seed {seed}, {engine:?}/{update:?}, {threads} threads {mode:?}: status"
                    );
                    if reference.status == SolveStatus::Optimal {
                        optimal += 1;
                        let want = reference.best.as_ref().unwrap().objective();
                        let got = run.best.as_ref().unwrap().objective();
                        assert!(
                            (want - got).abs() < 1e-6,
                            "seed {seed}, {engine:?}/{update:?}, {threads} threads {mode:?}: \
                             sequential {want}, parallel {got}"
                        );
                    }
                    // Runs that reached the tree phase report driver
                    // stats (presolve or the root phase may finish the
                    // model first — those legitimately stay `None`).
                    if let Some(stats) = run.parallel {
                        assert_eq!(stats.threads, threads);
                        assert_eq!(stats.mode, mode);
                        engaged += 1;
                    }
                    // The anytime stream invariants survive parallelism.
                    for w in run.incumbents.windows(2) {
                        assert!(
                            w[1].objective < w[0].objective,
                            "seed {seed}: non-improving incumbent stream"
                        );
                        assert!(
                            w[1].det_time >= w[0].det_time,
                            "seed {seed}: time ran backwards"
                        );
                    }
                }
            }
        }
    }
    assert!(
        optimal >= 60,
        "family too degenerate: {optimal} optimal runs"
    );
    assert!(engaged >= 20, "parallel driver barely exercised: {engaged}");
}

#[test]
fn deterministic_mode_is_reproducible_run_to_run() {
    let mut compared = 0u32;
    for seed in 0..15u64 {
        let model = random_model(seed);
        for threads in [2usize, 4] {
            let cfg = base_config(LpEngine::SparseLu, UpdateRule::ForrestTomlin, seed)
                .with_threads(threads)
                .with_parallel_mode(ParallelMode::Deterministic);
            let a = Solver::new(cfg.clone()).solve(&model);
            let b = Solver::new(cfg).solve(&model);
            assert_eq!(a.status, b.status, "seed {seed}, {threads} threads");
            assert_eq!(a.nodes, b.nodes, "seed {seed}, {threads} threads: nodes");
            assert_eq!(
                a.det_time, b.det_time,
                "seed {seed}, {threads} threads: det_time"
            );
            assert_eq!(
                a.incumbents.len(),
                b.incumbents.len(),
                "seed {seed}, {threads} threads: stream length"
            );
            for (x, y) in a.incumbents.iter().zip(&b.incumbents) {
                assert_eq!(x.objective, y.objective, "seed {seed}: event objective");
                assert_eq!(x.det_time, y.det_time, "seed {seed}: event timestamp");
                assert_eq!(
                    x.solution.values(),
                    y.solution.values(),
                    "seed {seed}: event assignment"
                );
            }
            assert_eq!(a.factor, b.factor, "seed {seed}: factor stats");
            assert_eq!(a.best_bound, b.best_bound, "seed {seed}: bound");
            compared += 1;
        }
    }
    assert!(compared >= 30);
}

/// `threads = 1` ignores the parallel mode entirely: both modes must be
/// byte-for-byte the sequential solve.
#[test]
fn single_thread_ignores_parallel_mode() {
    for seed in 0..10u64 {
        let model = random_model(seed);
        let cfg = base_config(LpEngine::SparseLu, UpdateRule::ForrestTomlin, seed);
        let sequential = Solver::new(cfg.clone()).solve(&model);
        for mode in [ParallelMode::Deterministic, ParallelMode::WorkStealing] {
            let run =
                Solver::new(cfg.clone().with_threads(1).with_parallel_mode(mode)).solve(&model);
            assert_eq!(sequential.status, run.status);
            assert_eq!(sequential.nodes, run.nodes);
            assert_eq!(sequential.det_time, run.det_time);
            assert_eq!(sequential.incumbents.len(), run.incumbents.len());
            assert!(run.parallel.is_none(), "threads=1 must not report stats");
        }
    }
}
