//! # croxmap-ilp — an anytime 0/1 integer linear programming toolkit
//!
//! The paper solves its mapping formulations with Google OR-Tools' CP-SAT
//! (`SAT_INTEGER_PROGRAMMING`). No solver bindings are available in this
//! reproduction, so this crate implements the required machinery from
//! scratch:
//!
//! * a [`Model`] builder for variables, linear constraints and a
//!   minimisation objective,
//! * a bounded-variable two-phase **primal simplex** for LP relaxations
//!   ([`simplex`]),
//! * **branch and bound** with best-first exploration, LP-guided diving and
//!   most-fractional / pseudo-cost branching,
//! * **large-neighbourhood search** for anytime improvement on instances
//!   too large to enumerate,
//! * an *incumbent stream*: every improving solution is reported through a
//!   callback together with its [`DeterministicClock`] timestamp, mirroring
//!   the deterministic timing OR-Tools exposes and the paper reports.
//!
//! The solver is deliberately single-threaded and fully deterministic for a
//! fixed seed: identical inputs produce identical incumbent streams, which
//! the experiment harness relies on.
//!
//! ## Example
//!
//! ```
//! use croxmap_ilp::{Model, SolveStatus, Solver, SolverConfig};
//!
//! // Minimise x + 2y subject to x + y >= 1, x,y binary.
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! let result = Solver::new(SolverConfig::default()).solve(&m);
//! assert_eq!(result.status, SolveStatus::Optimal);
//! let best = result.best.expect("feasible");
//! assert_eq!(best.value(x), 1.0);
//! assert_eq!(best.value(y), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod expr;
mod model;
mod solution;
pub mod simplex;
mod solver;

pub use clock::DeterministicClock;
pub use expr::{Comparison, ConstraintSense, LinExpr, VarId};
pub use model::{Constraint, Model, ModelError, VarType, Variable};
pub use solution::{IncumbentEvent, Solution};
pub use solver::{BranchRule, SolveResult, SolveStatus, Solver, SolverConfig};
