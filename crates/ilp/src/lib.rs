//! # croxmap-ilp — an anytime 0/1 integer linear programming toolkit
//!
//! The paper solves its mapping formulations with Google OR-Tools' CP-SAT
//! (`SAT_INTEGER_PROGRAMMING`). No solver bindings are available in this
//! reproduction, so this crate implements the required machinery from
//! scratch:
//!
//! * a [`Model`] builder for variables, linear constraints and a
//!   minimisation objective,
//! * a **presolver** ([`presolve`]): before the search starts, a stack of
//!   reductions (singleton rows, fixed-variable substitution, redundant
//!   and duplicate rows, dominated and duplicate columns, coefficient
//!   tightening, clique extraction) shrinks the model to a
//!   [`PresolvedModel`] and records a [`Postsolve`] stack that maps every
//!   solution losslessly back to the original variable space — so the
//!   whole model → presolve → factor → simplex pipeline operates on fewer
//!   rows, columns and nonzeros,
//! * a **unified LP backend API** ([`backend`]): every engine — the
//!   dense two-phase tableau, the dense-inverse revised simplex, and the
//!   sparse LU engine under product-form or Forrest–Tomlin updates —
//!   sits behind one object-safe [`LpBackend`] trait with capability
//!   flags (warm starts, bound deltas, objective deltas, row addition),
//!   driven through an owning [`LpSession`] that holds the model view,
//!   the live basis/factorisation and stats,
//! * a **sparse revised simplex** as the default backend ([`simplex`],
//!   [`sparse`], [`factor`]): CSC matrix stored once, basis held as a
//!   sparse LU refactorised under **dynamic Markowitz ordering**
//!   ([`MarkowitzOrdering::Dynamic`] — pivot merit recomputed on the
//!   shrinking active submatrix; the static column-count ordering stays
//!   selectable as a differential oracle) with Forrest–Tomlin updates
//!   and hyper-sparse triangular solves whose tracked variants capture
//!   result patterns for reuse by the next solve in a pivot chain,
//!   **dual steepest-edge pricing** ([`PricingRule::SteepestEdge`]:
//!   exact reference weights from hyper-sparse unit BTRANs, updated per
//!   pivot by the Forrest–Goldfarb recurrence, re-initialised when
//!   drift exceeds a guard band; Devex and Dantzig remain available),
//!   deterministic anti-degeneracy cost perturbation on cold starts, a
//!   per-solve deterministic work budget (`LpConfig::work_limit`), and
//!   the dense two-phase tableau as the terminal fallback of every
//!   session's ladder,
//! * a **warm-start API** ([`Basis`]): optimal solves return a basis
//!   snapshot that related solves (same matrix and objective, different
//!   bounds) resume from via dual-simplex reoptimisation, skipping phase 1
//!   entirely,
//! * **incremental row addition** ([`LpSession::add_rows`]): a live
//!   session accepts appended rows without refactorising from scratch —
//!   new logical slacks enter the basis and the factorisation absorbs
//!   the growth through bordered transforms — which is the primitive
//!   behind the **root cutting planes** ([`cuts`]: knapsack cover and
//!   clique cuts, [`SolverConfig::with_cuts`]),
//! * **branch and bound** with best-first exploration, LP-guided diving
//!   and most-fractional / pseudo-cost branching — a search context
//!   threads one session, and every child node re-optimises from its
//!   parent's basis,
//! * **parallel tree search** ([`parallel`],
//!   [`SolverConfig::with_threads`]): after the sequential root phase,
//!   the open tree is explored by worker threads — work-stealing deques
//!   or an epoch-synchronised deterministic schedule — with racing
//!   dive/LNS workers feeding a shared incumbent exchange,
//! * **large-neighbourhood search** for anytime improvement on instances
//!   too large to enumerate,
//! * an *incumbent stream*: every improving solution is reported through a
//!   callback together with its [`DeterministicClock`] timestamp, mirroring
//!   the deterministic timing OR-Tools exposes and the paper reports.
//!
//! ## Threading model and determinism
//!
//! By default (`threads = 1`) the solver is single-threaded and fully
//! deterministic for a fixed seed: identical inputs produce identical
//! incumbent streams, which the experiment harness relies on.
//!
//! With [`SolverConfig::with_threads`]`(n)` for `n > 1`, the phases split
//! as follows:
//!
//! * **Shared, read-only:** the (presolved, cut-grown) model view — the
//!   CSC matrix is built once and shared by [`std::sync::Arc`] — plus the
//!   solver configuration and the final root basis every worker seeds
//!   from.
//! * **Per-worker:** an [`LpSession`] (live basis, factorisation and
//!   fallback ladder), a [`DeterministicClock`], an RNG stream offset
//!   from the solver seed, and pseudo-cost tables. Workers never share
//!   mutable LP state; `LpBackend: Send` (compile-time asserted in
//!   [`parallel`]) is what lets each boxed engine move onto its thread.
//! * **Shared, synchronised:** the incumbent. Pruning reads an atomic
//!   objective cutoff on every node; accepted solutions pass through a
//!   mutex-protected exchange that arbitrates races and stamps events
//!   with the *aggregate* work clock, so `det_time` totals mean the same
//!   thing at any thread count.
//!
//! Determinism guarantees by [`ParallelMode`]:
//!
//! * [`ParallelMode::Deterministic`] (default): reproducible run-to-run
//!   at a fixed thread count — node ordering and incumbent acceptance are
//!   resolved by (bound, node-id) priority at an epoch barrier, so the
//!   incumbent-event sequence, node count, bound and deterministic time
//!   are identical across runs. Results may differ *across* thread
//!   counts (a different-but-valid exploration order).
//! * [`ParallelMode::WorkStealing`]: the final objective is unchanged,
//!   but node counts and incumbent timing vary run-to-run.
//! * `threads = 1` always takes the historical sequential path,
//!   bit-identical to previous releases.
//!
//! ## LP sessions: warm starts and dynamic rows
//!
//! An [`LpSession`] owns one LP conversation: open it on a model, solve,
//! change bounds, append rows — the engine state stays hot throughout.
//!
//! ```
//! use croxmap_ilp::simplex::{LpConfig, LpStatus};
//! use croxmap_ilp::{LpSession, Model};
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! let mut session = LpSession::open(&m, LpConfig::default());
//!
//! // Root relaxation, cold.
//! let root = session.solve(&[(0.0, 1.0), (0.0, 1.0)], None);
//! assert_eq!(root.result.status, LpStatus::Optimal);
//! let basis = root.basis.expect("optimal solves return a basis");
//!
//! // Child node (x fixed to 0) re-optimises from the parent's basis —
//! // bound deltas fold into one FTRAN on the live engine.
//! let child = session.solve(&[(0.0, 0.0), (0.0, 1.0)], Some(&basis));
//! assert_eq!(child.result.status, LpStatus::Optimal);
//! assert!((child.result.objective - 2.0).abs() < 1e-6);
//!
//! // Tighten the live relaxation with an extra row (a cutting plane):
//! // the factorisation grows in place, no rebuild.
//! let grown = session.add_rows(
//!     vec![("cut".into(), m.expr([(y, 1.0)]).leq(0.0))],
//!     child.basis.as_ref(),
//! );
//! let cut = session.solve(&[(0.0, 1.0), (0.0, 1.0)], grown.basis.as_ref());
//! assert_eq!(cut.result.status, LpStatus::Optimal);
//! assert!((cut.result.objective - 1.0).abs() < 1e-6);
//! ```
//!
//! ## Observability
//!
//! The [`trace`] module is a std-only deterministic observability layer
//! (no `tracing`-crate dependency — the image builds offline, so like
//! `crates/compat` everything here is hand-rolled on `std`):
//!
//! * **Span taxonomy** ([`trace::SpanKind`]): `PresolvePass`, `RootLp`,
//!   `CutRound`, `Dive`, `NodeExpand`, `Refactor` and `LnsRound` events,
//!   each stamped with the emitting worker's deterministic clock
//!   (*start_ticks* + metered *ticks*), never wall time.
//! * **Sinks** ([`trace::TraceSink`]): install one via
//!   [`SolverConfig::with_trace`] wrapped in a [`trace::TraceHandle`] —
//!   a bounded [`trace::RingSink`], a [`trace::JsonlSink`] streaming
//!   JSON Lines, or a [`trace::ProgressLog`] rendering the
//!   SCIP/HiGHS-style periodic table (nodes, open, incumbent, bound,
//!   gap, det-sec).
//! * **Phase breakdown** ([`trace::PhaseBreakdown`]): every
//!   [`SolveResult`] reports its deterministic ticks split across
//!   presolve / root LP / cuts / dives / tree / LNS, summing exactly to
//!   `det_time` (an `Other` bucket absorbs unattributed driver
//!   overhead). The breakdown is computed whether or not a sink is
//!   installed.
//!
//! Determinism guarantees:
//!
//! * **Tracing is observation only.** Span emission never charges the
//!   clock and never touches an RNG stream, so a traced solve produces
//!   bit-identical nodes, `det_time`, incumbent stream and
//!   [`FactorStats`] to the same solve untraced (pinned by regression
//!   tests).
//! * **No sink, no cost.** With `SolverConfig::trace = None` the solver
//!   buffers nothing and locks nothing.
//! * **Parallel merge order is fixed.** Workers buffer spans privately
//!   and the driver merges the buffers in worker order (`0` = the
//!   root/sequential context, then worker `1..=n`), so
//!   [`ParallelMode::Deterministic`] runs at a fixed thread count emit
//!   byte-identical JSONL run-to-run.
//!
//! These guarantees are not just documented — they are statically
//! enforced; see [Determinism discipline](#determinism-discipline).
//!
//! ```
//! use croxmap_ilp::trace::{RingSink, TraceHandle, TraceSink};
//! use croxmap_ilp::{Model, Solver, SolverConfig};
//! use std::sync::{Arc, Mutex};
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! m.add_constraint("on", m.expr([(x, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0)]));
//!
//! let sink: Arc<Mutex<dyn TraceSink>> = Arc::new(Mutex::new(RingSink::new(1024)));
//! let cfg = SolverConfig::default().with_trace(TraceHandle::shared(Arc::clone(&sink)));
//! let result = Solver::new(cfg).solve(&m);
//! // The phase ticks sum exactly to the run's deterministic total.
//! assert_eq!(
//!     croxmap_ilp::DeterministicClock::ticks_to_seconds(result.phases.total_ticks()),
//!     result.det_time,
//! );
//! # let _ = sink;
//! ```
//!
//! ### Migrating from the pre-session entry points
//!
//! The free functions `simplex::solve_relaxation*` and the stateful
//! `simplex::LpSolver` are **deprecated shims** over [`LpSession`], kept
//! for one release as differential-test oracles:
//!
//! * `solve_relaxation(_warm)(model, bounds, cfg, warm)` →
//!   `LpSession::open(model, cfg).solve(bounds, warm)`,
//! * `LpSolver::solve(model, …)` → open one session per model and call
//!   [`LpSession::solve`] (the session keeps the engine hot exactly like
//!   the old handle, and additionally accepts rows).
//!
//! ## Determinism discipline
//!
//! The properties above (and the threading model's bit-identical
//! replays) are enforced *statically* by `croxmap-lint`
//! (`crates/lint`), a std-only analysis pass that runs over the whole
//! workspace in tier-1 (`tests/lint_clean.rs`) and CI
//! (`cargo run -p croxmap-lint -- --deny`). The rules it holds this
//! crate (and `croxmap-core`) to:
//!
//! * **`determinism-time`** — no `std::time::Instant`/`SystemTime`:
//!   results must be a function of (model, config, seed), never wall
//!   time. All metering goes through [`DeterministicClock`].
//! * **`determinism-rng`** — no `thread_rng`/`from_entropy`: every RNG
//!   stream derives from the solver seed (workers get golden-ratio
//!   offsets of it).
//! * **`hash-iteration`** — `HashMap`/`HashSet` may be *probed*
//!   (keyed lookups stay legal) but never *iterated*: iteration order
//!   would leak the hasher's per-process state into results. Anything
//!   traversed is a `Vec`/`BTreeMap`/`BTreeSet` — see
//!   `CutSeparator::adj`'s membership-only contract in `cuts.rs`.
//! * **`relaxed-ordering`** / **`thread-spawn`** — every
//!   `Ordering::Relaxed` and any threading outside `parallel.rs` needs
//!   a written justification; `parallel.rs`'s module docs carry the
//!   full happens-before contract the waivers appeal to.
//! * **`panic-path`** — library `unwrap()`/`expect()` must state an
//!   invariant or be converted to an error path.
//! * **`ticks-arithmetic`** — the `1e9` ticks-per-det-second ratio is
//!   defined once, in [`DeterministicClock`]; everyone else converts
//!   through [`DeterministicClock::ticks_to_seconds`] /
//!   [`DeterministicClock::seconds_to_ticks`].
//! * **`float-equality`** — no `==`/`!=` between float-typed
//!   expressions and no NaN-unaware `partial_cmp(..).unwrap*()`
//!   comparators: a float compare must state its intent as
//!   `total_cmp` (ordering), `to_bits` (bit identity) or a named
//!   tolerance. Structural-zero checks (`x == 0.0`) and the exact
//!   `±INFINITY` no-bound sentinel stay legal.
//! * **`tolerance-drift`** — any float literal with magnitude in
//!   `[1e-12, 1e-3)` outside [`tol`] is an unnamed tolerance; every
//!   feasibility/pivot/gap threshold lives in [`tol`] exactly once, so
//!   two modules can never silently disagree on what "feasible" means.
//! * **`lock-order`** — every `Mutex`/`RwLock` guard's hold span is
//!   tracked across the workspace (including through direct callees)
//!   into an acquisition graph; any cycle fails the build, and the
//!   proven acyclic order is committed as `docs/lock_order.md` (kept
//!   fresh by `tests/lint_clean.rs`).
//! * **`tick-charge`** — in the solver hot path (`revised.rs`,
//!   `factor.rs`, `cuts.rs`, `solver.rs`), a loop driving
//!   FTRAN/BTRAN/pivot/separation kernels must charge the
//!   deterministic clock or check a work budget, so no work can run
//!   outside the tick accounting that `PhaseBreakdown` and the det
//!   budget rest on.
//!
//! A violation is suppressed only by an inline
//! `// lint: allow(<rule>) — <reason>` waiver (reason mandatory) or a
//! path entry in the workspace `lint.toml`; `croxmap-lint` reports
//! anything unwaived with file, line and snippet.
//!
//! ## Example
//!
//! ```
//! use croxmap_ilp::{Model, SolveStatus, Solver, SolverConfig};
//!
//! // Minimise x + 2y subject to x + y >= 1, x,y binary.
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! let result = Solver::new(SolverConfig::default()).solve(&m);
//! assert_eq!(result.status, SolveStatus::Optimal);
//! let best = result.best.expect("feasible");
//! assert_eq!(best.value(x), 1.0);
//! assert_eq!(best.value(y), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod basis;
mod clock;
pub mod cuts;
mod expr;
pub mod factor;
mod model;
pub mod parallel;
pub mod presolve;
mod revised;
pub mod simplex;
mod solution;
mod solver;
pub mod sparse;
pub mod tol;
pub mod trace;

pub use backend::{
    BackendCaps, LpBackend, LpSession, RevisedBackend, RowAddition, SessionStats, TableauBackend,
};
pub use basis::{Basis, VarStatus};
pub use clock::{DeterministicClock, TICKS_PER_SECOND};
pub use cuts::{Cut, CutSeparator, SeparationStats};
pub use expr::{Comparison, ConstraintSense, LinExpr, VarId};
pub use factor::{DenseInverse, FactorOpts, FactorStats, LuFactors, MarkowitzOrdering, UpdateRule};
pub use model::{Constraint, Model, ModelError, VarType, Variable};
pub use parallel::{ParallelMode, ParallelStats};
pub use presolve::{Postsolve, PresolveConfig, PresolveStats, PresolvedModel};
pub use simplex::{LpEngine, PricingRule};
pub use solution::{IncumbentEvent, Solution};
pub use solver::{BranchRule, CutSummary, SolveResult, SolveStatus, Solver, SolverConfig};
pub use sparse::CscMatrix;
pub use trace::{
    JsonlSink, Phase, PhaseBreakdown, ProgressLog, ProgressRow, RingSink, SpanEvent, SpanKind,
    TraceHandle, TraceSink,
};
