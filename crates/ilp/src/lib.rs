//! # croxmap-ilp — an anytime 0/1 integer linear programming toolkit
//!
//! The paper solves its mapping formulations with Google OR-Tools' CP-SAT
//! (`SAT_INTEGER_PROGRAMMING`). No solver bindings are available in this
//! reproduction, so this crate implements the required machinery from
//! scratch:
//!
//! * a [`Model`] builder for variables, linear constraints and a
//!   minimisation objective,
//! * a **presolver** ([`presolve`]): before the search starts, a stack of
//!   reductions (singleton rows, fixed-variable substitution, redundant
//!   and duplicate rows, dominated and duplicate columns, coefficient
//!   tightening, clique extraction) shrinks the model to a
//!   [`PresolvedModel`] and records a [`Postsolve`] stack that maps every
//!   solution losslessly back to the original variable space — so the
//!   whole model → presolve → factor → simplex pipeline operates on fewer
//!   rows, columns and nonzeros,
//! * a **sparse revised simplex** for LP relaxations ([`simplex`]): the
//!   constraint matrix is stored once in CSC form ([`sparse`]), the basis
//!   is held as a sparse LU factorisation ([`factor`]), and columns are
//!   priced by sparse dot products — with a deterministic anti-degeneracy
//!   cost perturbation on cold starts (stripped exactly before results
//!   are reported) and the original dense two-phase tableau kept as a
//!   robustness fallback,
//! * a **warm-start API** ([`Basis`]): optimal solves return a basis
//!   snapshot that related solves (same matrix and objective, different
//!   bounds) resume from via dual-simplex reoptimisation, skipping phase 1
//!   entirely,
//! * **branch and bound** with best-first exploration, LP-guided diving
//!   and most-fractional / pseudo-cost branching — every child node
//!   re-optimises from its parent's basis,
//! * **large-neighbourhood search** for anytime improvement on instances
//!   too large to enumerate,
//! * an *incumbent stream*: every improving solution is reported through a
//!   callback together with its [`DeterministicClock`] timestamp, mirroring
//!   the deterministic timing OR-Tools exposes and the paper reports.
//!
//! The solver is deliberately single-threaded and fully deterministic for a
//! fixed seed: identical inputs produce identical incumbent streams, which
//! the experiment harness relies on.
//!
//! ## Warm-starting LP relaxations
//!
//! [`simplex::solve_relaxation_warm`] accepts an optional [`Basis`] and
//! returns a new snapshot on optimal solves:
//!
//! ```
//! use croxmap_ilp::simplex::{solve_relaxation_warm, LpConfig, LpStatus};
//! use croxmap_ilp::Model;
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! // Root relaxation, cold.
//! let root = solve_relaxation_warm(&m, &[(0.0, 1.0), (0.0, 1.0)], &LpConfig::default(), None);
//! assert_eq!(root.result.status, LpStatus::Optimal);
//! let basis = root.basis.expect("optimal solves return a basis");
//!
//! // Child node (x fixed to 0) re-optimises from the parent's basis.
//! let child = solve_relaxation_warm(
//!     &m,
//!     &[(0.0, 0.0), (0.0, 1.0)],
//!     &LpConfig::default(),
//!     Some(&basis),
//! );
//! assert_eq!(child.result.status, LpStatus::Optimal);
//! assert!((child.result.objective - 2.0).abs() < 1e-6);
//! ```
//!
//! ## Example
//!
//! ```
//! use croxmap_ilp::{Model, SolveStatus, Solver, SolverConfig};
//!
//! // Minimise x + 2y subject to x + y >= 1, x,y binary.
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! let result = Solver::new(SolverConfig::default()).solve(&m);
//! assert_eq!(result.status, SolveStatus::Optimal);
//! let best = result.best.expect("feasible");
//! assert_eq!(best.value(x), 1.0);
//! assert_eq!(best.value(y), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
mod clock;
mod expr;
pub mod factor;
mod model;
pub mod presolve;
mod revised;
pub mod simplex;
mod solution;
mod solver;
pub mod sparse;

pub use basis::{Basis, VarStatus};
pub use clock::{DeterministicClock, TICKS_PER_SECOND};
pub use expr::{Comparison, ConstraintSense, LinExpr, VarId};
pub use factor::{DenseInverse, FactorOpts, FactorStats, LuFactors, UpdateRule};
pub use model::{Constraint, Model, ModelError, VarType, Variable};
pub use presolve::{Postsolve, PresolveConfig, PresolveStats, PresolvedModel};
pub use simplex::{LpEngine, PricingRule};
pub use solution::{IncumbentEvent, Solution};
pub use solver::{BranchRule, SolveResult, SolveStatus, Solver, SolverConfig};
pub use sparse::CscMatrix;
