//! Basis snapshots for warm-starting LP relaxations.
//!
//! A [`Basis`] records which columns of the simplex working set are basic
//! (one per row) and the bound status of every column — structural columns
//! first, then one logical (slack) column per constraint row. Because
//! branch-and-bound only ever changes variable *bounds*, never the
//! objective or the matrix, a parent node's optimal basis remains **dual
//! feasible** for both children; re-installing it and running the dual
//! simplex typically re-optimises in a handful of pivots instead of a full
//! two-phase cold solve.
//!
//! A snapshot is representation-agnostic: it stores only column indices
//! and statuses, never factors. Installing one re-factorises the basis in
//! whatever representation the engine is configured with — the sparse LU
//! of [`crate::factor::LuFactors`] by default, or the explicit dense
//! inverse oracle — so snapshots taken under one engine warm-start the
//! other freely.

use serde::{Deserialize, Serialize};

/// Bound status of one column in a basis snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarStatus {
    /// The column is basic (its value is determined by the basis).
    Basic,
    /// The column is nonbasic at its lower bound.
    AtLower,
    /// The column is nonbasic at its upper bound.
    AtUpper,
}

/// A snapshot of an optimal simplex basis, reusable across bound changes.
///
/// Produced by [`crate::simplex::solve_relaxation_warm`] on optimal solves
/// and accepted back by the same function to warm-start a related solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Basis {
    /// The basic column per row (`cols.len()` == number of constraints).
    pub cols: Vec<usize>,
    /// Status per column: structural columns `0..n`, then logical columns
    /// `n..n + m` (one slack per constraint row).
    pub status: Vec<VarStatus>,
}

impl Basis {
    /// Structural + logical column count this snapshot describes.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.status.len()
    }

    /// Returns `true` if the snapshot is structurally consistent for a
    /// problem with `m` rows and `n_total` columns: right lengths, basic
    /// columns in range, and statuses agreeing with the basic set.
    #[must_use]
    pub fn is_consistent(&self, m: usize, n_total: usize) -> bool {
        if self.cols.len() != m || self.status.len() != n_total {
            return false;
        }
        let mut seen = vec![false; n_total];
        for &c in &self.cols {
            if c >= n_total || seen[c] || self.status[c] != VarStatus::Basic {
                return false;
            }
            seen[c] = true;
        }
        self.status
            .iter()
            .enumerate()
            .all(|(j, &s)| (s == VarStatus::Basic) == seen[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_checks() {
        let b = Basis {
            cols: vec![2, 1],
            status: vec![
                VarStatus::AtLower,
                VarStatus::Basic,
                VarStatus::Basic,
                VarStatus::AtUpper,
            ],
        };
        assert!(b.is_consistent(2, 4));
        assert!(!b.is_consistent(1, 4)); // wrong row count
        assert!(!b.is_consistent(2, 3)); // wrong column count
    }

    #[test]
    fn rejects_status_mismatch() {
        let b = Basis {
            cols: vec![0],
            status: vec![VarStatus::AtLower, VarStatus::AtUpper],
        };
        assert!(!b.is_consistent(1, 2)); // basic col 0 not marked Basic
    }

    #[test]
    fn rejects_duplicate_basic() {
        let b = Basis {
            cols: vec![0, 0],
            status: vec![VarStatus::Basic, VarStatus::AtLower, VarStatus::AtLower],
        };
        assert!(!b.is_consistent(2, 3));
    }
}
