//! The ILP model: variables, constraints and objective.

use crate::expr::{Comparison, ConstraintSense, LinExpr, VarId};
use crate::sparse::CscMatrix;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarType {
    /// Binary variable in `{0, 1}`.
    Binary,
    /// Continuous variable within its bounds.
    Continuous,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name (for diagnostics).
    pub name: String,
    /// Integrality class.
    pub ty: VarType,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
}

/// A stored linear constraint (normalised expression).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Human-readable name (for diagnostics).
    pub name: String,
    /// Left-hand side terms, normalised (sorted, merged, constant folded
    /// into `rhs`).
    pub terms: Vec<(VarId, f64)>,
    /// Sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Evaluates the left-hand side on an assignment.
    #[must_use]
    pub fn lhs_value(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.index()]).sum()
    }

    /// Returns `true` if the constraint holds on `values` within `tol`.
    #[must_use]
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.lhs_value(values);
        match self.sense {
            ConstraintSense::Le => lhs <= self.rhs + tol,
            ConstraintSense::Ge => lhs >= self.rhs - tol,
            ConstraintSense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Errors raised by model validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A bound pair is inverted or non-finite.
    BadBounds {
        /// Offending variable.
        var: VarId,
        /// Its lower bound.
        lower: f64,
        /// Its upper bound.
        upper: f64,
    },
    /// A coefficient or right-hand side is not finite.
    NonFiniteCoefficient {
        /// Name of the offending constraint, or `"objective"`.
        location: String,
    },
    /// A variable appears more than once in a constraint or the objective.
    /// Normalised expressions never contain duplicates; this guards
    /// hand-built or deserialised term lists, which would otherwise flow
    /// into the CSC matrix as separate entries.
    DuplicateTerm {
        /// Name of the offending constraint, or `"objective"`.
        location: String,
        /// The repeated variable.
        var: VarId,
    },
    /// The model has no variables.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadBounds { var, lower, upper } => {
                write!(f, "variable {var} has invalid bounds [{lower}, {upper}]")
            }
            ModelError::NonFiniteCoefficient { location } => {
                write!(f, "non-finite coefficient in {location}")
            }
            ModelError::DuplicateTerm { location, var } => {
                write!(f, "variable {var} appears more than once in {location}")
            }
            ModelError::Empty => write!(f, "model has no variables"),
        }
    }
}

impl Error for ModelError {}

/// First variable repeated in a term list, if any. Term lists are usually
/// sorted (normalised) but may not be when built by hand; sort a scratch
/// copy of the ids rather than assuming order.
fn first_duplicate(terms: &[(VarId, f64)]) -> Option<VarId> {
    let mut ids: Vec<VarId> = terms.iter().map(|&(v, _)| v).collect();
    ids.sort_unstable();
    ids.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
}

/// A minimisation integer linear program.
///
/// Build variables with [`Model::add_binary`] / [`Model::add_continuous`],
/// add constraints, set a linear objective and hand the model to a
/// [`Solver`](crate::Solver).
///
/// ```
/// use croxmap_ilp::Model;
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// m.add_constraint("sum", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
/// m.set_objective(m.expr([(x, -1.0), (y, -2.0)])); // maximise x + 2y
/// assert_eq!(m.num_vars(), 2);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Vec<(VarId, f64)>,
    objective_offset: f64,
    /// Branching priority per variable (higher = decided first); absent
    /// entries default to 0.
    priorities: Vec<(VarId, i32)>,
    /// Lazily built CSC form of the constraint matrix, shared by every LP
    /// relaxation of this model. Reset by any mutation that changes the
    /// matrix shape or entries (new variables or constraints).
    #[serde(skip)]
    csc_cache: OnceLock<Arc<CscMatrix>>,
}

impl Model {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a binary variable and returns its id.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.csc_cache = OnceLock::new();
        // lint: allow(panic-path) — u32 overflow needs 4 billion variables; the largest paper instance has ~10^5, and VarId is u32 across the whole solver by design
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(Variable {
            name: name.into(),
            ty: VarType::Binary,
            lower: 0.0,
            upper: 1.0,
        });
        id
    }

    /// Adds a continuous variable with the given bounds and returns its id.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.csc_cache = OnceLock::new();
        // lint: allow(panic-path) — u32 overflow needs 4 billion variables; the largest paper instance has ~10^5, and VarId is u32 across the whole solver by design
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(Variable {
            name: name.into(),
            ty: VarType::Continuous,
            lower,
            upper,
        });
        id
    }

    /// Convenience builder for an expression over this model's variables.
    ///
    /// Purely syntactic sugar — the terms are not validated until
    /// [`Model::validate`].
    #[must_use]
    pub fn expr(&self, terms: impl IntoIterator<Item = (VarId, f64)>) -> LinExpr {
        LinExpr::from_terms(terms)
    }

    /// Adds a constraint; the comparison's expression is normalised and its
    /// constant folded into the right-hand side.
    pub fn add_constraint(&mut self, name: impl Into<String>, cmp: Comparison) {
        self.csc_cache = OnceLock::new();
        let expr = cmp.expr.normalize();
        let rhs = cmp.rhs - expr.constant_part();
        self.constraints.push(Constraint {
            name: name.into(),
            terms: expr.terms().to_vec(),
            sense: cmp.sense,
            rhs,
        });
    }

    /// Appends a constraint **row** without touching existing columns —
    /// the grow-only mutation behind
    /// [`LpSession::add_rows`](crate::LpSession::add_rows) (cutting
    /// planes, lazy constraints).
    ///
    /// Unlike [`Model::add_constraint`], which invalidates the cached CSC
    /// matrix wholesale, this keeps the cache alive by extending it in
    /// place via [`CscMatrix::append_rows`] — an `O(nnz + row)` merge with
    /// no re-sort — so a live LP engine can absorb the new row without
    /// rebuilding its column view of the matrix. The expression is
    /// normalised exactly like `add_constraint` (terms merged and sorted,
    /// the constant folded into the right-hand side).
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable this model does not have —
    /// rows may grow, columns may not.
    pub fn append_row(&mut self, name: impl Into<String>, cmp: Comparison) {
        let expr = cmp.expr.normalize();
        let rhs = cmp.rhs - expr.constant_part();
        for &(v, _) in expr.terms() {
            assert!(
                v.index() < self.vars.len(),
                "append_row is grow-only: variable {v} does not exist"
            );
        }
        let terms = expr.terms().to_vec();
        if let Some(csc) = self.csc_cache.get() {
            let added: Vec<(usize, f64)> = terms.iter().map(|&(v, c)| (v.index(), c)).collect();
            let grown = Arc::new(csc.append_rows(&[added]));
            self.csc_cache = OnceLock::new();
            let _ = self.csc_cache.set(grown);
        }
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            sense: cmp.sense,
            rhs,
        });
    }

    /// Sets the (minimisation) objective.
    pub fn set_objective(&mut self, expr: LinExpr) {
        let expr = expr.normalize();
        self.objective_offset = expr.constant_part();
        self.objective = expr.terms().to_vec();
    }

    /// Overrides the bounds of `v` (e.g. to fix a binary to a constant).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        let var = &mut self.vars[v.index()];
        var.lower = lower;
        var.upper = upper;
    }

    /// Fixes a binary variable to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fix_binary(&mut self, v: VarId, value: bool) {
        let x = if value { 1.0 } else { 0.0 };
        self.set_bounds(v, x, x);
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable table.
    #[must_use]
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// The variable with id `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn variable(&self, v: VarId) -> &Variable {
        &self.vars[v.index()]
    }

    /// The constraint table.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The constraint matrix in CSC form (structural columns only),
    /// built on first use and cached until the model is mutated.
    ///
    /// Every LP relaxation of this model shares the returned matrix; the
    /// revised simplex prices columns through it instead of materialising
    /// a dense tableau. Repeated `(row, var)` terms — which only arise in
    /// hand-built or deserialised constraints, and which [`Model::validate`]
    /// rejects — are coalesced by summation rather than stored as separate
    /// entries.
    #[must_use]
    pub fn csc(&self) -> Arc<CscMatrix> {
        self.csc_cache
            .get_or_init(|| {
                let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.vars.len()];
                for (i, con) in self.constraints.iter().enumerate() {
                    for &(v, c) in &con.terms {
                        columns[v.index()].push((i, c));
                    }
                }
                Arc::new(CscMatrix::from_columns(self.constraints.len(), &columns))
            })
            .clone()
    }

    /// Objective terms (without offset).
    #[must_use]
    pub fn objective(&self) -> &[(VarId, f64)] {
        &self.objective
    }

    /// Constant offset of the objective.
    #[must_use]
    pub fn objective_offset(&self) -> f64 {
        self.objective_offset
    }

    /// Objective coefficient of `v` (0 if absent).
    #[must_use]
    pub fn objective_coefficient(&self, v: VarId) -> f64 {
        self.objective
            .iter()
            .find(|&&(w, _)| w == v)
            .map_or(0.0, |&(_, c)| c)
    }

    /// Evaluates the objective on an assignment.
    #[must_use]
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective_offset
            + self
                .objective
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Checks an assignment for feasibility: bounds, integrality of binary
    /// variables and every constraint, all within `tol`.
    #[must_use]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, var) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < var.lower - tol || x > var.upper + tol {
                return false;
            }
            if var.ty == VarType::Binary && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Index of the first violated constraint, if any.
    #[must_use]
    pub fn first_violated(&self, values: &[f64], tol: f64) -> Option<usize> {
        self.constraints
            .iter()
            .position(|c| !c.is_satisfied(values, tol))
    }

    /// Validates variable bounds and coefficient finiteness.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.vars.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, var) in self.vars.iter().enumerate() {
            let bad = var.lower > var.upper
                || var.lower.is_nan()
                || var.upper.is_nan()
                || var.lower == f64::INFINITY
                || var.upper == f64::NEG_INFINITY;
            if bad {
                return Err(ModelError::BadBounds {
                    var: VarId(i as u32),
                    lower: var.lower,
                    upper: var.upper,
                });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() || c.terms.iter().any(|&(_, co)| !co.is_finite()) {
                return Err(ModelError::NonFiniteCoefficient {
                    location: c.name.clone(),
                });
            }
            if let Some(var) = first_duplicate(&c.terms) {
                return Err(ModelError::DuplicateTerm {
                    location: c.name.clone(),
                    var,
                });
            }
        }
        if self.objective.iter().any(|&(_, c)| !c.is_finite()) || !self.objective_offset.is_finite()
        {
            return Err(ModelError::NonFiniteCoefficient {
                location: "objective".to_owned(),
            });
        }
        if let Some(var) = first_duplicate(&self.objective) {
            return Err(ModelError::DuplicateTerm {
                location: "objective".to_owned(),
                var,
            });
        }
        Ok(())
    }

    /// Sets the branching priority of `v`. Solvers decide fractional
    /// variables of the highest priority class first; the default priority
    /// is 0. Use this to mark "decision" variables whose fixation implies
    /// the rest (e.g. placement variables in an assignment model).
    pub fn set_branch_priority(&mut self, v: VarId, priority: i32) {
        self.priorities.push((v, priority));
    }

    /// Dense per-variable branching priorities.
    #[must_use]
    pub fn branch_priorities(&self) -> Vec<i32> {
        let mut p = vec![0; self.vars.len()];
        for &(v, pr) in &self.priorities {
            if v.index() < p.len() {
                p[v.index()] = pr;
            }
        }
        p
    }

    /// Ids of all binary variables.
    pub fn binary_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.ty == VarType::Binary)
            .map(|(i, _)| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("c", m.expr([(x, 1.0), (y, 2.0)]).leq(5.0));
        m.set_objective(m.expr([(x, 3.0), (y, 1.0)]));
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.variable(x).ty, VarType::Binary);
        assert_eq!(m.variable(y).upper, 10.0);
        assert_eq!(m.objective_coefficient(x), 3.0);
        assert_eq!(m.objective_coefficient(y), 1.0);
        m.validate().unwrap();
    }

    #[test]
    fn append_row_grows_cached_csc_in_place() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", m.expr([(x, 1.0), (y, 2.0)]).leq(3.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let before = m.csc();
        assert_eq!(before.rows(), 1);
        m.append_row("cut", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        let after = m.csc();
        assert_eq!(after.rows(), 2);
        assert_eq!(after.nnz(), 4);
        assert_eq!(m.num_constraints(), 2);
        // The grown matrix equals a cold rebuild of the same model.
        let rebuilt = {
            let mut fresh = m.clone();
            fresh.csc_cache = OnceLock::new();
            fresh.csc()
        };
        assert_eq!(*after, *rebuilt);
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "grow-only")]
    fn append_row_rejects_unknown_columns() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let mut other = Model::new();
        let _ = other.add_binary("a");
        let ghost = other.add_binary("ghost");
        m.set_objective(m.expr([(x, 1.0)]));
        m.append_row("bad", m.expr([(ghost, 1.0)]).leq(1.0));
    }

    #[test]
    fn constant_folds_into_rhs() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let mut e = m.expr([(x, 1.0)]);
        e.add_constant(2.0);
        m.add_constraint("c", e.leq(5.0));
        assert_eq!(m.constraints()[0].rhs, 3.0);
    }

    #[test]
    fn feasibility_checks_bounds_integrality_constraints() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 0.0], 1e-9)); // violates c
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[2.0, 0.0], 1e-9)); // out of bounds
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new();
        let _ = m.add_continuous("y", 3.0, 1.0);
        assert!(matches!(m.validate(), Err(ModelError::BadBounds { .. })));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint("c", m.expr([(x, f64::NAN)]).leq(1.0));
        assert!(matches!(
            m.validate(),
            Err(ModelError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_terms() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        m.validate().unwrap();
        // Normalisation merges duplicates on entry; forge an unmerged term
        // list the way a deserialised or hand-mutated model could carry.
        m.constraints[0].terms = vec![(x, 1.0), (y, 1.0), (x, 2.0)];
        assert!(matches!(
            m.validate(),
            Err(ModelError::DuplicateTerm { ref location, var }) if location == "c" && var == x
        ));
        // The CSC build coalesces the duplicate rather than storing two
        // entries for the same (row, column) slot.
        let csc = m.csc();
        assert_eq!(csc.nnz(), 2);
        assert_eq!(csc.dot_col(&[1.0], x.index()), 3.0);
    }

    #[test]
    fn validate_rejects_duplicate_objective_terms() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(m.expr([(x, 1.0), (x, 2.0)]));
        assert_eq!(m.objective().len(), 1, "set_objective normalises");
        m.objective = vec![(x, 1.0), (x, 2.0)];
        assert!(matches!(
            m.validate(),
            Err(ModelError::DuplicateTerm { ref location, .. }) if location == "objective"
        ));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Model::new().validate(), Err(ModelError::Empty));
    }

    #[test]
    fn objective_value_includes_offset() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let mut e = m.expr([(x, 2.0)]);
        e.add_constant(7.0);
        m.set_objective(e);
        assert_eq!(m.objective_value(&[1.0]), 9.0);
    }

    #[test]
    fn binary_vars_iterator() {
        let mut m = Model::new();
        let _x = m.add_binary("x");
        let _y = m.add_continuous("y", 0.0, 1.0);
        let _z = m.add_binary("z");
        let bins: Vec<_> = m.binary_vars().map(|v| v.index()).collect();
        assert_eq!(bins, vec![0, 2]);
    }
}
