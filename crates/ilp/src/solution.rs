//! Solutions and the incumbent stream.

use crate::expr::VarId;
use serde::{Deserialize, Serialize};

/// A feasible assignment together with its objective value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
}

impl Solution {
    /// Creates a solution from raw values and a pre-computed objective.
    #[must_use]
    pub fn new(values: Vec<f64>, objective: f64) -> Self {
        Solution { values, objective }
    }

    /// Objective value of this solution.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the solved model.
    #[must_use]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Returns `true` if the binary-rounded value of `v` is 1.
    #[must_use]
    pub fn is_one(&self, v: VarId) -> bool {
        self.value(v) > 0.5
    }

    /// The full assignment vector, indexed by variable.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// One improving solution in the solver's anytime stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncumbentEvent {
    /// Objective value of the new incumbent.
    pub objective: f64,
    /// Deterministic time (seconds) at which it was found.
    pub det_time: f64,
    /// The solution itself.
    pub solution: Solution,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup() {
        let s = Solution::new(vec![0.0, 1.0, 0.5], 3.0);
        assert_eq!(s.objective(), 3.0);
        assert!(!s.is_one(VarId(0)));
        assert!(s.is_one(VarId(1)));
        assert_eq!(s.values().len(), 3);
    }
}
