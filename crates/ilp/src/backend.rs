//! The unified, capability-based LP backend API: [`LpBackend`] +
//! [`LpSession`].
//!
//! Three generations of LP engines grew up in this crate — the dense
//! two-phase tableau, the revised simplex over an explicit dense inverse,
//! and the sparse LU engine under product-form and Forrest–Tomlin updates
//! — each reached through its own entry point. This module folds them
//! behind one **object-safe trait**, [`LpBackend`], whose capability
//! flags ([`BackendCaps`]) say what a backend can absorb *incrementally*
//! (without discarding its warm state): warm starts, bound deltas,
//! objective deltas, and — new with this API — **dynamic row addition**,
//! the primitive cutting planes and lazy constraints are built on.
//!
//! An [`LpSession`] owns everything one LP conversation needs:
//!
//! * the **model view** — a private copy of the caller's [`Model`] that
//!   grows rows as cuts are appended ([`Model::append_row`], grow-only:
//!   columns and existing rows never move),
//! * the **backend** holding the live basis/factorisation between solves,
//! * the dense-tableau **fallback ladder** every solve runs through (any
//!   solve a backend declines lands on the battle-tested two-phase
//!   tableau, exactly like the pre-session entry points), and
//! * cumulative [`SessionStats`].
//!
//! ```
//! use croxmap_ilp::{LpSession, Model};
//! use croxmap_ilp::simplex::{LpConfig, LpStatus};
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
//! m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
//!
//! let mut session = LpSession::open(&m, LpConfig::default());
//! let root = session.solve(&[(0.0, 1.0), (0.0, 1.0)], None);
//! assert_eq!(root.result.status, LpStatus::Optimal);
//!
//! // Tighten the live relaxation with an extra row — no rebuild, the
//! // engine's factorisation absorbs the growth in place.
//! let basis = root.basis;
//! let grown = session.add_rows(
//!     vec![("cut".into(), m.expr([(x, 1.0)]).leq(0.0))],
//!     basis.as_ref(),
//! );
//! let cut = session.solve(&[(0.0, 1.0), (0.0, 1.0)], grown.basis.as_ref());
//! assert_eq!(cut.result.status, LpStatus::Optimal);
//! assert!((cut.result.objective - 2.0).abs() < 1e-6);
//! ```

use crate::basis::{Basis, VarStatus};
use crate::expr::Comparison;
use crate::model::Model;
use crate::revised::LpContext;
use crate::simplex::{
    solve_relaxation_dense, LpConfig, LpEngine, LpResult, LpStatus, WarmLpResult, TOL,
};

/// What an [`LpBackend`] can absorb **incrementally** — i.e. while
/// keeping its warm state (basis, factorisation, reduced costs) alive.
/// Anything a backend cannot absorb is still *correct* through the
/// session's fallback ladder; the flags only describe what stays warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)] // independent capability flags
pub struct BackendCaps {
    /// Re-optimises from a caller-supplied [`Basis`] snapshot.
    pub warm_start: bool,
    /// Applies bound changes to a live basis (dual reoptimisation)
    /// instead of starting over.
    pub bound_deltas: bool,
    /// Re-prices a live basis after an objective change, keeping it when
    /// it stays dual feasible.
    pub objective_deltas: bool,
    /// Grows a live basis by appended rows (new logical slacks enter the
    /// basis; the factorisation absorbs the growth in place).
    pub row_addition: bool,
}

impl BackendCaps {
    /// A backend with no incremental capabilities (every solve is cold).
    #[must_use]
    pub const fn none() -> Self {
        BackendCaps {
            warm_start: false,
            bound_deltas: false,
            objective_deltas: false,
            row_addition: false,
        }
    }

    /// A fully incremental backend.
    #[must_use]
    pub const fn full() -> Self {
        BackendCaps {
            warm_start: true,
            bound_deltas: true,
            objective_deltas: true,
            row_addition: true,
        }
    }
}

/// One LP engine behind the unified API. Object safe: sessions and tests
/// hold backends as `Box<dyn LpBackend>` and drive every engine — dense
/// tableau, dense inverse, sparse LU under either update rule — through
/// the same calls.
///
/// `Send` is a supertrait: parallel tree workers each own a session (and
/// thus a boxed backend) on their own thread, so an engine that cannot
/// move across threads cannot implement the API —
/// [`crate::parallel`] asserts this at compile time.
pub trait LpBackend: Send {
    /// Short engine name for diagnostics and bench logs.
    fn name(&self) -> &'static str;

    /// The backend's incremental capabilities.
    fn caps(&self) -> BackendCaps;

    /// Solves the relaxation of `view` under `bounds`, warm-starting from
    /// `warm` when supported. `Err(spent_ticks)` declines the solve (the
    /// session then runs the dense fallback, charging the declined
    /// attempt's deterministic work on top).
    ///
    /// # Errors
    ///
    /// Returns the deterministic work burnt by the failed attempt when
    /// the backend cannot finish the solve (numerical trouble, unbounded
    /// dual start, failed verification).
    fn solve(
        &mut self,
        view: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        warm: Option<&Basis>,
    ) -> Result<(LpResult, Option<Basis>), u64>;

    /// `view` already contains the appended rows `old_m..`; a backend
    /// with [`BackendCaps::row_addition`] grows its live state in place
    /// when that state is exactly `warm`, returning the grown snapshot.
    /// `(None, spent)` means the growth was not absorbed — the caller
    /// falls back to reinstalling a grown snapshot (one refactorisation).
    fn absorb_rows(&mut self, view: &Model, old_m: usize, warm: &Basis) -> (Option<Basis>, u64) {
        let _ = (view, old_m, warm);
        (None, 0)
    }

    /// The objective in `view` changed; a backend with
    /// [`BackendCaps::objective_deltas`] re-prices its live basis and
    /// keeps it when dual feasible. Returns whether warm state survived,
    /// plus the work spent.
    fn absorb_objective(&mut self, view: &Model) -> (bool, u64) {
        let _ = view;
        (false, 0)
    }
}

/// The revised-simplex backend: sparse LU (either update rule, per
/// [`LpConfig::update`]) or the explicit dense inverse, with the full
/// incremental capability set. Wraps the engine context that keeps the
/// factorisation hot between solves.
pub struct RevisedBackend {
    engine: LpEngine,
    ctx: LpContext,
}

impl RevisedBackend {
    /// A backend over the given revised engine.
    ///
    /// # Panics
    ///
    /// Panics on [`LpEngine::DenseTableau`], which is not a revised
    /// engine — use [`TableauBackend`].
    #[must_use]
    pub fn new(engine: LpEngine) -> Self {
        assert_ne!(
            engine,
            LpEngine::DenseTableau,
            "the tableau is not a revised engine; use TableauBackend"
        );
        RevisedBackend {
            engine,
            ctx: LpContext::default(),
        }
    }
}

impl LpBackend for RevisedBackend {
    fn name(&self) -> &'static str {
        match self.engine {
            LpEngine::SparseLu => "sparse-lu",
            LpEngine::DenseInverse => "dense-inverse",
            LpEngine::DenseTableau => unreachable!("rejected in RevisedBackend::new"),
        }
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps::full()
    }

    fn solve(
        &mut self,
        view: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        warm: Option<&Basis>,
    ) -> Result<(LpResult, Option<Basis>), u64> {
        // The engine choice is pinned at construction; per-solve configs
        // only vary the tuning knobs.
        let cfg = LpConfig {
            engine: self.engine,
            ..*config
        };
        self.ctx.solve(view, bounds, &cfg, warm)
    }

    fn absorb_rows(&mut self, view: &Model, old_m: usize, warm: &Basis) -> (Option<Basis>, u64) {
        self.ctx.add_rows(view, old_m, warm)
    }

    fn absorb_objective(&mut self, view: &Model) -> (bool, u64) {
        self.ctx.set_objective(view)
    }
}

/// The dense two-phase primal tableau as a backend: stateless, no
/// incremental capabilities, never declines. The terminal rung of every
/// session's fallback ladder, and the slowest, most battle-tested oracle
/// when selected outright ([`LpEngine::DenseTableau`]).
#[derive(Default)]
pub struct TableauBackend;

impl LpBackend for TableauBackend {
    fn name(&self) -> &'static str {
        "dense-tableau"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps::none()
    }

    fn solve(
        &mut self,
        view: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        _warm: Option<&Basis>,
    ) -> Result<(LpResult, Option<Basis>), u64> {
        Ok((solve_relaxation_dense(view, bounds, config), None))
    }
}

/// Cumulative counters over one session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Solves served (any rung of the ladder).
    pub solves: u64,
    /// Solves that landed on the dense-tableau rung — either because the
    /// primary backend declined or because the tableau *is* the backend.
    pub dense_fallbacks: u64,
    /// Rows appended over the session's lifetime.
    pub rows_added: u64,
    /// Row batches the backend absorbed in place (live factorisation
    /// growth — no refactorisation from scratch).
    pub incremental_row_batches: u64,
    /// Row batches that fell back to a snapshot reinstall (one
    /// refactorisation at the grown dimensions on the next solve).
    pub rebuilt_row_batches: u64,
    /// Deterministic work ticks metered through the session (solves, row
    /// growth and objective swaps combined) — the session's own slice of
    /// the solver's clock, for per-session observability.
    pub work_ticks: u64,
}

/// Outcome of [`LpSession::add_rows`].
#[derive(Debug, Clone)]
pub struct RowAddition {
    /// Rows actually appended to the view.
    pub added: usize,
    /// Basis to warm-start the next solve from: the live engine's grown
    /// basis when the growth was absorbed in place, otherwise the
    /// caller's snapshot extended with the new basic slacks (installed
    /// with one refactorisation on the next solve). `None` when no
    /// snapshot was supplied.
    pub basis: Option<Basis>,
    /// Whether a live factorisation absorbed the growth in place.
    pub absorbed: bool,
    /// Deterministic work spent growing (border BTRANs, any forced
    /// refactorisation). Charge it to your clock like a solve's ticks.
    pub work_ticks: u64,
}

/// An owning, incremental LP solving session: the model view, the live
/// backend state (basis + factorisation), and stats. See the
/// [module docs](self) for an example and
/// [`Solver`](crate::Solver) for the primary consumer — branch-and-bound
/// threads one session through an entire search, and the root cut loop
/// tightens it in place through [`LpSession::add_rows`].
pub struct LpSession {
    view: Model,
    config: LpConfig,
    backend: Box<dyn LpBackend>,
    stats: SessionStats,
    base_rows: usize,
}

impl LpSession {
    /// Opens a session on a snapshot of `model`, choosing the backend
    /// from [`LpConfig::engine`]. Later mutations of the caller's model
    /// do not affect the session; rows added through
    /// [`LpSession::add_rows`] live only in the session's view.
    #[must_use]
    pub fn open(model: &Model, config: LpConfig) -> Self {
        let backend: Box<dyn LpBackend> = match config.engine {
            LpEngine::DenseTableau => Box::new(TableauBackend),
            engine => Box::new(RevisedBackend::new(engine)),
        };
        LpSession::with_backend(model, config, backend)
    }

    /// Opens a session over an explicit backend — the trait-object entry
    /// point the backend-equivalence property suite drives every engine
    /// through.
    #[must_use]
    pub fn with_backend(model: &Model, config: LpConfig, backend: Box<dyn LpBackend>) -> Self {
        LpSession {
            view: model.clone(),
            config,
            backend,
            stats: SessionStats::default(),
            base_rows: model.num_constraints(),
        }
    }

    /// The session's model view, including every appended row.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.view
    }

    /// The active backend's name.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The active backend's incremental capabilities.
    #[must_use]
    pub fn caps(&self) -> BackendCaps {
        self.backend.caps()
    }

    /// Rows appended since the session opened.
    #[must_use]
    pub fn added_rows(&self) -> usize {
        self.view.num_constraints() - self.base_rows
    }

    /// Cumulative session statistics.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The session's current LP configuration.
    #[must_use]
    pub fn config(&self) -> &LpConfig {
        &self.config
    }

    /// Updates the per-solve tuning knobs (iteration caps, refactor
    /// cadence, perturbation seed, …). The engine choice is pinned at
    /// [`LpSession::open`]; a differing [`LpConfig::engine`] is ignored.
    pub fn configure(&mut self, config: LpConfig) {
        self.config = LpConfig {
            engine: self.config.engine,
            ..config
        };
    }

    /// Solves the relaxation of the current view under `bounds`
    /// (one pair per structural variable), warm-starting from `warm`
    /// when the backend supports it. Any solve the backend declines
    /// falls through to the dense two-phase tableau, with the declined
    /// attempt's deterministic work charged on top.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len()` differs from the view's variable count.
    pub fn solve(&mut self, bounds: &[(f64, f64)], warm: Option<&Basis>) -> WarmLpResult {
        let n = self.view.num_vars();
        assert_eq!(bounds.len(), n, "one bound pair per variable required");
        self.stats.solves += 1;
        // Crossed overrides mean an infeasible node; no engine needed.
        for &(l, u) in bounds {
            if l > u + TOL {
                self.stats.work_ticks += 1;
                return WarmLpResult {
                    result: LpResult {
                        status: LpStatus::Infeasible,
                        objective: f64::INFINITY,
                        values: Vec::new(),
                        iterations: 0,
                        work_ticks: 1,
                        dense_fallback: false,
                        factor: crate::factor::FactorStats::default(),
                    },
                    basis: None,
                };
            }
        }
        // The capability flags have teeth: a backend that declares no
        // warm-start support never sees a basis.
        let warm = if self.backend.caps().warm_start {
            warm
        } else {
            None
        };
        let mut spent = 0u64;
        if self.view.num_constraints() > 0 {
            match self.backend.solve(&self.view, bounds, &self.config, warm) {
                Ok((result, basis)) => {
                    if result.dense_fallback {
                        self.stats.dense_fallbacks += 1;
                    }
                    self.stats.work_ticks += result.work_ticks;
                    return WarmLpResult { result, basis };
                }
                Err(s) => spent = s,
            }
        }
        let mut result = solve_relaxation_dense(&self.view, bounds, &self.config);
        result.work_ticks += spent;
        if result.dense_fallback {
            self.stats.dense_fallbacks += 1;
        }
        self.stats.work_ticks += result.work_ticks;
        WarmLpResult {
            result,
            basis: None,
        }
    }

    /// Appends rows to the live relaxation — the cutting-plane / lazy
    /// constraint primitive. Rows are grow-only: they may reference only
    /// existing variables.
    ///
    /// With a `basis` from this session's latest optimal solve, a
    /// backend with [`BackendCaps::row_addition`] grows its live
    /// factorisation in place (new logical slacks enter the basis; dual
    /// feasibility is preserved by construction) and returns the grown
    /// basis; otherwise the snapshot is extended with the new basic
    /// slacks and the next solve reinstalls it with one refactorisation
    /// at the grown dimensions. Either way the next
    /// [`LpSession::solve`] re-optimises only the violated cuts instead
    /// of starting from scratch.
    pub fn add_rows(
        &mut self,
        rows: Vec<(String, Comparison)>,
        basis: Option<&Basis>,
    ) -> RowAddition {
        if rows.is_empty() {
            return RowAddition {
                added: 0,
                basis: basis.cloned(),
                absorbed: false,
                work_ticks: 0,
            };
        }
        let old_m = self.view.num_constraints();
        let k = rows.len();
        for (name, cmp) in rows {
            self.view.append_row(name, cmp);
        }
        self.stats.rows_added += k as u64;
        let Some(warm) = basis else {
            self.stats.rebuilt_row_batches += 1;
            return RowAddition {
                added: k,
                basis: None,
                absorbed: false,
                work_ticks: 0,
            };
        };
        let (grown, work) = if self.backend.caps().row_addition {
            self.backend.absorb_rows(&self.view, old_m, warm)
        } else {
            (None, 0)
        };
        self.stats.work_ticks += work;
        match grown {
            Some(b) => {
                self.stats.incremental_row_batches += 1;
                RowAddition {
                    added: k,
                    basis: Some(b),
                    absorbed: true,
                    work_ticks: work,
                }
            }
            None => {
                // Universal fallback: extend the snapshot with the new
                // basic slacks; installing it refactorises at the grown
                // dimensions.
                self.stats.rebuilt_row_batches += 1;
                let n = self.view.num_vars();
                let mut cols = warm.cols.clone();
                let mut status = warm.status.clone();
                for row in old_m..old_m + k {
                    cols.push(n + row);
                    status.push(VarStatus::Basic);
                }
                RowAddition {
                    added: k,
                    basis: Some(Basis { cols, status }),
                    absorbed: false,
                    work_ticks: work,
                }
            }
        }
    }

    /// Replaces the view's objective. A backend with
    /// [`BackendCaps::objective_deltas`] re-prices its live basis and
    /// keeps it warm when the basis stays dual feasible; otherwise the
    /// next solve runs cold. Returns `(kept_warm, work_ticks)`.
    pub fn set_objective(&mut self, objective: crate::expr::LinExpr) -> (bool, u64) {
        self.view.set_objective(objective);
        let out = if self.backend.caps().objective_deltas {
            self.backend.absorb_objective(&self.view)
        } else {
            (false, 0)
        };
        self.stats.work_ticks += out.1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_model() -> Model {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(x, 1.0), (y, 2.0)]));
        m
    }

    #[test]
    fn session_solves_and_reports_backend() {
        let m = cover_model();
        let mut s = LpSession::open(&m, LpConfig::default());
        assert_eq!(s.backend_name(), "sparse-lu");
        assert!(s.caps().row_addition);
        let out = s.solve(&[(0.0, 1.0), (0.0, 1.0)], None);
        assert_eq!(out.result.status, LpStatus::Optimal);
        assert!((out.result.objective - 1.0).abs() < 1e-9);
        assert_eq!(s.stats().solves, 1);
    }

    #[test]
    fn tableau_backend_has_no_caps_but_solves() {
        let m = cover_model();
        let cfg = LpConfig {
            engine: LpEngine::DenseTableau,
            ..LpConfig::default()
        };
        let mut s = LpSession::open(&m, cfg);
        assert_eq!(s.backend_name(), "dense-tableau");
        assert_eq!(s.caps(), BackendCaps::none());
        let out = s.solve(&[(0.0, 1.0), (0.0, 1.0)], None);
        assert_eq!(out.result.status, LpStatus::Optimal);
        assert!(out.result.dense_fallback);
        assert_eq!(s.stats().dense_fallbacks, 1);
    }

    #[test]
    fn add_rows_absorbs_on_live_engine() {
        let m = cover_model();
        let bounds = [(0.0, 1.0), (0.0, 1.0)];
        let mut s = LpSession::open(&m, LpConfig::default());
        let root = s.solve(&bounds, None);
        let x = crate::expr::VarId(0);
        let grown = s.add_rows(
            vec![("cut".into(), m.expr([(x, 1.0)]).leq(0.0))],
            root.basis.as_ref(),
        );
        assert_eq!(grown.added, 1);
        assert!(grown.absorbed, "live engine must grow in place");
        let out = s.solve(&bounds, grown.basis.as_ref());
        assert_eq!(out.result.status, LpStatus::Optimal);
        assert!((out.result.objective - 2.0).abs() < 1e-9, "x forced off");
        assert_eq!(s.added_rows(), 1);
        assert_eq!(s.stats().incremental_row_batches, 1);
    }

    #[test]
    fn objective_delta_keeps_warm_state_when_dual_feasible() {
        let m = cover_model();
        let bounds = [(0.0, 1.0), (0.0, 1.0)];
        let mut s = LpSession::open(&m, LpConfig::default());
        let root = s.solve(&bounds, None);
        assert_eq!(root.result.status, LpStatus::Optimal);
        // Raising y's cost keeps (x basic at 1, y at lower) dual feasible.
        let x = crate::expr::VarId(0);
        let y = crate::expr::VarId(1);
        let (kept, _) = s.set_objective(m.expr([(x, 1.0), (y, 5.0)]));
        assert!(kept);
        let out = s.solve(&bounds, root.basis.as_ref());
        assert_eq!(out.result.status, LpStatus::Optimal);
        assert!((out.result.objective - 1.0).abs() < 1e-9);
    }
}
