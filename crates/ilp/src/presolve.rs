//! Presolve: model reductions applied before the branch-and-bound loop.
//!
//! [`presolve`] rewrites a [`Model`] into a smaller, equivalent
//! [`PresolvedModel`] — fewer rows, columns and nonzeros — and records a
//! [`Postsolve`] stack that losslessly maps any solution of the reduced
//! model back to the original variable space. The solver presolves once at
//! the root; every LP relaxation in the tree then runs on the reduced
//! matrix, so each FTRAN/BTRAN, eta update and pricing pass touches fewer
//! nonzeros.
//!
//! Each reduction is a [`Reduction`] implementation over a shared
//! [`Workspace`]; the driver applies the configured stack round-robin to a
//! fixpoint (or [`PresolveConfig::max_rounds`]). The reductions:
//!
//! * **Singleton rows** — a one-term row is a variable bound in disguise:
//!   tighten the bound (rounding for binaries) and drop the row.
//! * **Fixed-variable substitution** — any column with `lower == upper` is
//!   folded into the right-hand sides and the objective offset, then
//!   removed. This is the work-horse on the mapping ILPs, where
//!   `fix_binary` pins large swaths of inadmissible placements.
//! * **Redundant / forcing rows** — rows whose activity bounds prove them
//!   always satisfied are dropped; rows satisfiable only at one extreme fix
//!   every variable they touch.
//! * **Duplicate rows** — rows with identical sparse patterns (detected by
//!   hashing sign-canonical sorted terms) are merged: tighter side wins,
//!   opposing inequalities become equalities or prove infeasibility.
//! * **Doubleton-equality substitution** — a two-term equality
//!   `a·u − a·w = 0` proves `w ≡ u`; the `w` column merges into `u` and
//!   the row disappears. Chained with duplicate-row merging this collapses
//!   the fanout-1 axon-sharing pairs (`s ≤ x`, `x ≤ s`) of the mapping
//!   ILPs into nothing.
//! * **Dominated columns** — a column whose every coefficient only consumes
//!   slack (and whose cost is non-negative) is fixed at its lower bound;
//!   the mirror case fixes at the upper bound. Preserves at least one
//!   optimum.
//! * **Duplicate binary columns** — two binaries with identical columns
//!   that share a set-packing/partition row (so at most one can be 1):
//!   the costlier one is fixed to 0, since any solution using it can swap
//!   to the cheaper twin.
//! * **Coefficient tightening** — on all-binary `≤` rows, oversized
//!   positive coefficients are shrunk to the classic
//!   `a' = maxact − rhs`, `rhs' = maxact − a` form, which preserves the
//!   integer hull while cutting fractional vertices.
//! * **Clique extraction** — set-packing rows (`Σ x ≤ 1` / `= 1` over
//!   binaries) are cliques; membership counts refine branching priorities
//!   within each existing priority class, so the most-entangled variables
//!   are decided first.
//!
//! Infeasibility discovered during presolve is reported as
//! [`PresolveOutcome::Infeasible`] — the solver never has to start.

use crate::expr::{ConstraintSense, VarId};
use crate::model::{Model, VarType};
use crate::solution::{IncumbentEvent, Solution};
use std::collections::HashMap;

/// Bound-tightening tolerance: changes smaller than this are ignored.
const TOL: f64 = crate::tol::OBJ_AGREE;
/// Violation above which presolve declares the model infeasible.
/// **Aligned with the solver's 1e-6 feasibility tolerance**: a smaller
/// threshold here would be *more* aggressive, declaring infeasible a
/// marginal model (violations in `(VIOL, 1e-6]`) that the solver's own
/// feasibility check would still accept — exactly the drift the old
/// `1e-7` value exhibited (flagged by the PR 4 review, pre-existing
/// since PR 3; pinned by `marginal_violation_within_solver_tolerance_*`).
const VIOL: f64 = crate::tol::FEAS;
/// Integrality tolerance when rounding binary bounds.
const INT_TOL: f64 = crate::tol::INT_FEAS;

/// Configuration of the presolve stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)] // independent per-reduction gates
pub struct PresolveConfig {
    /// Master switch; when `false` the solver runs on the original model.
    pub enabled: bool,
    /// Maximum fixpoint rounds over the reduction stack.
    pub max_rounds: u32,
    /// Enables dominated-column fixing.
    pub dominated_columns: bool,
    /// Enables duplicate-row merging.
    pub duplicate_rows: bool,
    /// Enables doubleton-equality column substitution (`w ≡ u` merges).
    pub substitute_doubletons: bool,
    /// Enables duplicate binary-column fixing.
    pub duplicate_columns: bool,
    /// Enables coefficient tightening on all-binary `≤` rows.
    pub coefficient_tightening: bool,
    /// Enables clique extraction into branching priorities.
    pub clique_priorities: bool,
}

impl Default for PresolveConfig {
    fn default() -> Self {
        PresolveConfig {
            enabled: true,
            max_rounds: 10,
            dominated_columns: true,
            duplicate_rows: true,
            substitute_doubletons: true,
            duplicate_columns: true,
            coefficient_tightening: true,
            clique_priorities: true,
        }
    }
}

impl PresolveConfig {
    /// A configuration with presolve disabled entirely.
    #[must_use]
    pub fn off() -> Self {
        PresolveConfig {
            enabled: false,
            ..PresolveConfig::default()
        }
    }
}

/// What presolve did, for reporting and bench logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows removed (redundant, forcing, duplicate, singleton).
    pub rows_removed: usize,
    /// Columns removed (fixed, dominated, duplicate).
    pub cols_removed: usize,
    /// Constraint-matrix nonzeros before presolve.
    pub nnz_before: usize,
    /// Constraint-matrix nonzeros after presolve.
    pub nnz_after: usize,
    /// Fixpoint rounds executed.
    pub rounds: u32,
    /// Coefficients tightened on binary `≤` rows.
    pub coeffs_tightened: usize,
    /// Set-packing cliques found (rows of size ≥ 2).
    pub cliques: usize,
    /// Deterministic work performed, in ticks.
    pub work_ticks: u64,
}

impl PresolveStats {
    /// Nonzeros eliminated by the reductions.
    #[must_use]
    pub fn nnz_removed(&self) -> usize {
        self.nnz_before.saturating_sub(self.nnz_after)
    }
}

/// One recorded reduction, replayed in reverse by [`Postsolve::restore`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    /// Column `col` was fixed to `value` and substituted out.
    Fix { col: u32, value: f64 },
    /// Column `col` was proved identical to column `from` (via a
    /// doubleton equality `col − from = 0`) and merged into it.
    Copy { col: u32, from: u32 },
}

/// The recorded reduction stack: maps reduced-space solutions back to the
/// original variable space.
#[derive(Debug, Clone, PartialEq)]
pub struct Postsolve {
    n_original: usize,
    /// Original column index per reduced column, ascending.
    kept: Vec<u32>,
    /// Reductions in application order; replayed in reverse on restore.
    actions: Vec<Action>,
}

impl Postsolve {
    /// Number of variables in the original model.
    #[must_use]
    pub fn num_original_vars(&self) -> usize {
        self.n_original
    }

    /// Number of variables in the reduced model.
    #[must_use]
    pub fn num_reduced_vars(&self) -> usize {
        self.kept.len()
    }

    /// Maps a reduced-space assignment back to original variable space by
    /// replaying the reduction stack in reverse.
    ///
    /// # Panics
    ///
    /// Panics if `reduced` does not have one value per reduced variable.
    #[must_use]
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(
            reduced.len(),
            self.kept.len(),
            "one value per reduced variable required"
        );
        let mut out = vec![0.0; self.n_original];
        for (new_j, &old_j) in self.kept.iter().enumerate() {
            out[old_j as usize] = reduced[new_j];
        }
        for action in self.actions.iter().rev() {
            match *action {
                Action::Fix { col, value } => out[col as usize] = value,
                // Reverse replay restores `from` (by any later action)
                // before this copy reads it.
                Action::Copy { col, from } => out[col as usize] = out[from as usize],
            }
        }
        out
    }

    /// Maps an incumbent event found on the reduced model back to original
    /// space. The objective is unchanged: the reduced objective carries the
    /// substituted offset, so values agree by construction.
    #[must_use]
    pub fn restore_event(&self, event: &IncumbentEvent) -> IncumbentEvent {
        IncumbentEvent {
            objective: event.objective,
            det_time: event.det_time,
            solution: Solution::new(self.restore(event.solution.values()), event.objective),
        }
    }

    /// Projects an original-space assignment into reduced space (e.g. a
    /// caller-supplied warm start). Values of removed columns are dropped;
    /// if they disagree with the recorded fixings the projected point may
    /// be infeasible in the reduced model, which the solver's feasibility
    /// check then rejects.
    ///
    /// # Panics
    ///
    /// Panics if `original` does not have one value per original variable.
    #[must_use]
    pub fn project(&self, original: &[f64]) -> Vec<f64> {
        assert_eq!(
            original.len(),
            self.n_original,
            "one value per original variable required"
        );
        self.kept
            .iter()
            .map(|&old_j| original[old_j as usize])
            .collect()
    }
}

/// A presolved model: the reduced [`Model`], the [`Postsolve`] stack and
/// the reduction statistics.
#[derive(Debug, Clone)]
pub struct PresolvedModel {
    /// The reduced model the solver runs on.
    pub model: Model,
    /// Maps reduced solutions back to the original space.
    pub postsolve: Postsolve,
    /// What the reductions achieved.
    pub stats: PresolveStats,
    /// The set-packing cliques found by clique extraction, in **reduced**
    /// variable space (the same cliques that refine branching
    /// priorities). The solver's root cut loop seeds its conflict graph
    /// with them ([`crate::cuts::CutSeparator`]); empty when extraction
    /// is disabled or found nothing.
    pub cliques: Vec<Vec<VarId>>,
}

/// Outcome of [`presolve`].
#[derive(Debug, Clone)]
pub enum PresolveOutcome {
    /// The reduced model (possibly with zero variables left, meaning the
    /// reductions solved the model outright).
    Reduced(PresolvedModel),
    /// The reductions proved the model infeasible.
    Infeasible(PresolveStats),
}

/// Marker error: a reduction proved the model infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

/// Row sense inside the workspace: `≥` rows are normalised to `≤` on
/// ingestion, halving the case analysis of every reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowSense {
    Le,
    Eq,
}

#[derive(Debug, Clone)]
struct Row {
    name: String,
    /// Terms sorted by column id; zero coefficients never stored.
    terms: Vec<(u32, f64)>,
    sense: RowSense,
    rhs: f64,
    alive: bool,
}

/// Mutable presolve state shared by every [`Reduction`].
#[derive(Debug)]
pub struct Workspace {
    ty: Vec<VarType>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    obj: Vec<f64>,
    obj_offset: f64,
    /// Substituted-out value per column, `None` while the column is live
    /// or merged into a twin rather than fixed.
    fixed: Vec<Option<f64>>,
    /// Whether the column has been removed (fixed or merged).
    removed: Vec<bool>,
    rows: Vec<Row>,
    /// Rows that (originally) contain each column. Entries can go stale
    /// when a row dies or a term is removed; consumers re-check.
    col_rows: Vec<Vec<u32>>,
    actions: Vec<Action>,
    stats: PresolveStats,
    /// Clique membership count per column (set by clique extraction).
    clique_count: Vec<u32>,
    changed: bool,
}

impl Workspace {
    fn new(model: &Model) -> Self {
        let n = model.num_vars();
        let mut ty = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for v in model.variables() {
            ty.push(v.ty);
            // Binaries are confined to [0, 1] whatever their stored bounds.
            if v.ty == VarType::Binary {
                lower.push(v.lower.max(0.0));
                upper.push(v.upper.min(1.0));
            } else {
                lower.push(v.lower);
                upper.push(v.upper);
            }
        }
        let mut obj = vec![0.0; n];
        for &(v, c) in model.objective() {
            obj[v.index()] = c;
        }
        let mut rows = Vec::with_capacity(model.num_constraints());
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut nnz = 0usize;
        for con in model.constraints() {
            // Normalise `≥` to `≤` by negation.
            let flip = con.sense == ConstraintSense::Ge;
            let sense = match con.sense {
                ConstraintSense::Eq => RowSense::Eq,
                ConstraintSense::Le | ConstraintSense::Ge => RowSense::Le,
            };
            let ri = rows.len() as u32;
            let mut terms: Vec<(u32, f64)> = Vec::with_capacity(con.terms.len());
            for &(v, c) in &con.terms {
                if c == 0.0 {
                    continue;
                }
                terms.push((v.0, if flip { -c } else { c }));
                col_rows[v.index()].push(ri);
                nnz += 1;
            }
            terms.sort_unstable_by_key(|&(c, _)| c);
            rows.push(Row {
                name: con.name.clone(),
                terms,
                sense,
                rhs: if flip { -con.rhs } else { con.rhs },
                alive: true,
            });
        }
        Workspace {
            ty,
            lower,
            upper,
            obj,
            obj_offset: model.objective_offset(),
            fixed: vec![None; n],
            removed: vec![false; n],
            rows,
            col_rows,
            actions: Vec::new(),
            stats: PresolveStats {
                nnz_before: nnz,
                ..PresolveStats::default()
            },
            clique_count: vec![0; n],
            changed: false,
        }
    }

    fn num_cols(&self) -> usize {
        self.ty.len()
    }

    fn charge(&mut self, ticks: usize) {
        self.stats.work_ticks += ticks as u64;
    }

    /// Coefficient of `col` in row `ri`, if the term is still present.
    fn coeff_of(&self, ri: u32, col: u32) -> Option<f64> {
        let row = &self.rows[ri as usize];
        row.terms.iter().find(|&&(c, _)| c == col).map(|&(_, a)| a)
    }

    /// `(min, max)` activity of a row under the current bounds. Infinite
    /// bounds propagate to ±∞.
    fn activity_bounds(&self, row: &Row) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for &(j, a) in &row.terms {
            let (l, u) = (self.lower[j as usize], self.upper[j as usize]);
            if a > 0.0 {
                lo += a * l;
                hi += a * u;
            } else {
                lo += a * u;
                hi += a * l;
            }
        }
        (lo, hi)
    }

    fn kill_row(&mut self, ri: u32) {
        let row = &mut self.rows[ri as usize];
        if row.alive {
            row.alive = false;
            self.stats.rows_removed += 1;
            self.changed = true;
        }
    }

    /// Tightens the upper bound of `j` to at most `v`, rounding binaries
    /// down to the nearest integer.
    fn tighten_upper(&mut self, j: usize, v: f64) -> Result<(), Infeasible> {
        let mut v = v;
        if self.ty[j] == VarType::Binary {
            v = (v + INT_TOL).floor();
        }
        if v < self.upper[j] - TOL {
            self.upper[j] = v;
            self.changed = true;
        }
        if self.lower[j] > self.upper[j] + VIOL {
            return Err(Infeasible);
        }
        Ok(())
    }

    /// Tightens the lower bound of `j` to at least `v`, rounding binaries
    /// up to the nearest integer.
    fn tighten_lower(&mut self, j: usize, v: f64) -> Result<(), Infeasible> {
        let mut v = v;
        if self.ty[j] == VarType::Binary {
            v = (v - INT_TOL).ceil();
        }
        if v > self.lower[j] + TOL {
            self.lower[j] = v;
            self.changed = true;
        }
        if self.lower[j] > self.upper[j] + VIOL {
            return Err(Infeasible);
        }
        Ok(())
    }

    /// Fixes column `j` to `value` and substitutes it out of every row and
    /// the objective, recording the reduction on the postsolve stack.
    fn fix_col(&mut self, j: usize, value: f64) -> Result<(), Infeasible> {
        if self.removed[j] {
            return Ok(());
        }
        let mut v = value;
        if self.ty[j] == VarType::Binary {
            if (v - v.round()).abs() > INT_TOL {
                return Err(Infeasible);
            }
            v = v.round();
        }
        if v < self.lower[j] - VIOL || v > self.upper[j] + VIOL {
            return Err(Infeasible);
        }
        self.fixed[j] = Some(v);
        self.removed[j] = true;
        self.lower[j] = v;
        self.upper[j] = v;
        self.obj_offset += self.obj[j] * v;
        let touched = std::mem::take(&mut self.col_rows[j]);
        for &ri in &touched {
            let row = &mut self.rows[ri as usize];
            if !row.alive {
                continue;
            }
            if let Some(pos) = row.terms.iter().position(|&(c, _)| c as usize == j) {
                let a = row.terms[pos].1;
                if v != 0.0 {
                    row.rhs -= a * v;
                }
                row.terms.remove(pos);
            }
        }
        self.charge(touched.len() + 1);
        self.actions.push(Action::Fix {
            col: j as u32,
            value: v,
        });
        self.stats.cols_removed += 1;
        self.changed = true;
        Ok(())
    }

    /// Merges column `w` into column `u` given the proof `w ≡ u` (a
    /// doubleton equality): every occurrence of `w` is rewritten onto `u`,
    /// the objective coefficients combine, and `u` inherits the bound
    /// intersection. Records a copy on the postsolve stack.
    fn substitute_equal(&mut self, w: usize, u: usize) -> Result<(), Infeasible> {
        debug_assert!(!self.removed[w] && !self.removed[u] && w != u);
        self.tighten_lower(u, self.lower[w])?;
        self.tighten_upper(u, self.upper[w])?;
        self.removed[w] = true;
        self.obj[u] += self.obj[w];
        let touched = std::mem::take(&mut self.col_rows[w]);
        for &ri in &touched {
            let row = &mut self.rows[ri as usize];
            if !row.alive {
                continue;
            }
            let Some(pos_w) = row.terms.iter().position(|&(c, _)| c as usize == w) else {
                continue;
            };
            let aw = row.terms[pos_w].1;
            row.terms.remove(pos_w);
            match row.terms.iter().position(|&(c, _)| c as usize == u) {
                Some(pos_u) => {
                    row.terms[pos_u].1 += aw;
                    if row.terms[pos_u].1 == 0.0 {
                        row.terms.remove(pos_u);
                    }
                }
                None => {
                    let at = row.terms.partition_point(|&(c, _)| (c as usize) < u);
                    row.terms.insert(at, (u as u32, aw));
                    self.col_rows[u].push(ri);
                }
            }
        }
        self.charge(touched.len() + 1);
        self.actions.push(Action::Copy {
            col: w as u32,
            from: u as u32,
        });
        self.stats.cols_removed += 1;
        self.changed = true;
        Ok(())
    }
}

/// One model reduction, applied repeatedly until the stack reaches a
/// fixpoint. Implementations mutate the shared [`Workspace`] and report
/// whether they changed anything.
pub trait Reduction {
    /// Diagnostic name of the reduction.
    fn name(&self) -> &'static str;

    /// Applies the reduction once over the whole workspace.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] when the reduction proves the model has no
    /// feasible solution.
    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible>;
}

/// Singleton rows become variable bounds.
struct SingletonRows;

impl Reduction for SingletonRows {
    fn name(&self) -> &'static str {
        "singleton-rows"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for ri in 0..ws.rows.len() as u32 {
            let row = &ws.rows[ri as usize];
            if !row.alive || row.terms.len() != 1 {
                continue;
            }
            let (j, a) = row.terms[0];
            let j = j as usize;
            if a.abs() < crate::tol::ZERO {
                continue; // degenerate coefficient: leave to redundancy pass
            }
            let bound = row.rhs / a;
            let sense = row.sense;
            match sense {
                RowSense::Le => {
                    if a > 0.0 {
                        ws.tighten_upper(j, bound)?;
                    } else {
                        ws.tighten_lower(j, bound)?;
                    }
                }
                RowSense::Eq => {
                    ws.tighten_upper(j, bound)?;
                    ws.tighten_lower(j, bound)?;
                }
            }
            ws.kill_row(ri);
            ws.charge(1);
        }
        Ok(ws.changed)
    }
}

/// Columns with collapsed bounds are substituted out.
struct FixedColumns;

impl Reduction for FixedColumns {
    fn name(&self) -> &'static str {
        "fixed-columns"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for j in 0..ws.num_cols() {
            if !ws.removed[j] && ws.upper[j] - ws.lower[j] <= TOL {
                let v = 0.5 * (ws.lower[j] + ws.upper[j]);
                ws.fix_col(j, v)?;
            }
        }
        Ok(ws.changed)
    }
}

/// Redundant rows are dropped; forcing rows fix their variables.
struct RedundantRows;

impl Reduction for RedundantRows {
    fn name(&self) -> &'static str {
        "redundant-rows"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for ri in 0..ws.rows.len() as u32 {
            let row = &ws.rows[ri as usize];
            if !row.alive {
                continue;
            }
            if row.terms.is_empty() {
                match row.sense {
                    RowSense::Le => {
                        if row.rhs < -VIOL {
                            return Err(Infeasible);
                        }
                        if row.rhs >= -TOL {
                            ws.kill_row(ri);
                        }
                    }
                    RowSense::Eq => {
                        if row.rhs.abs() > VIOL {
                            return Err(Infeasible);
                        }
                        ws.kill_row(ri);
                    }
                }
                continue;
            }
            let (lo, hi) = ws.activity_bounds(row);
            let rhs = row.rhs;
            let sense = row.sense;
            let nterms = row.terms.len();
            ws.charge(nterms);
            let force = |ws: &mut Workspace, ri: u32, at_min: bool| -> Result<(), Infeasible> {
                let fixes: Vec<(usize, f64)> = ws.rows[ri as usize]
                    .terms
                    .iter()
                    .map(|&(j, a)| {
                        let j = j as usize;
                        let v = if (a > 0.0) == at_min {
                            ws.lower[j]
                        } else {
                            ws.upper[j]
                        };
                        (j, v)
                    })
                    .collect();
                ws.kill_row(ri);
                for (j, v) in fixes {
                    ws.fix_col(j, v)?;
                }
                Ok(())
            };
            match sense {
                RowSense::Le => {
                    if lo > rhs + VIOL {
                        return Err(Infeasible);
                    }
                    if hi <= rhs + TOL {
                        ws.kill_row(ri); // never binding
                    } else if lo >= rhs - TOL && lo.is_finite() {
                        // Satisfiable only at minimum activity.
                        force(ws, ri, true)?;
                    }
                }
                RowSense::Eq => {
                    if lo > rhs + VIOL || hi < rhs - VIOL {
                        return Err(Infeasible);
                    }
                    if lo >= rhs - TOL && lo.is_finite() {
                        force(ws, ri, true)?;
                    } else if hi <= rhs + TOL && hi.is_finite() {
                        force(ws, ri, false)?;
                    }
                }
            }
        }
        Ok(ws.changed)
    }
}

/// Hash of a sign-canonical sparse row pattern.
fn pattern_hash<'a>(terms: impl Iterator<Item = &'a (u32, f64)>, flip: bool) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(c, a) in terms {
        let a = if flip { -a } else { a };
        h ^= u64::from(c).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= a.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Whether row `a`'s canonical terms equal row `b`'s canonical terms.
fn canon_terms_equal(ra: &Row, fa: bool, rb: &Row, fb: bool) -> bool {
    ra.terms.len() == rb.terms.len()
        && ra
            .terms
            .iter()
            .zip(rb.terms.iter())
            .all(|(&(ca, aa), &(cb, ab))| {
                let aa = if fa { -aa } else { aa };
                let ab = if fb { -ab } else { ab };
                ca == cb && aa == ab
            })
}

/// Duplicate rows merge; opposing duplicates become equalities.
struct DuplicateRows;

impl Reduction for DuplicateRows {
    fn name(&self) -> &'static str {
        "duplicate-rows"
    }

    #[allow(clippy::too_many_lines)]
    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        // Canonical orientation: flip so the first coefficient is positive.
        let canon_flip = |row: &Row| -> bool { row.terms.first().is_some_and(|&(_, a)| a < 0.0) };
        let mut buckets: HashMap<u64, Vec<(u32, bool)>> = HashMap::new();
        for ri in 0..ws.rows.len() as u32 {
            if !ws.rows[ri as usize].alive || ws.rows[ri as usize].terms.is_empty() {
                continue;
            }
            let flip_r = canon_flip(&ws.rows[ri as usize]);
            let key = pattern_hash(ws.rows[ri as usize].terms.iter(), flip_r);
            ws.charge(ws.rows[ri as usize].terms.len());
            let bucket = buckets.entry(key).or_default();
            let mut merged = false;
            for &(pi, flip_p) in bucket.iter() {
                let (prev, cur) = (&ws.rows[pi as usize], &ws.rows[ri as usize]);
                if !prev.alive || !canon_terms_equal(prev, flip_p, cur, flip_r) {
                    continue;
                }
                // Canonical-space view: Eq pins the canonical activity,
                // an unflipped Le caps it above, a flipped Le caps below.
                let canon_rhs = |row: &Row, flip: bool| if flip { -row.rhs } else { row.rhs };
                let (crp, crr) = (canon_rhs(prev, flip_p), canon_rhs(cur, flip_r));
                match (prev.sense, cur.sense) {
                    (RowSense::Eq, RowSense::Eq) => {
                        if (crp - crr).abs() > VIOL {
                            return Err(Infeasible);
                        }
                        ws.kill_row(ri);
                        merged = true;
                    }
                    (RowSense::Eq, RowSense::Le) | (RowSense::Le, RowSense::Eq) => {
                        let (eq_rhs, le_rhs, le_flipped, le_row) = if prev.sense == RowSense::Eq {
                            (crp, crr, flip_r, ri)
                        } else {
                            (crr, crp, flip_p, pi)
                        };
                        // A flipped Le bounds canonical activity from
                        // below (its canonical rhs *is* that lower bound);
                        // an unflipped one caps it from above.
                        let ok = if le_flipped {
                            eq_rhs >= le_rhs - VIOL
                        } else {
                            eq_rhs <= le_rhs + VIOL
                        };
                        if !ok {
                            return Err(Infeasible);
                        }
                        ws.kill_row(le_row);
                        if le_row == ri {
                            merged = true;
                        }
                    }
                    (RowSense::Le, RowSense::Le) => {
                        if flip_p == flip_r {
                            // Same orientation: tighter right-hand side wins.
                            let tighter = ws.rows[pi as usize].rhs.min(ws.rows[ri as usize].rhs);
                            if (tighter - ws.rows[pi as usize].rhs).abs() > 0.0 {
                                ws.rows[pi as usize].rhs = tighter;
                                ws.changed = true;
                            }
                            ws.kill_row(ri);
                            merged = true;
                        } else {
                            // Opposing pair: lower ≤ canonical activity ≤ upper.
                            let (upper, lower) = if flip_p {
                                (crr, -ws.rows[pi as usize].rhs)
                            } else {
                                (crp, -ws.rows[ri as usize].rhs)
                            };
                            if lower > upper + VIOL {
                                return Err(Infeasible);
                            }
                            if (upper - lower).abs() <= TOL {
                                ws.rows[pi as usize].sense = RowSense::Eq;
                                ws.kill_row(ri);
                                merged = true;
                                ws.changed = true;
                            }
                        }
                    }
                }
                if merged {
                    break;
                }
            }
            if !merged && ws.rows[ri as usize].alive {
                buckets.entry(key).or_default().push((ri, flip_r));
            }
        }
        Ok(ws.changed)
    }
}

/// Doubleton equalities `a·u − a·w = 0` prove `w ≡ u`: merge the columns.
///
/// This is what collapses the fanout-1 axon-sharing pairs of the mapping
/// ILPs: `s ≤ x` and `x ≤ s` first fuse into `s − x = 0` (duplicate-row
/// merging), then the `s` column dissolves into `x` here, taking the
/// equality row with it.
struct DoubletonEquations;

impl Reduction for DoubletonEquations {
    fn name(&self) -> &'static str {
        "doubleton-equations"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for ri in 0..ws.rows.len() as u32 {
            let row = &ws.rows[ri as usize];
            if !row.alive || row.sense != RowSense::Eq || row.terms.len() != 2 || row.rhs != 0.0 {
                continue;
            }
            let ((c1, a1), (c2, a2)) = (row.terms[0], row.terms[1]);
            // Only the exact `w = u` shape (equal magnitude, opposite
            // sign, same variable class) merges; anything else would need
            // scaling or complement bookkeeping.
            if a1 != -a2 || ws.ty[c1 as usize] != ws.ty[c2 as usize] {
                continue;
            }
            ws.kill_row(ri);
            ws.substitute_equal(c2 as usize, c1 as usize)?;
        }
        Ok(ws.changed)
    }
}

/// Dominated columns are fixed at their cost-preferred bound.
struct DominatedColumns;

impl Reduction for DominatedColumns {
    fn name(&self) -> &'static str {
        "dominated-columns"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for j in 0..ws.num_cols() {
            if ws.removed[j] {
                continue;
            }
            // Orientation over the live rows: "consuming" columns only eat
            // `≤` slack as they grow; "helping" columns only create it.
            let mut consuming = true;
            let mut helping = true;
            for k in 0..ws.col_rows[j].len() {
                let ri = ws.col_rows[j][k];
                if !ws.rows[ri as usize].alive {
                    continue;
                }
                let Some(a) = ws.coeff_of(ri, j as u32) else {
                    continue;
                };
                ws.charge(1);
                if ws.rows[ri as usize].sense == RowSense::Eq {
                    consuming = false;
                    helping = false;
                    break;
                }
                if a > 0.0 {
                    helping = false;
                } else if a < 0.0 {
                    consuming = false;
                }
                if !consuming && !helping {
                    break;
                }
            }
            let c = ws.obj[j];
            if consuming && c >= 0.0 && ws.lower[j].is_finite() {
                ws.fix_col(j, ws.lower[j])?;
            } else if helping && c <= 0.0 && ws.upper[j].is_finite() {
                ws.fix_col(j, ws.upper[j])?;
            }
        }
        Ok(ws.changed)
    }
}

/// Duplicate binary columns under a packing row: fix the costlier twin.
struct DuplicateColumns;

impl DuplicateColumns {
    /// Live `(row, coeff)` pattern of column `j`, sorted by row.
    fn pattern(ws: &Workspace, j: usize) -> Vec<(u32, f64)> {
        let mut pat: Vec<(u32, f64)> = ws.col_rows[j]
            .iter()
            .filter(|&&ri| ws.rows[ri as usize].alive)
            .filter_map(|&ri| ws.coeff_of(ri, j as u32).map(|a| (ri, a)))
            .collect();
        pat.sort_unstable_by_key(|&(ri, _)| ri);
        pat.dedup_by_key(|&mut (ri, _)| ri);
        pat
    }

    /// Whether some shared row caps `x_j + x_k ≤ 1`: a `≤`/`=` row with
    /// right-hand side ≤ 1, both coefficients ≥ 1, and every other term's
    /// contribution provably non-negative.
    fn has_cap_row(ws: &Workspace, pat: &[(u32, f64)], j: u32, k: u32) -> bool {
        pat.iter().any(|&(ri, a)| {
            let row = &ws.rows[ri as usize];
            if a < 1.0 - TOL || row.rhs > 1.0 + TOL {
                return false;
            }
            row.terms.iter().all(|&(c, ac)| {
                if c == j || c == k {
                    ac >= 1.0 - TOL
                } else {
                    ac >= -TOL && ws.lower[c as usize] >= -TOL
                }
            })
        })
    }
}

impl Reduction for DuplicateColumns {
    fn name(&self) -> &'static str {
        "duplicate-columns"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for j in 0..ws.num_cols() {
            if ws.removed[j] || ws.ty[j] != VarType::Binary {
                continue;
            }
            let pat = Self::pattern(ws, j);
            if pat.is_empty() {
                continue;
            }
            ws.charge(pat.len());
            let key = pattern_hash(pat.iter(), false);
            let bucket = buckets.entry(key).or_default();
            let mut fixed_self = false;
            for &k in bucket.iter() {
                if ws.removed[k] {
                    continue;
                }
                let pk = Self::pattern(ws, k);
                if pk != pat || !Self::has_cap_row(ws, &pat, j as u32, k as u32) {
                    continue;
                }
                // At most one of the twins can be 1; drop the costlier
                // (ties keep the earlier column).
                if ws.obj[k] <= ws.obj[j] {
                    ws.fix_col(j, 0.0)?;
                    fixed_self = true;
                } else {
                    ws.fix_col(k, 0.0)?;
                }
                break;
            }
            if !fixed_self {
                buckets.entry(key).or_default().push(j);
            }
        }
        Ok(ws.changed)
    }
}

/// Coefficient tightening and implied fixing on all-binary `≤` rows.
struct CoefficientTightening;

impl Reduction for CoefficientTightening {
    fn name(&self) -> &'static str {
        "coefficient-tightening"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.changed = false;
        for ri in 0..ws.rows.len() {
            let row = &ws.rows[ri];
            if !row.alive || row.sense != RowSense::Le || row.terms.is_empty() {
                continue;
            }
            let all_binary = row.terms.iter().all(|&(j, _)| {
                let j = j as usize;
                ws.ty[j] == VarType::Binary && !ws.removed[j]
            });
            if !all_binary {
                continue;
            }
            let (lo, hi) = ws.activity_bounds(row);
            let rhs = row.rhs;
            if hi <= rhs + TOL {
                ws.charge(ws.rows[ri].terms.len());
                continue; // redundant: the row pass removes it
            }
            // Implied fixing: a term whose forced side overshoots the
            // right-hand side even at minimum activity elsewhere.
            let mut fixes: Vec<(usize, f64)> = Vec::new();
            for &(j, a) in &row.terms {
                if a > 0.0 && lo + a > rhs + VIOL {
                    fixes.push((j as usize, 0.0)); // x_j = 1 impossible
                } else if a < 0.0 && lo - a > rhs + VIOL {
                    fixes.push((j as usize, 1.0)); // x_j = 0 impossible
                }
            }
            ws.charge(ws.rows[ri].terms.len());
            if !fixes.is_empty() {
                for (j, v) in fixes {
                    ws.fix_col(j, v)?;
                }
                continue; // row changed: revisit next round
            }
            // Classic tightening: a' = maxact − rhs, rhs' = maxact − a
            // preserves the 0/1 solution set exactly (both cases of x_j
            // reduce to the same residual constraint) while shrinking the
            // LP-feasible region.
            let row = &mut ws.rows[ri];
            let mut hi = hi;
            for t in 0..row.terms.len() {
                let (_, a) = row.terms[t];
                if a > 0.0 && hi > row.rhs + TOL && hi - a < row.rhs - TOL {
                    let a_new = hi - row.rhs;
                    let rhs_new = hi - a;
                    row.terms[t].1 = a_new;
                    row.rhs = rhs_new;
                    hi += a_new - a;
                    ws.stats.coeffs_tightened += 1;
                    ws.changed = true;
                }
            }
        }
        Ok(ws.changed)
    }
}

/// The set-packing clique criterion shared by [`CliqueExtraction`]
/// (membership counts into branching priorities) and the clique export
/// on [`PresolvedModel`] — one predicate so the two can never drift: a
/// live row of ≥ 2 binary, unremoved columns with coefficients ≥ 1 and a
/// right-hand side ≤ 1 (which covers the `≤` direction of partition
/// equalities).
fn is_packing_clique(row: &Row, ty: &[VarType], removed: &[bool]) -> bool {
    row.alive
        && row.terms.len() >= 2
        && row.rhs <= 1.0 + TOL
        && row.terms.iter().all(|&(j, a)| {
            ty[j as usize] == VarType::Binary && !removed[j as usize] && a >= 1.0 - TOL
        })
}

/// Counts set-packing cliques into per-column membership counts.
struct CliqueExtraction;

impl Reduction for CliqueExtraction {
    fn name(&self) -> &'static str {
        "clique-extraction"
    }

    fn apply(&mut self, ws: &mut Workspace) -> Result<bool, Infeasible> {
        ws.stats.cliques = 0;
        for count in &mut ws.clique_count {
            *count = 0;
        }
        for row in &ws.rows {
            if !is_packing_clique(row, &ws.ty, &ws.removed) {
                continue;
            }
            ws.stats.cliques += 1;
            for &(j, _) in &row.terms {
                ws.clique_count[j as usize] += 1;
            }
        }
        ws.stats.work_ticks += ws.rows.len() as u64;
        Ok(false) // analysis only: never re-triggers the fixpoint
    }
}

/// Runs the configured reduction stack to a fixpoint and builds the
/// reduced model.
#[must_use]
pub fn presolve(model: &Model, config: &PresolveConfig) -> PresolveOutcome {
    let mut ws = Workspace::new(model);
    if !config.enabled {
        let stats = PresolveStats {
            nnz_after: ws.stats.nnz_before,
            ..ws.stats
        };
        ws.stats = stats;
        return PresolveOutcome::Reduced(build_reduced(model, ws, config));
    }
    let mut stack: Vec<Box<dyn Reduction>> = vec![
        Box::new(SingletonRows),
        Box::new(FixedColumns),
        Box::new(RedundantRows),
    ];
    if config.duplicate_rows {
        stack.push(Box::new(DuplicateRows));
    }
    if config.substitute_doubletons {
        stack.push(Box::new(DoubletonEquations));
    }
    if config.dominated_columns {
        stack.push(Box::new(DominatedColumns));
    }
    if config.duplicate_columns {
        stack.push(Box::new(DuplicateColumns));
    }
    if config.coefficient_tightening {
        stack.push(Box::new(CoefficientTightening));
    }
    for _ in 0..config.max_rounds {
        let mut any = false;
        for reduction in &mut stack {
            match reduction.apply(&mut ws) {
                Ok(changed) => any |= changed,
                Err(Infeasible) => {
                    finish_stats(&mut ws);
                    return PresolveOutcome::Infeasible(ws.stats);
                }
            }
        }
        ws.stats.rounds += 1;
        if !any {
            break;
        }
    }
    if config.clique_priorities {
        // Analysis pass: never fails, never re-triggers the fixpoint.
        let _ = CliqueExtraction.apply(&mut ws);
    }
    finish_stats(&mut ws);
    PresolveOutcome::Reduced(build_reduced(model, ws, config))
}

fn finish_stats(ws: &mut Workspace) {
    ws.stats.nnz_after = ws
        .rows
        .iter()
        .filter(|r| r.alive)
        .map(|r| r.terms.len())
        .sum();
}

/// Materialises the reduced [`Model`] and the [`Postsolve`] stack.
fn build_reduced(model: &Model, ws: Workspace, config: &PresolveConfig) -> PresolvedModel {
    let n = ws.num_cols();
    let mut kept: Vec<u32> = Vec::with_capacity(n);
    let mut col_map: Vec<u32> = vec![u32::MAX; n];
    let mut reduced = Model::new();
    for j in 0..n {
        if ws.removed[j] {
            continue;
        }
        col_map[j] = kept.len() as u32;
        kept.push(j as u32);
        let name = model.variables()[j].name.clone();
        match ws.ty[j] {
            VarType::Binary => {
                let id = reduced.add_binary(name);
                // Carry surviving bound tightenings (a collapsed pair the
                // fixpoint did not get to substitute, or a caller's
                // fix_binary passing through with presolve disabled) —
                // add_binary alone would silently widen back to [0, 1].
                if ws.lower[j] > 0.0 || ws.upper[j] < 1.0 {
                    reduced.set_bounds(id, ws.lower[j], ws.upper[j]);
                }
            }
            VarType::Continuous => {
                let _ = reduced.add_continuous(name, ws.lower[j], ws.upper[j]);
            }
        }
    }
    for row in ws.rows.iter().filter(|r| r.alive) {
        let terms = row
            .terms
            .iter()
            .map(|&(j, a)| (VarId(col_map[j as usize]), a));
        let expr = reduced.expr(terms);
        let cmp = match row.sense {
            RowSense::Le => expr.leq(row.rhs),
            RowSense::Eq => expr.eq(row.rhs),
        };
        reduced.add_constraint(row.name.clone(), cmp);
    }
    let mut obj = reduced.expr(
        kept.iter()
            .enumerate()
            .map(|(new_j, &old_j)| (VarId(new_j as u32), ws.obj[old_j as usize]))
            .filter(|&(_, c)| c != 0.0),
    );
    obj.add_constant(ws.obj_offset);
    reduced.set_objective(obj);
    // Branching priorities carry over; clique membership refines the order
    // *within* each priority class (the multiplier keeps classes intact).
    let priorities = model.branch_priorities();
    let use_cliques = config.clique_priorities && ws.stats.cliques > 0;
    for (new_j, &old_j) in kept.iter().enumerate() {
        let base = priorities[old_j as usize];
        let p = if use_cliques {
            base.saturating_mul(1024)
                .saturating_add(ws.clique_count[old_j as usize].min(1023) as i32)
        } else {
            base
        };
        if p != 0 {
            reduced.set_branch_priority(VarId(new_j as u32), p);
        }
    }
    // Export the packing cliques in reduced variable space: the same
    // criterion clique extraction counts, materialised for the root cut
    // separator's conflict graph.
    let mut cliques = Vec::new();
    if config.clique_priorities && ws.stats.cliques > 0 {
        for row in &ws.rows {
            if is_packing_clique(row, &ws.ty, &ws.removed) {
                cliques.push(
                    row.terms
                        .iter()
                        .map(|&(j, _)| VarId(col_map[j as usize]))
                        .collect(),
                );
            }
        }
    }
    PresolvedModel {
        model: reduced,
        postsolve: Postsolve {
            n_original: n,
            kept,
            actions: ws.actions,
        },
        stats: ws.stats,
        cliques,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn reduced(model: &Model) -> PresolvedModel {
        match presolve(model, &PresolveConfig::default()) {
            PresolveOutcome::Reduced(p) => p,
            PresolveOutcome::Infeasible(_) => panic!("unexpected infeasibility"),
        }
    }

    /// Boundary case for the `VIOL`/solver-tolerance alignment: a
    /// violation of 5e-7 sits *between* the old 1e-7 threshold and the
    /// solver's 1e-6 feasibility tolerance. Presolve must not declare
    /// infeasible what the solver would accept — and a clear 2e-6
    /// violation must still be caught.
    #[test]
    fn marginal_violation_within_solver_tolerance_not_infeasible() {
        // x fixed to 1 by bounds; the row x ≤ 1 − 5e-7 is violated by
        // exactly 5e-7 after substitution. The solver accepts x = 1
        // (violation below its 1e-6 tolerance), so presolve must too.
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.fix_binary(x, true);
        m.add_constraint("tight", m.expr([(x, 1.0)]).leq(1.0 - 5e-7));
        m.set_objective(m.expr([(x, 1.0)]));
        assert!(m.is_feasible(&[1.0], 1e-6), "solver-side check accepts");
        match presolve(&m, &PresolveConfig::default()) {
            PresolveOutcome::Reduced(p) => {
                let restored = p
                    .postsolve
                    .restore(&vec![0.0; p.postsolve.num_reduced_vars()]);
                assert!((restored[0] - 1.0).abs() < 1e-9);
            }
            PresolveOutcome::Infeasible(_) => {
                panic!("presolve declared infeasible below the solver tolerance")
            }
        }
        // A violation clearly above the tolerance is still infeasible.
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.fix_binary(x, true);
        m.add_constraint("tight", m.expr([(x, 1.0)]).leq(1.0 - 2e-6));
        m.set_objective(m.expr([(x, 1.0)]));
        assert!(matches!(
            presolve(&m, &PresolveConfig::default()),
            PresolveOutcome::Infeasible(_)
        ));
    }

    #[test]
    fn exported_cliques_are_in_reduced_space() {
        // A partition row over three binaries plus an extra variable the
        // reductions remove ahead of them: exported clique ids must refer
        // to the *reduced* columns.
        let mut m = Model::new();
        let dead = m.add_binary("dead");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.fix_binary(dead, false);
        m.add_constraint("pick", m.expr([(a, 1.0), (b, 1.0), (c, 1.0)]).eq(1.0));
        // A second row keeps the trio alive through dominated-column
        // checks.
        m.add_constraint("use", m.expr([(a, 2.0), (b, 3.0), (c, 4.0)]).leq(4.0));
        m.set_objective(m.expr([(a, -1.0), (b, -2.0), (c, -3.0)]));
        let p = reduced(&m);
        assert!(p.stats.cliques >= 1);
        assert!(!p.cliques.is_empty(), "clique export missing");
        for clique in &p.cliques {
            assert!(clique.len() >= 2);
            for v in clique {
                assert!(v.index() < p.model.num_vars(), "stale original-space id");
            }
        }
    }

    #[test]
    fn singleton_row_tightens_and_disappears() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("cap", m.expr([(x, 2.0)]).leq(6.0));
        m.add_constraint("mix", m.expr([(x, 1.0), (y, 1.0)]).leq(8.0));
        // Negative costs keep both columns alive (neither dominated).
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        let p = reduced(&m);
        assert_eq!(p.model.num_constraints(), 1);
        let xv = p
            .model
            .variables()
            .iter()
            .find(|v| v.name == "x")
            .expect("x kept");
        assert!((xv.upper - 3.0).abs() < 1e-12);
        assert!(p.stats.rows_removed >= 1);
    }

    #[test]
    fn fixed_binary_substituted_out() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.fix_binary(x, true);
        m.add_constraint("c", m.expr([(x, 2.0), (y, 1.0)]).leq(2.5));
        m.set_objective(m.expr([(x, 3.0), (y, 1.0)]));
        let p = reduced(&m);
        // x = 1 substitutes to y ≤ 0.5 → y fixed 0 → everything folds away.
        assert_eq!(p.postsolve.num_reduced_vars(), 0);
        let restored = p.postsolve.restore(&[]);
        assert_eq!(restored, vec![1.0, 0.0]);
        assert!(m.is_feasible(&restored, 1e-9));
    }

    #[test]
    fn duplicate_rows_merge_to_tighter_rhs() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("a", m.expr([(x, 1.0), (y, 2.0)]).leq(9.0));
        m.add_constraint("b", m.expr([(x, 1.0), (y, 2.0)]).leq(5.0));
        m.add_constraint("keep", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let p = reduced(&m);
        assert_eq!(p.model.num_constraints(), 2);
        let merged = p
            .model
            .constraints()
            .iter()
            .find(|c| c.name == "a")
            .expect("first duplicate kept");
        assert!((merged.rhs - 5.0).abs() < 1e-12);
    }

    #[test]
    fn opposing_duplicates_become_equality() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("up", m.expr([(x, 1.0), (y, 1.0)]).leq(4.0));
        m.add_constraint("dn", m.expr([(x, 1.0), (y, 1.0)]).geq(4.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let p = reduced(&m);
        assert_eq!(p.model.num_constraints(), 1);
        assert_eq!(
            p.model.constraints()[0].sense,
            crate::ConstraintSense::Eq,
            "opposing ≤/≥ pair must fuse into an equality"
        );
    }

    #[test]
    fn equality_contradicting_flipped_le_is_infeasible() {
        // x + y = 2 with x + y ≥ 3 (a flipped-≤ duplicate of the same
        // pattern): the equality violates the lower bound → infeasible.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0)]).eq(2.0));
        m.add_constraint("lb", m.expr([(x, 1.0), (y, 1.0)]).geq(3.0));
        m.set_objective(m.expr([(x, 1.0)]));
        assert!(matches!(
            presolve(&m, &PresolveConfig::default()),
            PresolveOutcome::Infeasible(_)
        ));
        // The mirror case is implied, not contradictory: the ≥ −3 row is
        // absorbed and the model stays feasible.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0)]).eq(2.0));
        m.add_constraint("lb", m.expr([(x, 1.0), (y, 1.0)]).geq(-3.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let p = reduced(&m);
        assert_eq!(p.model.num_constraints(), 1);
        assert_eq!(p.model.constraints()[0].sense, crate::ConstraintSense::Eq);
    }

    #[test]
    fn surviving_binary_bounds_carry_into_reduced_model() {
        // With presolve disabled no reduction substitutes the fixing, so
        // the bound itself must survive into the rebuilt model.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.fix_binary(x, true);
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).leq(2.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let p = match presolve(&m, &PresolveConfig::off()) {
            PresolveOutcome::Reduced(p) => p,
            PresolveOutcome::Infeasible(_) => panic!("feasible model"),
        };
        assert_eq!(p.postsolve.num_reduced_vars(), 2);
        let xv = &p.model.variables()[x.index()];
        assert_eq!((xv.lower, xv.upper), (1.0, 1.0));
        assert!(
            !p.model.is_feasible(&[0.0, 0.0], 1e-9),
            "x=0 violates fixing"
        );
        assert!(p.model.is_feasible(&[1.0, 0.0], 1e-9));
    }

    #[test]
    fn contradictory_duplicates_are_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("a", m.expr([(x, 1.0), (y, 1.0)]).eq(2.0));
        m.add_constraint("b", m.expr([(x, 1.0), (y, 1.0)]).eq(5.0));
        m.set_objective(m.expr([(x, 1.0)]));
        assert!(matches!(
            presolve(&m, &PresolveConfig::default()),
            PresolveOutcome::Infeasible(_)
        ));
    }

    #[test]
    fn crossed_singletons_are_infeasible() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint("ge", m.expr([(x, 1.0)]).geq(1.0));
        m.add_constraint("le", m.expr([(x, 1.0)]).leq(0.0));
        m.set_objective(m.expr([(x, 1.0)]));
        assert!(matches!(
            presolve(&m, &PresolveConfig::default()),
            PresolveOutcome::Infeasible(_)
        ));
    }

    #[test]
    fn dominated_column_fixed_at_preferred_bound() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        // x only consumes knapsack slack and costs ≥ 0: at least one
        // optimum has x = 0.
        m.add_constraint("cap", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(x, 2.0), (y, -1.0)]));
        let p = reduced(&m);
        let restored = p
            .postsolve
            .restore(&vec![1.0; p.postsolve.num_reduced_vars()][..]);
        assert_eq!(restored[x.index()], 0.0);
        // y helps nothing but costs −1 and only consumes: stays free (its
        // coefficient is positive) — or is fixed to 1? It consumes with
        // c < 0, so neither rule applies and it must survive.
        assert!(p.postsolve.num_reduced_vars() >= 1 || restored[y.index()] == 1.0);
    }

    #[test]
    fn forcing_row_fixes_all_members() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        // x + y ≥ 2 forces both to 1.
        m.add_constraint("force", m.expr([(x, 1.0), (y, 1.0)]).geq(2.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let p = reduced(&m);
        assert_eq!(p.postsolve.num_reduced_vars(), 0);
        assert_eq!(p.postsolve.restore(&[]), vec![1.0, 1.0]);
    }

    #[test]
    fn coefficient_tightening_shrinks_oversized_terms() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        // 5x + y ≤ 5: x = 1 forces y = 0; tightening yields x + ... with
        // the same 0/1 solutions but a tighter LP. Duplicate-column
        // merging is off here: it would (validly) fix one of the twins
        // the tightening creates, which this test is not about.
        m.add_constraint("k", m.expr([(x, 5.0), (y, 1.0)]).leq(5.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        let cfg = PresolveConfig {
            duplicate_columns: false,
            ..PresolveConfig::default()
        };
        let p = match presolve(&m, &cfg) {
            PresolveOutcome::Reduced(p) => p,
            PresolveOutcome::Infeasible(_) => panic!("feasible model"),
        };
        assert!(p.stats.coeffs_tightened >= 1, "stats: {:?}", p.stats);
        // The 0/1 solution set must be preserved.
        for (xv, yv) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let original_ok = m.is_feasible(&[xv, yv], 1e-9);
            let projected = p.postsolve.project(&[xv, yv]);
            let reduced_ok = p.model.is_feasible(&projected, 1e-9);
            assert_eq!(original_ok, reduced_ok, "({xv}, {yv})");
        }
    }

    #[test]
    fn duplicate_binary_columns_under_packing_row() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        // x and y have identical columns and share the packing row; the
        // costlier y is fixed to 0.
        m.add_constraint("pack", m.expr([(x, 1.0), (y, 1.0), (z, 1.0)]).leq(1.0));
        m.add_constraint("cap", m.expr([(x, 2.0), (y, 2.0), (z, 1.0)]).leq(4.0));
        m.set_objective(m.expr([(x, 1.0), (y, 3.0), (z, -5.0)]));
        let p = reduced(&m);
        let restored = p
            .postsolve
            .restore(&vec![0.0; p.postsolve.num_reduced_vars()][..]);
        assert_eq!(restored[y.index()], 0.0, "costlier duplicate fixed to 0");
    }

    #[test]
    fn clique_extraction_counts_packing_rows() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constraint(
            "c1",
            m.expr([(vars[0], 1.0), (vars[1], 1.0), (vars[2], 1.0)])
                .eq(1.0),
        );
        m.add_constraint("c2", m.expr([(vars[2], 1.0), (vars[3], 1.0)]).leq(1.0));
        // Binding knapsack with distinct coefficients keeps the columns
        // distinguishable (no duplicate-column fixing); negative costs
        // keep them undominated.
        m.add_constraint(
            "c3",
            m.expr(vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64)))
                .leq(4.0),
        );
        m.set_objective(m.expr(vars.iter().map(|&v| (v, -1.0))));
        let p = reduced(&m);
        assert_eq!(p.stats.cliques, 2, "stats: {:?}", p.stats);
    }

    #[test]
    fn postsolve_roundtrips_reduced_solutions() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.fix_binary(x, true);
        m.add_constraint("cover", m.expr([(x, 1.0), (y, 1.0), (z, 1.0)]).geq(2.0));
        m.set_objective(m.expr([(y, 1.0), (z, 2.0)]));
        let p = reduced(&m);
        // Any reduced-feasible point must restore to an original-feasible one.
        let nr = p.postsolve.num_reduced_vars();
        for mask in 0..(1u32 << nr) {
            let reduced_point: Vec<f64> = (0..nr).map(|j| f64::from((mask >> j) & 1)).collect();
            if p.model.is_feasible(&reduced_point, 1e-9) {
                let restored = p.postsolve.restore(&reduced_point);
                assert!(m.is_feasible(&restored, 1e-9), "mask {mask}");
                assert!(
                    (m.objective_value(&restored) - p.model.objective_value(&reduced_point)).abs()
                        < 1e-9
                );
            }
        }
    }

    #[test]
    fn disabled_presolve_is_identity() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.fix_binary(x, true);
        m.set_objective(m.expr([(x, 1.0)]));
        let p = match presolve(&m, &PresolveConfig::off()) {
            PresolveOutcome::Reduced(p) => p,
            PresolveOutcome::Infeasible(_) => panic!("must not run reductions"),
        };
        assert_eq!(p.postsolve.num_reduced_vars(), 1);
        assert_eq!(p.stats.cols_removed, 0);
    }

    #[test]
    fn stats_track_nonzeros() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.fix_binary(x, false);
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(x, 1.0), (y, -1.0)]));
        let p = reduced(&m);
        assert_eq!(p.stats.nnz_before, 2);
        assert!(p.stats.nnz_after < p.stats.nnz_before);
        assert_eq!(
            p.stats.nnz_removed(),
            p.stats.nnz_before - p.stats.nnz_after
        );
    }
}
