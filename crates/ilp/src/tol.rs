//! The single home of every solver tolerance (`tolerance-drift` rule).
//!
//! PR 5 had to reconcile a 1e-7 vs 1e-6 feasibility mismatch between
//! the dense and revised simplex by hand; this module makes that class
//! of drift unrepresentable. `croxmap-lint`'s `tolerance-drift` pass
//! flags any float literal with `1e-12 ≤ |v| < 1e-3` outside this file,
//! so a tolerance can only be introduced here, with a name and a doc
//! comment, and every consumer shares the one definition. Modules may
//! keep local aliases (`const PFEAS: f64 = tol::PRIMAL_FEAS;`) for
//! brevity in hot loops — an alias has no literal, so the value still
//! has exactly one definition site.
//!
//! Changing any value here changes pivot/bound decisions and therefore
//! deterministic tick counts: expect to re-baseline `BENCH_solver.json`
//! and justify the delta in CHANGES.md.

/// Primal feasibility: maximum admissible bound violation of a basic
/// variable in the (dense and revised) simplex ratio tests.
pub const PRIMAL_FEAS: f64 = 1e-7;

/// Dual feasibility: reduced-cost threshold below which a column is
/// not an attractive entering/leaving candidate.
pub const DUAL_FEAS: f64 = 1e-6;

/// Constraint-level feasibility: maximum admissible row activity
/// violation (presolve checks, cut violation, phase-1 residual).
pub const FEAS: f64 = 1e-6;

/// Integrality: how far from the nearest integer a value may sit and
/// still count as integral (branching, rounding, fractionality).
pub const INT_FEAS: f64 = 1e-6;

/// Objective agreement: slack used when comparing two objective or
/// bound values that should agree up to rounding (incumbent
/// improvement, bound dominance, cost-integrality detection).
pub const OBJ_AGREE: f64 = 1e-9;

/// Relative MIP gap at which the search declares optimality.
pub const GAP_REL: f64 = 1e-6;

/// Markowitz pivot admissibility floor in the LU factorisation.
pub const PIVOT: f64 = 1e-10;

/// Minimum magnitude of a simplex pivot element (`w_r`); smaller pivots
/// are numerically unusable and force a refactorise-or-bail path.
pub const PIVOT_MIN: f64 = 1e-9;

/// Structural-zero guard: magnitudes below this are treated as exact
/// zeros (drop tolerance, division-denominator guards).
pub const ZERO: f64 = 1e-12;

/// Dense-verification slack: how far the revised simplex objective may
/// sit from the independent dense recomputation before it is an error.
pub const VERIFY: f64 = 1e-5;

/// Floor on dual steepest-edge reference weights; below this the
/// weight is considered degenerate and reset.
pub const DSE_FLOOR: f64 = 1e-4;

/// Slope threshold in the bound-flip ratio test: a candidate whose
/// slope contribution is below this cannot profitably flip.
pub const FLIP_SLOPE: f64 = 1e-9;

/// Scale of the deterministic anti-degeneracy cost perturbation.
pub const PERTURB: f64 = 1e-7;

/// Floor for pseudo-cost denominators and per-unit gains in strong
/// branching, keeping scores finite on degenerate candidates.
pub const PSEUDOCOST_FLOOR: f64 = 1e-6;
