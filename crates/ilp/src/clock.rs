//! Deterministic work accounting.

use serde::{Deserialize, Serialize};

/// A deterministic clock that meters solver *work* instead of wall time.
///
/// Google OR-Tools (used by the paper) exposes "deterministic timing
/// results reflecting only the number, type, and complexity of each solver
/// operation"; all figures in the paper report deterministic seconds. This
/// clock reproduces that idea: every elementary solver operation charges a
/// number of *ticks* proportional to the floating-point work it performs,
/// and one deterministic second is defined as 10⁹ ticks (roughly one second
/// of a 1 GFLOP/s machine).
///
/// The clock is monotone and identical across runs for identical inputs.
///
/// ```
/// use croxmap_ilp::DeterministicClock;
/// let mut clock = DeterministicClock::new();
/// clock.charge(2_000_000_000);
/// assert_eq!(clock.seconds(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicClock {
    ticks: u64,
}

/// Ticks per deterministic second — the exchange rate between the
/// [`work_ticks`](crate::simplex::LpResult::work_ticks) metered by the LP
/// engines (one tick ≈ one floating-point multiply-add: a factorisation
/// elimination step, a solve entry touched, an eta application, a pricing
/// dot-product term) and the deterministic seconds reported by this
/// clock. Public so harnesses (benches, budget maths) convert without
/// hard-coding `1e9`.
pub const TICKS_PER_SECOND: u64 = 1_000_000_000;

impl DeterministicClock {
    /// Creates a clock at zero.
    #[must_use]
    pub fn new() -> Self {
        DeterministicClock::default()
    }

    /// A clock pre-charged with `ticks` — how the parallel drivers
    /// rebuild the aggregate clock from per-worker tick totals.
    #[must_use]
    pub fn from_ticks(ticks: u64) -> Self {
        DeterministicClock { ticks }
    }

    /// Charges `ticks` units of work.
    pub fn charge(&mut self, ticks: u64) {
        self.ticks = self.ticks.saturating_add(ticks);
    }

    /// Folds another clock's ticks into this one: work done by parallel
    /// workers aggregates into one deterministic total, exactly as if it
    /// had run sequentially.
    pub fn merge(&mut self, other: &DeterministicClock) {
        self.charge(other.ticks);
    }

    /// Total ticks charged so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Elapsed deterministic seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        DeterministicClock::ticks_to_seconds(self.ticks)
    }

    /// Converts raw tick counts to deterministic seconds — the one
    /// sanctioned `/ 1e9`, so harness code never hand-rolls the rate.
    #[must_use]
    pub fn ticks_to_seconds(ticks: u64) -> f64 {
        ticks as f64 / TICKS_PER_SECOND as f64
    }

    /// Converts a deterministic-second budget to ticks (saturating at
    /// zero for negative inputs).
    #[must_use]
    pub fn seconds_to_ticks(seconds: f64) -> u64 {
        (seconds.max(0.0) * TICKS_PER_SECOND as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(DeterministicClock::new().ticks(), 0);
        assert_eq!(DeterministicClock::new().seconds(), 0.0);
    }

    #[test]
    fn accumulates() {
        let mut c = DeterministicClock::new();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.ticks(), 15);
    }

    #[test]
    fn from_ticks_and_merge_aggregate() {
        let mut total = DeterministicClock::from_ticks(7);
        let worker = DeterministicClock::from_ticks(5);
        total.merge(&worker);
        assert_eq!(total.ticks(), 12);
    }

    #[test]
    fn second_tick_conversions_round_trip() {
        assert_eq!(DeterministicClock::ticks_to_seconds(TICKS_PER_SECOND), 1.0);
        assert_eq!(DeterministicClock::seconds_to_ticks(2.5), 2_500_000_000);
        assert_eq!(DeterministicClock::seconds_to_ticks(-1.0), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = DeterministicClock::new();
        c.charge(u64::MAX);
        c.charge(100);
        assert_eq!(c.ticks(), u64::MAX);
    }
}
