//! Anytime branch-and-bound solver with root cutting planes, diving and
//! LNS heuristics. Every LP relaxation in the search — node
//! re-optimisations, dives, LNS sub-searches — runs through an
//! [`LpSession`], so a search thread shares a single live engine and the
//! root cut loop can tighten the relaxation in place
//! ([`LpSession::add_rows`]) before the first branch.
//!
//! With [`SolverConfig::with_threads`] the tree phase runs on the
//! parallel driver ([`crate::parallel`]): the sequential root phase
//! (presolve → root LP → root cuts → root dives) is unchanged, then the
//! open tree is explored by worker threads, each owning a private
//! `LpSession` over the cut-grown root relaxation.

use crate::backend::LpSession;
use crate::basis::Basis;
use crate::clock::DeterministicClock;
use crate::cuts::{Cut, CutSeparator};
use crate::expr::{Comparison, VarId};
use crate::factor::FactorStats;
use crate::model::{Model, VarType};
use crate::parallel::{self, Exchange, ParallelMode, ParallelStats};
use crate::presolve::{presolve, PresolveConfig, PresolveOutcome, PresolveStats};
use crate::simplex::{LpConfig, LpEngine, LpStatus, PricingRule, WarmLpResult};
use crate::solution::{IncumbentEvent, Solution};
use crate::tol;
use crate::trace::{Phase, PhaseBreakdown, ProgressRow, SpanKind, TraceBuf, TraceHandle};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::Arc;

/// Tolerance under which a relaxation value counts as integral.
const INT_TOL: f64 = tol::INT_FEAS;
/// Feasibility tolerance for accepting solutions.
const FEAS_TOL: f64 = tol::FEAS;

/// Branching variable selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Branch on the binary whose relaxation value is closest to 0.5.
    #[default]
    MostFractional,
    /// Branch on the binary with the best pseudo-cost score, falling back
    /// to most-fractional until history accumulates.
    PseudoCost,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Deterministic-time budget in seconds (see
    /// [`DeterministicClock`]). The solver stops improving when exhausted.
    pub det_time_limit: f64,
    /// Maximum number of branch-and-bound nodes to expand.
    pub node_limit: u64,
    /// Relative optimality gap at which the search stops and reports
    /// [`SolveStatus::Optimal`].
    pub gap_tolerance: f64,
    /// RNG seed; fixes the entire solve deterministically.
    pub seed: u64,
    /// Enables periodic large-neighbourhood search around the incumbent.
    pub enable_lns: bool,
    /// Fraction of binaries released per LNS round.
    pub lns_destroy_fraction: f64,
    /// Branching rule.
    pub branch_rule: BranchRule,
    /// LP subsolver configuration.
    pub lp: LpConfig,
    /// Warm-starts every child LP from its parent's optimal basis (dual
    /// simplex reoptimisation). Disable to force cold solves everywhere —
    /// useful only for benchmarking the warm-start win itself.
    pub warm_lp: bool,
    /// Presolve configuration: the model is reduced once at the root
    /// (rows, columns and nonzeros removed; see [`crate::presolve`]) and
    /// every incumbent/bound is mapped back through the postsolve stack.
    pub presolve: PresolveConfig,
    /// Root cutting-plane rounds: before the tree search, knapsack cover
    /// and clique cuts ([`crate::cuts`]) violated by the root relaxation
    /// are appended to the live session — up to this many
    /// separate/re-solve rounds. `0` disables the cut loop.
    pub cut_rounds: u32,
    /// Worker threads for the tree phase. `1` (the default) runs the
    /// sequential search unchanged — bit-identical to previous releases.
    /// With `n > 1` the root phase still runs sequentially, then the open
    /// tree is explored by `n` workers ([`crate::parallel`]), each owning
    /// a private [`LpSession`] seeded from the cut-grown root relaxation.
    pub threads: usize,
    /// How the parallel tree phase coordinates (ignored at `threads = 1`).
    pub parallel_mode: ParallelMode,
    /// Observability sink ([`crate::trace`]): when set, the solver
    /// delivers tick-stamped span events, periodic progress rows and the
    /// final [`PhaseBreakdown`] to it. `None` (the default) records
    /// nothing and leaves the solve bit-identical to an untraced build.
    pub trace: Option<TraceHandle>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            det_time_limit: 30.0,
            node_limit: 200_000,
            gap_tolerance: tol::GAP_REL,
            seed: 0,
            enable_lns: true,
            lns_destroy_fraction: 0.3,
            branch_rule: BranchRule::MostFractional,
            lp: LpConfig::default(),
            warm_lp: true,
            presolve: PresolveConfig::default(),
            cut_rounds: 4,
            threads: 1,
            parallel_mode: ParallelMode::default(),
            trace: None,
        }
    }
}

impl SolverConfig {
    /// Most-violated cuts kept per root separation round. Shared with
    /// the bench harness so the guarded `cuts_root/*` rows measure the
    /// same per-round cap the solver ships.
    pub const MAX_CUTS_PER_ROUND: usize = 32;
    /// Consecutive cut rounds without root-bound movement before the
    /// loop stops (degenerate roots admit endless violated-but-useless
    /// cuts). Shared with the bench harness like
    /// [`SolverConfig::MAX_CUTS_PER_ROUND`].
    pub const CUT_STALL_LIMIT: u32 = 2;
    /// Deterministic-tick budget for each cut round's re-solve, as a
    /// multiple of the root solve's own ticks. Massively degenerate roots
    /// (set partitioning) can make the re-solve after a cut batch orders
    /// of magnitude costlier than the root solve itself while moving the
    /// bound not at all; the stall guard only reacts *after* paying for
    /// two such rounds. This cap bounds the damage per round: a re-solve
    /// that exceeds it reports `IterLimit` and the loop abandons cutting
    /// (reopening the base session), exactly like a blown LP iteration
    /// budget. Shared with the bench harness like
    /// [`SolverConfig::MAX_CUTS_PER_ROUND`].
    pub const CUT_ROUND_TICK_FACTOR: u64 = 32;
    /// Floor under the per-round tick budget, so cheap root solves still
    /// leave every cut round a workable slice.
    pub const CUT_ROUND_TICK_FLOOR: u64 = 1 << 22;
    /// Nodes between progress rows in the sequential tree phase (the
    /// deterministic coordinator emits one row per epoch instead).
    pub const PROGRESS_NODE_INTERVAL: u64 = 256;

    /// Returns a copy with the given deterministic-time budget.
    #[must_use]
    pub fn with_det_time_limit(mut self, seconds: f64) -> Self {
        self.det_time_limit = seconds;
        self
    }

    /// Returns a copy with the given seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given LP subsolver configuration (engine
    /// selection, pricing rule, refactorisation policy, iteration cap).
    #[must_use]
    pub fn with_lp(mut self, lp: LpConfig) -> Self {
        self.lp = lp;
        self
    }

    /// Returns a copy with the given LP engine (sparse LU, explicit
    /// dense inverse, or the dense tableau oracle).
    #[must_use]
    pub fn with_lp_engine(mut self, engine: LpEngine) -> Self {
        self.lp.engine = engine;
        self
    }

    /// Returns a copy with the given dual pricing rule.
    #[must_use]
    pub fn with_pricing(mut self, pricing: PricingRule) -> Self {
        self.lp.pricing = pricing;
        self
    }

    /// Returns a copy with the given refactorisation cadence (pivot
    /// updates / hot basis reuses tolerated before a fresh factorisation).
    #[must_use]
    pub fn with_refactor_interval(mut self, interval: u32) -> Self {
        self.lp.refactor_interval = interval;
        self
    }

    /// Returns a copy with the given basis-update rule (in-place
    /// Forrest–Tomlin, the default, or the product-form eta file).
    #[must_use]
    pub fn with_update_rule(mut self, update: crate::factor::UpdateRule) -> Self {
        self.lp.update = update;
        self
    }

    /// Returns a copy with the given presolve configuration.
    #[must_use]
    pub fn with_presolve(mut self, presolve: PresolveConfig) -> Self {
        self.presolve = presolve;
        self
    }

    /// Returns a copy with the given number of root cutting-plane rounds
    /// (`0` disables the cut loop).
    #[must_use]
    pub fn with_cuts(mut self, rounds: u32) -> Self {
        self.cut_rounds = rounds;
        self
    }

    /// Returns a copy running the tree phase on `threads` workers
    /// (clamped to at least 1; `1` is the sequential path).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given parallel coordination mode.
    #[must_use]
    pub fn with_parallel_mode(mut self, mode: ParallelMode) -> Self {
        self.parallel_mode = mode;
        self
    }

    /// Returns a copy delivering trace events (spans, progress rows, the
    /// final phase breakdown) to `trace`. See [`crate::trace`] for the
    /// available sinks and the determinism guarantees.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Final status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Optimality proved (tree exhausted or gap closed).
    Optimal,
    /// A feasible solution exists but optimality was not proved.
    Feasible,
    /// The model was proved infeasible.
    Infeasible,
    /// Budget exhausted with no feasible solution and no infeasibility proof.
    Unknown,
}

/// What the root cutting-plane loop achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutSummary {
    /// Separate/re-solve rounds that added at least one cut.
    pub rounds: u32,
    /// Cut rows appended to the session.
    pub cuts_added: usize,
    /// Root LP objective before any cut.
    pub root_bound_before: f64,
    /// Root LP objective after the last cut round — with valid cuts this
    /// can only move up (towards the integer optimum).
    pub root_bound_after: f64,
    /// `false` if any cut round *lowered* the root objective, which valid
    /// cuts cannot do — the bench smoke gate fails on it.
    pub bound_monotone: bool,
    /// `true` when a cut reoptimisation blew its LP budget slice and the
    /// solver dropped **all** cuts (sessions are grow-only, so the only
    /// way back is a fresh session on the base model) — the search then
    /// proceeds exactly as it would have without a cut loop.
    pub abandoned: bool,
}

impl Default for CutSummary {
    fn default() -> Self {
        CutSummary {
            rounds: 0,
            cuts_added: 0,
            root_bound_before: f64::NEG_INFINITY,
            root_bound_after: f64::NEG_INFINITY,
            bound_monotone: true,
            abandoned: false,
        }
    }
}

/// Result of [`Solver::solve`].
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final status.
    pub status: SolveStatus,
    /// Best solution found, if any.
    pub best: Option<Solution>,
    /// Best proven lower bound on the objective.
    pub best_bound: f64,
    /// Deterministic time consumed, in seconds.
    pub det_time: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Every improving solution in discovery order with timestamps.
    pub incumbents: Vec<IncumbentEvent>,
    /// What root presolve achieved (all zeros when disabled).
    pub presolve: PresolveStats,
    /// LP relaxations that fell back to the dense two-phase tableau
    /// (zero on healthy runs; the degeneracy-handling regression signal).
    pub lp_fallbacks: u64,
    /// What the root cutting-plane loop achieved (all defaults when
    /// disabled or never reached).
    pub cuts: CutSummary,
    /// Factorisation statistics aggregated over every LP solve of the
    /// search — across all workers in parallel runs.
    pub factor: FactorStats,
    /// Parallel-driver statistics; `None` on sequential (`threads = 1`)
    /// runs and the pre-search short circuits.
    pub parallel: Option<ParallelStats>,
    /// Deterministic ticks and operation counts split by solver phase
    /// (presolve / root LP / cuts / dives / tree / LNS); the phase ticks
    /// sum exactly to [`SolveResult::det_time`]'s total, with `Other`
    /// holding unattributed driver overhead. Always populated, traced or
    /// not.
    pub phases: PhaseBreakdown,
}

impl SolveResult {
    /// Relative gap between incumbent and bound (`inf` without incumbent).
    #[must_use]
    pub fn gap(&self) -> f64 {
        match &self.best {
            None => f64::INFINITY,
            Some(s) => {
                let inc = s.objective();
                if inc.abs() < tol::ZERO {
                    (inc - self.best_bound).abs()
                } else {
                    (inc - self.best_bound).abs() / inc.abs().max(tol::ZERO)
                }
            }
        }
    }
}

/// The anytime 0/1 ILP solver.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
}

#[derive(Debug)]
struct Node {
    /// Index of the parent in the arena, `usize::MAX` for the root.
    parent: usize,
    /// Branching decision applied on top of the parent's bounds.
    var: u32,
    lower: f64,
    upper: f64,
    /// LP bound inherited from the parent at creation time.
    bound: f64,
    depth: u32,
    /// The parent's optimal LP basis, shared by both children: the warm
    /// start for this node's relaxation.
    warm: Option<Rc<Basis>>,
}

/// Heap entry ordered so the smallest bound pops first.
struct OpenNode {
    bound: f64,
    seq: u64,
    node: usize,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.bound.to_bits() == other.bound.to_bits() && self.seq == other.seq
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the lowest bound wins;
        // tie-break on recency for a mild plunging bias.
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One search context: a model view, a private [`LpSession`], a clock and
/// an RNG stream. The sequential solver owns exactly one; every parallel
/// worker thread owns its own (over the shared cut-grown root view).
pub(crate) struct Search<'a> {
    model: &'a Model,
    pub(crate) cfg: &'a SolverConfig,
    pub(crate) clock: DeterministicClock,
    /// Current incumbent, shared by reference so LNS rounds and the
    /// parallel exchange never deep-copy the assignment on the hot path.
    pub(crate) incumbent: Option<Arc<Solution>>,
    pub(crate) events: Vec<IncumbentEvent>,
    rng: SmallRng,
    /// True when every objective coefficient is integral, enabling the
    /// stronger `incumbent − 1` cutoff.
    integral_objective: bool,
    pseudo_up: Vec<(f64, u32)>,
    pseudo_down: Vec<(f64, u32)>,
    /// Per-variable branching priority (higher = decided first).
    priorities: Vec<i32>,
    /// The one LP session this search context runs through: holds the
    /// live engine (consecutive solves sharing a basis skip
    /// refactorisation) and the cut-grown model view.
    pub(crate) session: LpSession,
    /// Non-zero count of the session's constraint matrix, including cut
    /// rows (for pivot cost estimates).
    nnz: usize,
    pub(crate) nodes: u64,
    /// LP solves served by the dense-tableau fallback.
    pub(crate) lp_fallbacks: u64,
    /// Factorisation statistics aggregated over this context's LP solves.
    pub(crate) factor: FactorStats,
    /// Local deterministic deadline: the config budget sequentially, a
    /// per-task slice on deterministic workers, unbounded on free-running
    /// workers (the shared exchange enforces the global budget there).
    det_limit: f64,
    /// Externally imposed objective cutoff (deterministic epochs freeze
    /// the global incumbent objective here); `+inf` when unused.
    cutoff_hint: f64,
    /// The parallel exchange, for free-running workers only: pruning
    /// reads its atomic incumbent cutoff, accepted incumbents publish
    /// through it, and solve work is charged to its aggregate clock.
    shared: Option<&'a Exchange>,
    /// Which phase the clock charges currently attribute to.
    phase: Phase,
    /// Per-phase tick/count attribution for this context. Maintained
    /// unconditionally (a handful of array adds per LP solve) so every
    /// [`SolveResult`] carries a breakdown, traced or not.
    pub(crate) phases: PhaseBreakdown,
    /// Span-event buffer; `None` when no trace sink is configured, which
    /// keeps the no-sink path free of any event work.
    pub(crate) trace: Option<TraceBuf>,
}

impl<'a> Search<'a> {
    fn new(model: &'a Model, cfg: &'a SolverConfig) -> Self {
        Search::with_context(model, cfg, cfg.seed, None)
    }

    /// A search context with an explicit RNG seed and (for free-running
    /// parallel workers) a shared exchange. Workers diversify by seed so
    /// their dives and LNS rounds explore different neighbourhoods.
    pub(crate) fn with_context(
        model: &'a Model,
        cfg: &'a SolverConfig,
        seed: u64,
        shared: Option<&'a Exchange>,
    ) -> Self {
        let integral_objective = model
            .objective()
            .iter()
            .all(|&(_, c)| (c - c.round()).abs() < tol::OBJ_AGREE)
            && (model.objective_offset() - model.objective_offset().round()).abs() < tol::OBJ_AGREE;
        Search {
            model,
            cfg,
            clock: DeterministicClock::new(),
            incumbent: None,
            events: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            integral_objective,
            pseudo_up: vec![(0.0, 0); model.num_vars()],
            pseudo_down: vec![(0.0, 0); model.num_vars()],
            priorities: model.branch_priorities(),
            session: LpSession::open(model, cfg.lp),
            nnz: model.csc().nnz(),
            nodes: 0,
            lp_fallbacks: 0,
            factor: FactorStats::default(),
            det_limit: if shared.is_some() {
                f64::INFINITY
            } else {
                cfg.det_time_limit
            },
            cutoff_hint: f64::INFINITY,
            shared,
            phase: Phase::Other,
            phases: PhaseBreakdown::default(),
            trace: cfg.trace.as_ref().map(|_| TraceBuf::new(0)),
        }
    }

    /// Switches the phase subsequent clock charges attribute to,
    /// returning the previous phase (restore it for nested scopes — LNS
    /// runs a mini tree search inside the LNS phase).
    pub(crate) fn set_phase(&mut self, phase: Phase) -> Phase {
        std::mem::replace(&mut self.phase, phase)
    }

    /// Stamps this context's trace buffer with a parallel worker id
    /// (`0` stays the root/sequential context).
    pub(crate) fn set_trace_worker(&mut self, worker: u32) {
        if let Some(buf) = self.trace.as_mut() {
            buf.set_worker(worker);
        }
    }

    /// Buffers one span event ending at the current clock; no-op without
    /// a configured sink.
    fn emit_span(&mut self, kind: SpanKind, start_ticks: u64, count: u64, value: f64) {
        if let Some(buf) = self.trace.as_mut() {
            let end = self.clock.ticks();
            buf.emit(
                kind,
                start_ticks,
                end.saturating_sub(start_ticks),
                count,
                value,
            );
        }
    }

    /// Closes the phase breakdown against this context's clock total and
    /// delivers the buffered span stream plus the breakdown to the
    /// configured sink, if any. Call exactly once, when the solve ends.
    pub(crate) fn finish_trace(&mut self) -> PhaseBreakdown {
        let mut phases = self.phases;
        phases.finalize(self.clock.ticks());
        if let Some(handle) = self.cfg.trace.as_ref() {
            if let Some(buf) = self.trace.as_ref() {
                handle.record_all(&buf.events);
            }
            handle.finish(&phases);
        }
        phases
    }

    /// Delivers one progress row straight to the configured sink (rows
    /// are rendered live, not buffered — their inputs are deterministic,
    /// so traced streams stay reproducible).
    pub(crate) fn emit_progress(&self, open: u64, bound: f64) {
        if let Some(handle) = self.cfg.trace.as_ref() {
            handle.progress(&ProgressRow {
                det_seconds: self.clock.seconds(),
                nodes: self.nodes,
                open,
                incumbent: self.incumbent.as_ref().map(|s| s.objective()),
                bound,
            });
        }
    }

    /// Caps this context's deterministic deadline at `remaining` seconds
    /// from its current clock (deterministic workers get one per task).
    pub(crate) fn set_task_budget(&mut self, remaining: f64) {
        self.det_limit = self.clock.seconds() + remaining.max(0.0);
    }

    /// Imposes an external objective cutoff (`+inf` clears it).
    pub(crate) fn set_cutoff_hint(&mut self, objective: f64) {
        self.cutoff_hint = objective;
    }

    /// Replaces the local incumbent reference (no event is recorded; the
    /// caller owns the authoritative stream).
    pub(crate) fn set_incumbent(&mut self, incumbent: Option<Arc<Solution>>) {
        self.incumbent = incumbent;
    }

    /// Solves one LP relaxation through the session, warm-starting from
    /// `warm` when enabled, and charges its deterministic work to the
    /// clock.
    fn solve_lp(&mut self, bounds: &[(f64, f64)], warm: Option<&Basis>) -> WarmLpResult {
        self.solve_lp_budgeted(bounds, warm, u64::MAX)
    }

    /// [`Search::solve_lp`] with a per-solve deterministic-tick cap layered
    /// on the budget-derived iteration cap. The root cut loop slices its
    /// re-solves this way; the engine reports [`LpStatus::IterLimit`] when
    /// the cap trips.
    fn solve_lp_budgeted(
        &mut self,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
        work_limit: u64,
    ) -> WarmLpResult {
        let mut config = self.lp_config();
        config.work_limit = work_limit;
        self.session.configure(config);
        let warm = if self.cfg.warm_lp { warm } else { None };
        let start = self.clock.ticks();
        let out = self.session.solve(bounds, warm);
        self.clock.charge(out.result.work_ticks);
        self.phases.add(self.phase, out.result.work_ticks, 1);
        if let Some(x) = self.shared {
            x.charge(out.result.work_ticks);
        }
        self.factor.merge(&out.result.factor);
        // The per-solve factor stats are a drained delta, so any
        // refactorisations metered there belong to *this* solve — span
        // them (the ticks are a slice of the solve's own charge, not an
        // extra charge).
        if out.result.factor.refactors > 0 {
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    SpanKind::Refactor,
                    start,
                    out.result.factor.refactor_ticks,
                    out.result.factor.refactors,
                    f64::NAN,
                );
            }
        }
        if out.result.dense_fallback {
            self.lp_fallbacks += 1;
        }
        out
    }

    /// Root cutting-plane loop: separate knapsack cover and clique cuts
    /// violated by the root relaxation, append them to the live session
    /// ([`LpSession::add_rows`] — the engine grows in place), re-solve,
    /// repeat up to the configured round limit. Valid cuts only ever
    /// *raise* the root bound; every node below the root then inherits
    /// the tightened relaxation for free. The returned basis is the last
    /// optimal root basis (over the cut-grown session), handed to the
    /// dives and the tree search so the root relaxation is never solved
    /// again from scratch.
    ///
    /// `Err(())` reports that the cut-strengthened root LP is infeasible:
    /// since both cut families preserve every integer-feasible point,
    /// that proves the model has no integer solution.
    fn root_cuts(
        &mut self,
        root_bounds: &[(f64, f64)],
        cliques: &[Vec<VarId>],
    ) -> Result<(CutSummary, Option<Basis>), ()> {
        let mut summary = CutSummary::default();
        if self.cfg.cut_rounds == 0 || self.out_of_budget() {
            return Ok((summary, None));
        }
        let mut separator = CutSeparator::new(self.model, cliques);
        if separator.is_empty() {
            return Ok((summary, None));
        }
        let root_start = self.clock.ticks();
        let out = self.solve_lp(root_bounds, None);
        self.emit_span(
            SpanKind::RootLp,
            root_start,
            out.result.iterations,
            out.result.objective,
        );
        if out.result.status != LpStatus::Optimal {
            return Ok((summary, None));
        }
        let mut basis = out.basis;
        let mut values = out.result.values;
        summary.root_bound_before = out.result.objective;
        summary.root_bound_after = out.result.objective;
        // No-gap guard: cuts only ever tighten the *bound*, so once the
        // root bound already prunes against the incumbent/integral cutoff
        // (a warm-started heuristic or an external hint may have closed
        // the gap before the cut loop runs) there is nothing left for
        // them to close — skip separation entirely and keep the root
        // basis for the dives.
        if summary.root_bound_before >= self.cutoff() {
            return Ok((summary, basis));
        }
        // Per-round re-solve budget, sized off the root solve's actual
        // cost (see [`SolverConfig::CUT_ROUND_TICK_FACTOR`]): a blown
        // budget surfaces as `IterLimit` and abandons cutting below.
        let round_budget = out
            .result
            .work_ticks
            .saturating_mul(SolverConfig::CUT_ROUND_TICK_FACTOR)
            .max(SolverConfig::CUT_ROUND_TICK_FLOOR);
        // Stall guard: on a degenerate root with alternate optima the
        // separator can keep finding violated-but-useless cuts forever;
        // two consecutive rounds without bound movement end the loop.
        let mut stalled = 0u32;
        // The caller re-sets the phase after the cut loop either way, so
        // the previous phase need not be restored on the early exits.
        let _ = self.set_phase(Phase::Cuts);
        for _ in 0..self.cfg.cut_rounds {
            if self.out_of_budget() || stalled >= SolverConfig::CUT_STALL_LIMIT {
                break;
            }
            let round_start = self.clock.ticks();
            let cuts = separator.separate(&values, SolverConfig::MAX_CUTS_PER_ROUND);
            if cuts.is_empty() {
                break;
            }
            let rows: Vec<(String, Comparison)> = cuts.into_iter().map(Cut::into_row).collect();
            let added = self.session.add_rows(rows, basis.as_ref());
            self.clock.charge(added.work_ticks);
            self.phases.add(Phase::Cuts, added.work_ticks, 0);
            summary.cuts_added += added.added;
            let appended = added.added as u64;
            let out = self.solve_lp_budgeted(root_bounds, added.basis.as_ref(), round_budget);
            self.emit_span(
                SpanKind::CutRound,
                round_start,
                appended,
                out.result.objective,
            );
            match out.result.status {
                LpStatus::Optimal => {}
                LpStatus::Infeasible => return Err(()),
                LpStatus::Unbounded | LpStatus::IterLimit => {
                    // The reoptimisation blew its round tick budget or
                    // its LP iteration slice —
                    // massive dual degeneracy can make even valid cuts
                    // uneconomical. Sessions are grow-only, so drop
                    // *every* cut by reopening on the base model; the
                    // search then runs exactly as without a cut loop,
                    // and the summary reports what the search actually
                    // has (no cuts, the original root bound) rather
                    // than what was tried and dropped.
                    self.session = LpSession::open(self.model, self.cfg.lp);
                    summary = CutSummary {
                        abandoned: true,
                        root_bound_before: summary.root_bound_before,
                        root_bound_after: summary.root_bound_before,
                        ..CutSummary::default()
                    };
                    return Ok((summary, None));
                }
            }
            summary.rounds += 1;
            if out.result.objective < summary.root_bound_after - tol::FEAS {
                summary.bound_monotone = false;
            }
            if out.result.objective > summary.root_bound_after + tol::OBJ_AGREE {
                stalled = 0;
            } else {
                stalled += 1;
            }
            summary.root_bound_after = summary.root_bound_after.max(out.result.objective);
            basis = out.basis;
            values = out.result.values;
        }
        self.nnz = self.session.model().csc().nnz();
        Ok((summary, basis))
    }

    /// Highest branching priority among fractional binaries, if any.
    fn top_fractional_priority(&self, values: &[f64]) -> Option<i32> {
        self.model
            .binary_vars()
            .filter(|v| {
                let x = values[v.index()];
                (x - x.round()).abs() > INT_TOL
            })
            .map(|v| self.priorities[v.index()])
            .max()
    }

    pub(crate) fn out_of_budget(&self) -> bool {
        self.clock.seconds() >= self.det_limit
            || self.nodes >= self.cfg.node_limit
            || self.shared.is_some_and(Exchange::exhausted)
    }

    /// Deterministic seconds left before the local deadline (and, for
    /// free-running workers, before the exchange's global budget).
    fn remaining_budget(&self) -> f64 {
        let local = (self.det_limit - self.clock.seconds()).max(0.0);
        match self.shared {
            None => local,
            Some(x) => local.min(x.remaining()),
        }
    }

    /// LP configuration whose iteration cap cannot blow the remaining
    /// deterministic budget: the cap is `remaining_ticks / pivot_cost`
    /// for a worst-case per-pivot cost (with a small floor so tiny
    /// subproblems always make progress).
    fn lp_config(&self) -> LpConfig {
        let remaining = self.remaining_budget();
        // Size against the session's view: cut rows count like any other.
        let m = self.session.model().num_constraints().max(1);
        let n_total = self.model.num_vars() + m;
        // Size by the *most expensive* engine so none can overshoot the
        // budget. Explicit-inverse revised pivots cost ≈ m² + nnz + n
        // ticks; sparse-LU pivots are usually far cheaper, but in the
        // dense-fill worst case their eta-file solves reach a small
        // multiple of the LU fill (≤ m²) per pivot and the periodic
        // refactorisation amortises to ≤ m³/interval per pivot, so both
        // terms are budgeted explicitly. Dense-fallback pivots are
        // ≈ 2·m·n_cols (n_cols ≤ n + 2m with slacks + artificials).
        let interval = (self.cfg.lp.refactor_interval as usize).max(1);
        let lu_pivot = 12 * m * m + m * m * m / interval + self.nnz + n_total;
        let revised_pivot = m * m + self.nnz + n_total;
        let dense_pivot = 2 * m * (n_total + m);
        let worst = lu_pivot.max(revised_pivot).max(dense_pivot);
        let per_pivot = DeterministicClock::ticks_to_seconds(worst as u64);
        let iters = (remaining / per_pivot.max(tol::ZERO)) as u64;
        LpConfig {
            max_iterations: iters.clamp(64, self.cfg.lp.max_iterations),
            // The cold-start anti-degeneracy perturbation derives from the
            // solver seed so whole solves stay reproducible.
            perturb_seed: self.cfg.seed,
            ..self.cfg.lp
        }
    }

    /// Objective value any new incumbent must beat: the best of the local
    /// incumbent, the external hint and (for free-running workers) the
    /// exchange's atomic global incumbent, read on every node.
    pub(crate) fn cutoff(&self) -> f64 {
        let mut obj = self
            .incumbent
            .as_ref()
            .map_or(f64::INFINITY, |s| s.objective());
        obj = obj.min(self.cutoff_hint);
        if let Some(x) = self.shared {
            obj = obj.min(x.best_objective());
        }
        if obj == f64::INFINITY {
            return f64::INFINITY;
        }
        if self.integral_objective {
            obj - 1.0 + tol::INT_FEAS
        } else {
            obj - tol::OBJ_AGREE
        }
    }

    pub(crate) fn try_accept(
        &mut self,
        values: Vec<f64>,
        callback: &mut dyn FnMut(&IncumbentEvent),
    ) -> bool {
        // Round binaries defensively before the feasibility check.
        let mut values = values;
        for v in self.model.binary_vars() {
            let x = values[v.index()];
            values[v.index()] = x.round().clamp(0.0, 1.0);
        }
        if !self.model.is_feasible(&values, FEAS_TOL) {
            return false;
        }
        let obj = self.model.objective_value(&values);
        if self
            .incumbent
            .as_ref()
            .is_some_and(|s| obj >= s.objective() - tol::OBJ_AGREE)
        {
            return false;
        }
        if let Some(x) = self.shared {
            // The exchange is the authority on acceptance: it re-checks
            // against the *global* incumbent under the lock and stamps
            // the event with the aggregate clock. The worker-local event
            // list stays empty — the global stream is the record.
            match x.publish(values, obj) {
                Some(sol) => {
                    self.incumbent = Some(sol);
                    true
                }
                None => false,
            }
        } else {
            let sol = Arc::new(Solution::new(values, obj));
            let event = IncumbentEvent {
                objective: obj,
                det_time: self.clock.seconds(),
                solution: Solution::clone(&sol),
            };
            callback(&event);
            self.events.push(event);
            self.incumbent = Some(sol);
            true
        }
    }

    /// LP-guided dive: repeatedly fix the most integral fractional binary
    /// to its rounded value until the relaxation is integral or infeasible.
    fn dive(
        &mut self,
        base_bounds: &[(f64, f64)],
        deadline: f64,
        root_warm: Option<&Basis>,
        callback: &mut dyn FnMut(&IncumbentEvent),
    ) -> bool {
        let mut bounds = base_bounds.to_vec();
        // Each round differs from the last by a few bound fixings, so the
        // previous optimal basis is the natural warm start; the first
        // round starts from the root basis the cut loop left behind.
        let mut warm: Option<Basis> = root_warm.cloned();
        for _ in 0..self.model.num_vars() + 1 {
            if self.out_of_budget() || self.clock.seconds() >= deadline {
                return false;
            }
            let out = self.solve_lp(&bounds, warm.as_ref());
            let lp = out.result;
            warm = out.basis;
            if lp.status != LpStatus::Optimal {
                return false;
            }
            if lp.objective >= self.cutoff() {
                return false;
            }
            // Batch-fix every near-integral binary at once, then the single
            // most integral fractional one; one LP per round instead of one
            // LP per variable.
            let mut fractional = Vec::new();
            for v in self.model.binary_vars() {
                let x = lp.values[v.index()];
                let frac = (x - x.round()).abs();
                let (l, u) = bounds[v.index()];
                if (u - l).abs() < tol::ZERO {
                    continue; // already fixed
                }
                if frac <= 0.02 {
                    let r = x.round().clamp(0.0, 1.0);
                    bounds[v.index()] = (r, r);
                } else {
                    fractional.push((v, x, frac));
                }
            }
            match fractional.iter().min_by(|a, b| a.2.total_cmp(&b.2)) {
                None => {
                    return self.try_accept(lp.values, callback);
                }
                Some(&(v, x, _)) => {
                    let r = x.round().clamp(0.0, 1.0);
                    bounds[v.index()] = (r, r);
                }
            }
        }
        false
    }

    /// Assignment dive: repeatedly drive the *largest* fractional binary to
    /// 1 (backtracking to 0 when that turns infeasible). Far more robust
    /// than batch rounding on partition-structured models, where every
    /// neuron must pick exactly one slot.
    fn dive_assign(
        &mut self,
        base_bounds: &[(f64, f64)],
        root_warm: Option<&Basis>,
        callback: &mut dyn FnMut(&IncumbentEvent),
    ) -> bool {
        let mut bounds = base_bounds.to_vec();
        let out = self.solve_lp(&bounds, root_warm);
        let mut lp = out.result;
        let mut warm = out.basis;
        if lp.status != LpStatus::Optimal || lp.objective >= self.cutoff() {
            return false;
        }
        for _ in 0..2 * self.model.num_vars() {
            if self.out_of_budget() {
                return false;
            }
            // Largest fractional binary in the top priority class.
            let top = self.top_fractional_priority(&lp.values);
            let mut pick: Option<(VarId, f64)> = None;
            for v in self.model.binary_vars() {
                if Some(self.priorities[v.index()]) != top {
                    continue;
                }
                let x = lp.values[v.index()];
                let frac = (x - x.round()).abs();
                if frac > INT_TOL && pick.is_none_or(|(_, best)| x > best) {
                    pick = Some((v, x));
                }
            }
            let Some((v, _)) = pick else {
                return self.try_accept(lp.values, callback);
            };
            bounds[v.index()] = (1.0, 1.0);
            let out = self.solve_lp(&bounds, warm.as_ref());
            let trial = out.result;
            if trial.status == LpStatus::Optimal && trial.objective < self.cutoff() {
                lp = trial;
                warm = out.basis;
                continue;
            }
            // Backtrack: force the variable off instead.
            bounds[v.index()] = (0.0, 0.0);
            let out = self.solve_lp(&bounds, warm.as_ref());
            let trial = out.result;
            if trial.status == LpStatus::Optimal && trial.objective < self.cutoff() {
                lp = trial;
                warm = out.basis;
            } else {
                return false;
            }
        }
        false
    }

    /// Chooses the branching variable among fractional binaries of the
    /// highest priority class.
    fn choose_branch(&self, values: &[f64]) -> Option<(VarId, f64)> {
        let top = self.top_fractional_priority(values);
        let mut best: Option<(VarId, f64, f64)> = None;
        for v in self.model.binary_vars() {
            if Some(self.priorities[v.index()]) != top {
                continue;
            }
            let x = values[v.index()];
            let frac = x - x.floor();
            if !(INT_TOL..=1.0 - INT_TOL).contains(&frac) {
                continue;
            }
            let score = match self.cfg.branch_rule {
                BranchRule::MostFractional => 0.5 - (frac - 0.5).abs(),
                BranchRule::PseudoCost => {
                    let (up_sum, up_n) = self.pseudo_up[v.index()];
                    let (dn_sum, dn_n) = self.pseudo_down[v.index()];
                    if up_n == 0 || dn_n == 0 {
                        // Uninitialised: fall back to fractionality.
                        0.5 - (frac - 0.5).abs()
                    } else {
                        let up = (up_sum / f64::from(up_n)) * (1.0 - frac);
                        let dn = (dn_sum / f64::from(dn_n)) * frac;
                        up.max(tol::PSEUDOCOST_FLOOR) * dn.max(tol::PSEUDOCOST_FLOOR)
                    }
                }
            };
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((v, x, score));
            }
        }
        best.map(|(v, x, _)| (v, x))
    }

    fn record_pseudo_cost(&mut self, var: VarId, frac: f64, up: bool, gain: f64) {
        let slot = if up {
            &mut self.pseudo_up[var.index()]
        } else {
            &mut self.pseudo_down[var.index()]
        };
        let denom = if up { 1.0 - frac } else { frac };
        if denom > tol::PSEUDOCOST_FLOOR && gain.is_finite() {
            slot.0 += (gain / denom).max(0.0);
            slot.1 += 1;
        }
    }

    /// Large-neighbourhood search: release a random subset of binaries and
    /// re-optimise the rest around the incumbent. The incumbent is held by
    /// [`Arc`], so this clone is a reference bump, not a deep copy.
    pub(crate) fn lns_round(
        &mut self,
        base_bounds: &[(f64, f64)],
        callback: &mut dyn FnMut(&IncumbentEvent),
    ) {
        let Some(incumbent) = self.incumbent.clone() else {
            return;
        };
        let binaries: Vec<VarId> = self.model.binary_vars().collect();
        if binaries.is_empty() {
            return;
        }
        let mut released = binaries.clone();
        released.shuffle(&mut self.rng);
        let keep = ((1.0 - self.cfg.lns_destroy_fraction) * binaries.len() as f64) as usize;
        let frozen = &released[..keep.min(released.len())];

        let mut bounds = base_bounds.to_vec();
        for &v in frozen {
            let x = incumbent.value(v).round().clamp(0.0, 1.0);
            // Respect node bounds: only freeze if compatible.
            let (l, u) = bounds[v.index()];
            if x >= l - FEAS_TOL && x <= u + FEAS_TOL {
                bounds[v.index()] = (x, x);
            }
        }
        // Mini branch-and-bound on the restricted problem.
        let budget = self.remaining_budget();
        let mini_budget = (budget * 0.2).min(2.0);
        // The mini search runs entirely inside the LNS phase (its node
        // expansions are neighbourhood repair, not tree progress).
        let prev_phase = self.set_phase(Phase::Lns);
        let start = self.clock.ticks();
        self.branch_and_bound(&bounds, 256, mini_budget, None, callback);
        let after = self.incumbent.as_ref().map_or(f64::NAN, |s| s.objective());
        let improved = after < incumbent.objective() - tol::OBJ_AGREE;
        self.emit_span(SpanKind::LnsRound, start, u64::from(improved), after);
        self.set_phase(prev_phase);
    }

    /// Expands one branch-and-bound node: solve the relaxation at
    /// `bounds` (warm-starting from `warm`), account the node, classify
    /// the outcome and — on a fractional optimum — pick the branching
    /// variable. `edge` is the branching decision that created this node
    /// (variable, up-branch?, parent bound), feeding pseudo-costs; the
    /// root passes `None`. `inherited` is the bound the node carried when
    /// queued, returned as the conservative subtree bound when the LP
    /// blows its iteration slice.
    ///
    /// Every tree driver — the sequential heap, the work-stealing deques
    /// and the deterministic epoch batches — runs nodes through this one
    /// method, so the per-node operation order is identical everywhere.
    pub(crate) fn expand_node(
        &mut self,
        bounds: &[(f64, f64)],
        warm: Option<&Basis>,
        edge: Option<(VarId, bool, f64)>,
        inherited: f64,
    ) -> NodeExpansion {
        let start = self.clock.ticks();
        let out = self.solve_lp(bounds, warm);
        let lp = out.result;
        self.nodes += 1;
        if let Some(x) = self.shared {
            x.count_node();
        }
        if self.trace.is_some() {
            let value = if lp.status == LpStatus::Optimal {
                lp.objective
            } else {
                f64::NAN
            };
            self.emit_span(SpanKind::NodeExpand, start, lp.iterations, value);
        }
        match lp.status {
            LpStatus::Infeasible => return NodeExpansion::Infeasible,
            LpStatus::Unbounded => {
                // A bounded-binary model cannot be unbounded unless it
                // has unbounded continuous vars; treat as no information.
                return NodeExpansion::NoInfo;
            }
            LpStatus::IterLimit => {
                // No valid bound; keep the subtree conservatively open.
                return NodeExpansion::Dropped(inherited.max(f64::NEG_INFINITY));
            }
            LpStatus::Optimal => {}
        }
        let node_bound = lp.objective;
        if node_bound >= self.cutoff() {
            return NodeExpansion::CutOff;
        }
        // Update parent pseudo costs from the realised bound change.
        if let Some((var, up, parent_bound)) = edge {
            if parent_bound.is_finite() {
                let gain = (node_bound - parent_bound).max(0.0);
                // The fraction at branching is unknown here; approximate
                // with 0.5 which keeps scores comparable.
                self.record_pseudo_cost(var, 0.5, up, gain);
            }
        }
        match self.choose_branch(&lp.values) {
            None => NodeExpansion::Integral {
                values: lp.values,
                bound: node_bound,
            },
            Some((v, _x)) => NodeExpansion::Branch {
                var: v,
                bound: node_bound,
                basis: out.basis,
            },
        }
    }

    /// Core branch-and-bound over the given root bounds. Returns the best
    /// proven bound for that subtree.
    #[allow(clippy::too_many_lines)]
    fn branch_and_bound(
        &mut self,
        root_bounds: &[(f64, f64)],
        node_cap: u64,
        det_budget: f64,
        root_warm: Option<Rc<Basis>>,
        callback: &mut dyn FnMut(&IncumbentEvent),
    ) -> f64 {
        let start_time = self.clock.seconds();
        let deadline = (start_time + det_budget).min(self.det_limit);
        let mut arena: Vec<Node> = vec![Node {
            parent: usize::MAX,
            var: 0,
            lower: 0.0,
            upper: 0.0,
            bound: f64::NEG_INFINITY,
            depth: 0,
            warm: root_warm,
        }];
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(OpenNode {
            bound: f64::NEG_INFINITY,
            seq,
            node: 0,
        });
        let mut local_nodes = 0u64;
        let mut subtree_bound = f64::INFINITY; // min over pruned-open bounds
        let mut bounds_buf = root_bounds.to_vec();

        while let Some(open) = heap.pop() {
            if self.clock.seconds() >= deadline || local_nodes >= node_cap || self.out_of_budget() {
                // Remaining open nodes bound the subtree.
                subtree_bound = subtree_bound.min(open.bound);
                for rest in heap {
                    subtree_bound = subtree_bound.min(rest.bound);
                }
                return subtree_bound;
            }
            // Release this node's warm snapshot from the arena: each node
            // is popped at most once, so holding the Rc any longer only
            // delays freeing O(n + m) memory per expanded node.
            let warm = arena[open.node].warm.take();
            if open.bound >= self.cutoff() {
                continue; // pruned by a newer incumbent
            }
            // Reconstruct bounds along the ancestor chain.
            bounds_buf.copy_from_slice(root_bounds);
            {
                let mut at = open.node;
                while at != usize::MAX {
                    let n = &arena[at];
                    if n.parent != usize::MAX {
                        let (l, u) = bounds_buf[n.var as usize];
                        bounds_buf[n.var as usize] = (l.max(n.lower), u.min(n.upper));
                    }
                    at = n.parent;
                }
            }
            let edge = if open.node == 0 {
                None
            } else {
                let n = &arena[open.node];
                Some((VarId(n.var), n.lower > 0.5, n.bound))
            };
            local_nodes += 1;
            // Periodic progress table for the sequential main tree (the
            // LNS mini searches run under Phase::Lns and stay silent;
            // parallel runs report from the coordinator instead).
            if self.phase == Phase::Tree
                && local_nodes.is_multiple_of(SolverConfig::PROGRESS_NODE_INTERVAL)
            {
                self.emit_progress(heap.len() as u64 + 1, open.bound);
            }
            match self.expand_node(&bounds_buf, warm.as_deref(), edge, open.bound) {
                NodeExpansion::Infeasible | NodeExpansion::CutOff => {}
                NodeExpansion::NoInfo => subtree_bound = f64::NEG_INFINITY,
                NodeExpansion::Dropped(bound) => {
                    subtree_bound = subtree_bound.min(bound);
                }
                NodeExpansion::Integral { values, bound } => {
                    // Integral relaxation: candidate incumbent.
                    self.try_accept(values, callback);
                    subtree_bound = subtree_bound.min(bound);
                }
                NodeExpansion::Branch { var, bound, basis } => {
                    let snapshot = basis.map(Rc::new);
                    for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
                        arena.push(Node {
                            parent: open.node,
                            var: var.0,
                            lower: lo,
                            upper: hi,
                            bound,
                            depth: arena[open.node].depth + 1,
                            warm: snapshot.clone(),
                        });
                        seq += 1;
                        heap.push(OpenNode {
                            bound,
                            seq,
                            node: arena.len() - 1,
                        });
                    }
                }
            }
        }
        // Tree exhausted: the subtree bound is the incumbent (or +inf).
        subtree_bound.min(
            self.incumbent
                .as_ref()
                .map_or(f64::INFINITY, |s| s.objective()),
        )
    }
}

/// What expanding one branch-and-bound node produced
/// ([`Search::expand_node`]). The tree drivers layer bookkeeping —
/// pruning, child creation, bound accounting — on top of this.
pub(crate) enum NodeExpansion {
    /// The relaxation is infeasible: the subtree is exhausted.
    Infeasible,
    /// The LP blew its iteration slice: no valid bound; the carried value
    /// is the node's inherited bound, kept conservatively open.
    Dropped(f64),
    /// Unbounded relaxation: no bound information at all.
    NoInfo,
    /// The node's relaxation meets the incumbent cutoff: pruned.
    CutOff,
    /// Integral relaxation: a candidate incumbent at `bound`.
    Integral {
        /// The integral relaxation values.
        values: Vec<f64>,
        /// The node's LP bound (the candidate objective).
        bound: f64,
    },
    /// Fractional optimum: branch on `var`, both children inheriting
    /// `bound` and warm-starting from `basis`.
    Branch {
        /// The branching variable.
        var: VarId,
        /// The node's LP bound, inherited by both children.
        bound: f64,
        /// The node's optimal basis (the children's warm start).
        basis: Option<Basis>,
    },
}

impl Solver {
    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn new(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// The solver's configuration.
    #[must_use]
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Phase breakdown for the presolve short circuits (no `Search` ever
    /// existed: all ticks are presolve's), delivering the trace — one
    /// `PresolvePass` span plus the final breakdown — when a sink is
    /// configured.
    fn short_circuit_phases(&self, stats: &PresolveStats) -> PhaseBreakdown {
        let mut phases = PhaseBreakdown::default();
        phases.add(Phase::Presolve, stats.work_ticks, u64::from(stats.rounds));
        phases.finalize(stats.work_ticks);
        if let Some(handle) = self.config.trace.as_ref() {
            let mut buf = TraceBuf::new(0);
            buf.emit(
                SpanKind::PresolvePass,
                0,
                stats.work_ticks,
                u64::from(stats.rounds),
                f64::NAN,
            );
            handle.record_all(&buf.events);
            handle.finish(&phases);
        }
        phases
    }

    /// Solves `model` to the configured budget.
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation; call
    /// [`Model::validate`] first for a recoverable error.
    #[must_use]
    pub fn solve(&self, model: &Model) -> SolveResult {
        self.solve_with_callback(model, None, |_| {})
    }

    /// Solves with an optional warm-start assignment.
    #[must_use]
    pub fn solve_with_warm_start(&self, model: &Model, warm: &[f64]) -> SolveResult {
        self.solve_with_callback(model, Some(warm), |_| {})
    }

    /// Solves, invoking `callback` for every improving incumbent as it is
    /// discovered (the paper's "intermediate solutions" stream).
    ///
    /// With presolve enabled (the default), the model is reduced once
    /// here, the whole search runs on the reduced model, and every
    /// incumbent — including those delivered through `callback` — is
    /// mapped back to the original variable space via the recorded
    /// postsolve stack. Objectives and bounds need no translation: the
    /// reduced objective carries the substituted constant offset.
    #[must_use]
    pub fn solve_with_callback(
        &self,
        model: &Model,
        warm: Option<&[f64]>,
        mut callback: impl FnMut(&IncumbentEvent),
    ) -> SolveResult {
        if let Err(e) = model.validate() {
            // Documented API contract (see `solve`): solving an invalid
            // model has no defined result, so fail loudly naming the
            // concrete defect instead of a bare unwrap.
            panic!("solve called with an invalid model: {e}");
        }
        if !self.config.presolve.enabled {
            return self.run_search(model, warm, &mut callback, PresolveStats::default(), &[]);
        }
        // The short-circuit exits below happen *before* the first LP
        // relaxation — no `Search` (owner of the real `lp_fallbacks`
        // counter) exists yet, so a dense fallback is impossible there;
        // every path that runs LPs reports through `run_search`.
        let pre_search_fallbacks = 0u64;
        let presolved = match presolve(model, &self.config.presolve) {
            PresolveOutcome::Infeasible(stats) => {
                return SolveResult {
                    status: SolveStatus::Infeasible,
                    best: None,
                    best_bound: f64::NEG_INFINITY,
                    det_time: DeterministicClock::ticks_to_seconds(stats.work_ticks),
                    nodes: 0,
                    incumbents: Vec::new(),
                    presolve: stats,
                    lp_fallbacks: pre_search_fallbacks,
                    cuts: CutSummary::default(),
                    factor: FactorStats::default(),
                    parallel: None,
                    phases: self.short_circuit_phases(&stats),
                };
            }
            PresolveOutcome::Reduced(p) => p,
        };
        let det_time = DeterministicClock::ticks_to_seconds(presolved.stats.work_ticks);
        if presolved.model.num_vars() == 0 {
            // The reductions solved the model outright: the postsolve
            // stack *is* the solution.
            let values = presolved.postsolve.restore(&[]);
            if !model.is_feasible(&values, FEAS_TOL) {
                // Defensive: a reduction chain this aggressive should
                // never fabricate an assignment, but never report one
                // unverified.
                return SolveResult {
                    status: SolveStatus::Unknown,
                    best: None,
                    best_bound: f64::NEG_INFINITY,
                    det_time,
                    nodes: 0,
                    incumbents: Vec::new(),
                    presolve: presolved.stats,
                    lp_fallbacks: pre_search_fallbacks,
                    cuts: CutSummary::default(),
                    factor: FactorStats::default(),
                    parallel: None,
                    phases: self.short_circuit_phases(&presolved.stats),
                };
            }
            let objective = model.objective_value(&values);
            let solution = Solution::new(values, objective);
            let event = IncumbentEvent {
                objective,
                det_time,
                solution: solution.clone(),
            };
            callback(&event);
            return SolveResult {
                status: SolveStatus::Optimal,
                best: Some(solution),
                best_bound: objective,
                det_time,
                nodes: 0,
                incumbents: vec![event],
                presolve: presolved.stats,
                lp_fallbacks: pre_search_fallbacks,
                cuts: CutSummary::default(),
                factor: FactorStats::default(),
                parallel: None,
                phases: self.short_circuit_phases(&presolved.stats),
            };
        }
        let warm_reduced = warm.map(|w| presolved.postsolve.project(w));
        let mut forward = |event: &IncumbentEvent| {
            callback(&presolved.postsolve.restore_event(event));
        };
        let mut result = self.run_search(
            &presolved.model,
            warm_reduced.as_deref(),
            &mut forward,
            presolved.stats,
            &presolved.cliques,
        );
        result.best = result
            .best
            .map(|s| Solution::new(presolved.postsolve.restore(s.values()), s.objective()));
        result.incumbents = result
            .incumbents
            .iter()
            .map(|ev| presolved.postsolve.restore_event(ev))
            .collect();
        result
    }

    /// Branch-and-bound over `model` as given (already presolved, or
    /// presolve disabled). Incumbents stay in `model`'s variable space;
    /// the caller postsolves if needed.
    fn run_search(
        &self,
        model: &Model,
        warm: Option<&[f64]>,
        mut callback: &mut dyn FnMut(&IncumbentEvent),
        presolve_stats: PresolveStats,
        cliques: &[Vec<VarId>],
    ) -> SolveResult {
        let mut search = Search::new(model, &self.config);
        search.clock.charge(presolve_stats.work_ticks);
        search.phases.add(
            Phase::Presolve,
            presolve_stats.work_ticks,
            u64::from(presolve_stats.rounds),
        );
        if presolve_stats.work_ticks > 0 {
            search.emit_span(
                SpanKind::PresolvePass,
                0,
                u64::from(presolve_stats.rounds),
                f64::NAN,
            );
        }
        let root_bounds: Vec<(f64, f64)> = model
            .variables()
            .iter()
            .map(|v| match v.ty {
                VarType::Binary => (v.lower.max(0.0), v.upper.min(1.0)),
                VarType::Continuous => (v.lower, v.upper),
            })
            .collect();

        // 1. Warm start.
        if let Some(w) = warm {
            search.try_accept(w.to_vec(), &mut callback);
        }

        // 1b. Root cutting planes: tighten the session's relaxation once,
        //     before any dive or branch runs on it. An infeasible
        //     cut-strengthened root (with no incumbent in hand) proves the
        //     model integer-infeasible — cuts never remove integer points.
        //     The loop's final root basis seeds the dives and the tree
        //     search, so the root relaxation is never re-solved cold.
        search.set_phase(Phase::RootLp);
        let (cut_summary, root_warm) = match search.root_cuts(&root_bounds, cliques) {
            Ok(out) => out,
            Err(()) => {
                if search.incumbent.is_none() {
                    let phases = search.finish_trace();
                    return SolveResult {
                        status: SolveStatus::Infeasible,
                        best: None,
                        best_bound: f64::NEG_INFINITY,
                        det_time: search.clock.seconds(),
                        nodes: search.nodes,
                        incumbents: search.events,
                        presolve: presolve_stats,
                        lp_fallbacks: search.lp_fallbacks,
                        cuts: CutSummary::default(),
                        factor: search.factor,
                        parallel: None,
                        phases,
                    };
                }
                (CutSummary::default(), None)
            }
        };

        // 2. Root dives for a first incumbent: fast batch rounding on a
        //    quarter of the budget, then the more robust assignment dive.
        search.set_phase(Phase::Dive);
        if search.incumbent.is_none() {
            let deadline = search.clock.seconds() + 0.25 * self.config.det_time_limit;
            let start = search.clock.ticks();
            let found = search.dive(&root_bounds, deadline, root_warm.as_ref(), &mut callback);
            let value = search
                .incumbent
                .as_ref()
                .map_or(f64::NAN, |s| s.objective());
            search.emit_span(SpanKind::Dive, start, u64::from(found), value);
        }
        if search.incumbent.is_none() {
            let start = search.clock.ticks();
            let found = search.dive_assign(&root_bounds, root_warm.as_ref(), &mut callback);
            let value = search
                .incumbent
                .as_ref()
                .map_or(f64::NAN, |s| s.objective());
            search.emit_span(SpanKind::Dive, start, u64::from(found), value);
        }

        // 3. Main tree search with periodic LNS: sequential heap at
        //    `threads = 1` (the historical path, bit-identical), the
        //    parallel driver otherwise.
        let mut proved = f64::NEG_INFINITY;
        let mut infeasible_proved = false;
        let mut parallel_stats = None;
        let parallel_tree = self.config.threads > 1;
        search.set_phase(Phase::Tree);
        {
            let remaining = self.config.det_time_limit - search.clock.seconds();
            if remaining > 0.0 {
                let bound = if parallel_tree {
                    let outcome = parallel::run_tree(
                        &mut search,
                        &root_bounds,
                        root_warm.as_ref(),
                        &mut callback,
                    );
                    parallel_stats = Some(outcome.stats);
                    outcome.bound
                } else {
                    search.branch_and_bound(
                        &root_bounds,
                        self.config.node_limit,
                        remaining,
                        root_warm.map(Rc::new),
                        &mut callback,
                    )
                };
                proved = proved.max(bound.min(f64::INFINITY));
                if bound == f64::INFINITY && search.incumbent.is_none() {
                    infeasible_proved = true;
                }
            }
        }
        // 4. LNS polishing while budget remains. In parallel runs the
        //    heuristic workers already raced LNS against the tree, so the
        //    sequential polish loop only runs on the `threads = 1` path.
        if self.config.enable_lns && !parallel_tree {
            let mut stale_rounds = 0u32;
            while !search.out_of_budget() && search.incumbent.is_some() && stale_rounds < 8 {
                let before = search.incumbent.as_ref().map(|s| s.objective());
                search.lns_round(&root_bounds, &mut callback);
                let after = search.incumbent.as_ref().map(|s| s.objective());
                if after >= before {
                    stale_rounds += 1;
                } else {
                    stale_rounds = 0;
                }
                // LNS rounds always consume clock; guard against zero-cost loops.
                search.clock.charge(1_000);
                search.phases.add(Phase::Lns, 1_000, 0);
            }
        }

        let phases = search.finish_trace();
        let det_time = search.clock.seconds();
        let nodes = search.nodes;
        let best = search.incumbent.as_deref().cloned();
        let status = match (&best, infeasible_proved) {
            (None, true) => SolveStatus::Infeasible,
            (None, false) => SolveStatus::Unknown,
            (Some(sol), _) => {
                let gap_closed = proved.is_finite()
                    && (sol.objective() - proved).abs()
                        <= self.config.gap_tolerance * sol.objective().abs().max(1.0);
                let exhausted = proved >= sol.objective() - tol::OBJ_AGREE;
                if gap_closed || exhausted {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                }
            }
        };
        SolveResult {
            status,
            best,
            best_bound: if proved.is_finite() {
                proved
            } else {
                f64::NEG_INFINITY
            },
            det_time,
            nodes,
            incumbents: search.events,
            presolve: presolve_stats,
            lp_fallbacks: search.lp_fallbacks,
            cuts: cut_summary,
            factor: search.factor,
            parallel: parallel_stats,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn quick_config() -> SolverConfig {
        SolverConfig {
            det_time_limit: 5.0,
            ..SolverConfig::default()
        }
    }

    /// The presolve short-circuit exits (model solved outright, or proved
    /// infeasible, before any LP relaxation runs) must report a zero
    /// dense-fallback count — no `Search` ever exists on those paths, so
    /// a fallback is impossible by construction.
    #[test]
    fn presolve_short_circuits_report_zero_lp_fallbacks() {
        // Fully fixed by singleton equality rows: presolve solves it.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("fx", m.expr([(x, 1.0)]).eq(1.0));
        m.add_constraint("fy", m.expr([(y, 1.0)]).eq(0.0));
        m.set_objective(m.expr([(x, 2.0), (y, 3.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Optimal);
        assert_eq!(r.nodes, 0, "expected the presolve short-circuit");
        assert_eq!(r.lp_fallbacks, 0);

        // Contradictory singleton rows: presolve proves infeasibility.
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint("on", m.expr([(x, 1.0)]).eq(1.0));
        m.add_constraint("off", m.expr([(x, 1.0)]).eq(0.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Infeasible);
        assert_eq!(r.nodes, 0);
        assert_eq!(r.lp_fallbacks, 0);
    }

    /// The three public entry points (`solve`, `solve_with_callback`,
    /// `solve_with_warm_start`) must run the exact same session path: a
    /// rejected warm start and a no-op callback may not perturb a single
    /// pivot. Deterministic ticks equal ⇒ pivot sequences equal.
    #[test]
    fn entry_points_cannot_drift() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        for i in 0..4 {
            m.add_constraint(
                format!("c{i}"),
                m.expr([(vars[2 * i], 1.0), (vars[2 * i + 1], 1.0)])
                    .geq(1.0),
            );
        }
        m.add_constraint(
            "w",
            m.expr(vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64)))
                .leq(20.0),
        );
        m.set_objective(
            m.expr(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (i % 3 + 1) as f64)),
            ),
        );
        let solver = Solver::new(quick_config());
        let plain = solver.solve(&m);
        let with_cb = solver.solve_with_callback(&m, None, |_| {});
        // An infeasible warm assignment is rejected before the search, so
        // the third entry point must replay the same solve bit-for-bit.
        let rejected_warm = vec![0.0; 8];
        let warm = solver.solve_with_warm_start(&m, &rejected_warm);
        for other in [&with_cb, &warm] {
            assert_eq!(plain.status, other.status);
            assert_eq!(plain.nodes, other.nodes, "node counts diverged");
            assert_eq!(plain.det_time, other.det_time, "tick streams diverged");
            assert_eq!(
                plain.best.as_ref().map(Solution::objective),
                other.best.as_ref().map(Solution::objective)
            );
            assert_eq!(plain.incumbents.len(), other.incumbents.len());
            assert_eq!(plain.cuts, other.cuts);
        }
    }

    /// Clique cuts must close the odd-cycle packing gap at the root: the
    /// pairwise-packing triangle relaxes to 1.5, the merged clique cut
    /// `a + b + c ≤ 1` closes it to the integer optimum outright.
    #[test]
    fn clique_cuts_close_triangle_root_gap() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("p1", m.expr([(a, 1.0), (b, 1.0)]).leq(1.0));
        m.add_constraint("p2", m.expr([(b, 1.0), (c, 1.0)]).leq(1.0));
        m.add_constraint("p3", m.expr([(a, 1.0), (c, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(a, -1.0), (b, -1.0), (c, -1.0)]));
        // Presolve off isolates the cut loop (no reductions interfering).
        let cfg = quick_config().with_presolve(PresolveConfig::off());
        let r = Solver::new(cfg).solve(&m);
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!((r.best.unwrap().objective() + 1.0).abs() < 1e-6);
        assert!(r.cuts.cuts_added >= 1, "expected a clique cut");
        assert!(r.cuts.bound_monotone);
        assert!(
            r.cuts.root_bound_after > r.cuts.root_bound_before + 0.49,
            "root gap not closed: {} -> {}",
            r.cuts.root_bound_before,
            r.cuts.root_bound_after
        );
        assert_eq!(r.lp_fallbacks, 0, "cut rows must not cause dense fallbacks");
    }

    /// Cuts may never change the optimum, only the route to it.
    #[test]
    fn cuts_preserve_optimal_objectives() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..9).map(|i| m.add_binary(format!("x{i}"))).collect();
        for r in 0..2 {
            let cap = 9.0;
            m.add_constraint(
                format!("r{r}"),
                m.expr(
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| (v, 1.0 + ((i + r) % 4) as f64)),
                )
                .leq(cap),
            );
        }
        m.set_objective(
            m.expr(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, -(1.0 + ((i * 5) % 7) as f64))),
            ),
        );
        let with_cuts = Solver::new(quick_config()).solve(&m);
        let without = Solver::new(quick_config().with_cuts(0)).solve(&m);
        assert_eq!(with_cuts.status, SolveStatus::Optimal);
        assert_eq!(without.status, SolveStatus::Optimal);
        assert!(
            (with_cuts.best.as_ref().unwrap().objective()
                - without.best.as_ref().unwrap().objective())
            .abs()
                < 1e-6
        );
        assert_eq!(without.cuts.cuts_added, 0);
        assert!(with_cuts.cuts.bound_monotone);
    }

    #[test]
    fn trivial_binary_min() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(m.expr([(x, 1.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Optimal);
        assert_eq!(r.best.unwrap().value(x), 0.0);
    }

    #[test]
    fn covering_instance() {
        // Odd-cycle cover needs 2 vertices even though LP says 1.5.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("e1", m.expr([(a, 1.0), (b, 1.0)]).geq(1.0));
        m.add_constraint("e2", m.expr([(b, 1.0), (c, 1.0)]).geq(1.0));
        m.add_constraint("e3", m.expr([(a, 1.0), (c, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(a, 1.0), (b, 1.0), (c, 1.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!((r.best.unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_instance() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 6 → b + c = 20.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("w", m.expr([(a, 3.0), (b, 4.0), (c, 2.0)]).leq(6.0));
        m.set_objective(m.expr([(a, -10.0), (b, -13.0), (c, -7.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Optimal);
        let s = r.best.unwrap();
        assert!((s.objective() + 20.0).abs() < 1e-6, "obj {}", s.objective());
        assert!(s.is_one(b) && s.is_one(c) && !s.is_one(a));
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint("c1", m.expr([(x, 1.0)]).geq(1.0));
        m.add_constraint("c2", m.expr([(x, 1.0)]).leq(0.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        assert_eq!(r.status, SolveStatus::Infeasible);
        assert!(r.best.is_none());
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(x, 5.0), (y, 9.0)]));
        let warm = vec![0.0, 1.0]; // feasible but suboptimal
        let r = Solver::new(quick_config()).solve_with_warm_start(&m, &warm);
        assert_eq!(r.status, SolveStatus::Optimal);
        // First incumbent must be the warm start, later improved.
        assert!((r.incumbents[0].objective - 9.0).abs() < 1e-9);
        assert!((r.best.unwrap().objective() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn incumbent_stream_is_monotone() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        // Partition 12 items into pairs; cover each of 6 "elements" once.
        for e in 0..6 {
            m.add_constraint(
                format!("cover{e}"),
                m.expr([(vars[e], 1.0), (vars[e + 6], 1.0)]).geq(1.0),
            );
        }
        m.set_objective(m.expr(vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64))));
        let r = Solver::new(quick_config()).solve(&m);
        assert!(!r.incumbents.is_empty());
        for w in r.incumbents.windows(2) {
            assert!(w[1].objective < w[0].objective);
            assert!(w[1].det_time >= w[0].det_time);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        for i in 0..5 {
            m.add_constraint(
                format!("c{i}"),
                m.expr([(vars[2 * i], 1.0), (vars[2 * i + 1], 1.0)])
                    .geq(1.0),
            );
        }
        m.set_objective(
            m.expr(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (i % 3 + 1) as f64)),
            ),
        );
        let r1 = Solver::new(quick_config()).solve(&m);
        let r2 = Solver::new(quick_config()).solve(&m);
        assert_eq!(r1.nodes, r2.nodes);
        assert_eq!(r1.det_time, r2.det_time);
        assert_eq!(
            r1.best.as_ref().map(Solution::objective),
            r2.best.as_ref().map(Solution::objective)
        );
    }

    #[test]
    fn equality_partition() {
        // x + y + z = 2 minimising x+2y+3z → x=y=1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0), (z, 1.0)]).eq(2.0));
        m.set_objective(m.expr([(x, 1.0), (y, 2.0), (z, 3.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        let s = r.best.unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-6);
        assert!(s.is_one(x) && s.is_one(y) && !s.is_one(z));
    }

    #[test]
    fn pseudo_cost_rule_solves_too() {
        let cfg = SolverConfig {
            branch_rule: BranchRule::PseudoCost,
            ..quick_config()
        };
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("e1", m.expr([(a, 1.0), (b, 1.0)]).geq(1.0));
        m.add_constraint("e2", m.expr([(b, 1.0), (c, 1.0)]).geq(1.0));
        m.add_constraint("e3", m.expr([(a, 1.0), (c, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(a, 1.0), (b, 1.0), (c, 1.0)]));
        let r = Solver::new(cfg).solve(&m);
        assert!((r.best.unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // Binary gate y pays fixed cost 10 to allow continuous x ≤ 5y.
        // Need x ≥ 3 → y = 1, x = 3, obj = 10 + 3.
        let mut m = Model::new();
        let y = m.add_binary("y");
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_constraint("gate", m.expr([(x, 1.0), (y, -5.0)]).leq(0.0));
        m.add_constraint("demand", m.expr([(x, 1.0)]).geq(3.0));
        m.set_objective(m.expr([(y, 10.0), (x, 1.0)]));
        let r = Solver::new(quick_config()).solve(&m);
        let s = r.best.unwrap();
        assert!(s.is_one(y));
        assert!((s.objective() - 13.0).abs() < 1e-6);
    }
}
