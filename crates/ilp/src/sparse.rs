//! Compressed sparse column (CSC) storage for the constraint matrix.
//!
//! The revised simplex ([`crate::simplex`]) prices candidate columns via
//! sparse dot products instead of materialising the dense `B⁻¹A` tableau.
//! The matrix covers the *structural* columns only — logical (slack)
//! columns are unit vectors and are handled implicitly by the engine.
//!
//! [`crate::Model`] builds its CSC form once on first use and caches it;
//! every branch-and-bound node then shares the same matrix, which is what
//! makes per-node LP solves cheap.

use serde::{Deserialize, Serialize};

/// A sparse `m × n` matrix in compressed sparse column form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    m: usize,
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from per-column `(row, value)` entry lists.
    ///
    /// Duplicate rows within a column are coalesced by summation (dropping
    /// the entry if the sum cancels to zero), and zero values are dropped.
    /// Entries are stored sorted by row within each column.
    #[must_use]
    pub fn from_columns(m: usize, columns: &[Vec<(usize, f64)>]) -> Self {
        let n = columns.len();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for col in columns {
            let mut entries: Vec<(usize, f64)> = col
                .iter()
                .copied()
                .filter(|&(i, v)| {
                    assert!(i < m, "row index out of range");
                    v != 0.0
                })
                .collect();
            entries.sort_unstable_by_key(|&(i, _)| i);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
            for (i, v) in entries {
                match merged.last_mut() {
                    Some((li, lv)) if *li == i => *lv += v,
                    _ => merged.push((i, v)),
                }
            }
            for (i, v) in merged {
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            m,
            n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row_indices, values)` slices of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Non-zero count of column `j`.
    #[must_use]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Sparse dot product `dense · column_j`.
    #[must_use]
    pub fn dot_col(&self, dense: &[f64], j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&i, &v)| dense[i] * v).sum()
    }

    /// Accumulates `out += scale * column_j` into a dense vector.
    pub fn axpy_col(&self, out: &mut [f64], scale: f64, j: usize) {
        if scale == 0.0 {
            return;
        }
        let (rows, vals) = self.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            out[i] += scale * v;
        }
    }

    /// Writes column `j`'s entries into a dense work vector (`out[i] = v`
    /// for each stored `(i, v)`; untouched entries keep their value). The
    /// basis factorisation uses this to stage one column at a time into a
    /// scratch vector it resets itself.
    pub fn scatter_col(&self, out: &mut [f64], j: usize) {
        let (rows, vals) = self.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            out[i] = v;
        }
    }

    /// Grow-only row extension: returns a new matrix with `added` rows
    /// appended below the existing ones (`added[i]` holds row `m + i` as
    /// `(col, value)` entries). The column count is unchanged.
    ///
    /// Because the new row indices are strictly larger than every existing
    /// index, each column's entries stay sorted when the additions are
    /// appended at its end — the whole build is a single `O(nnz + k)`
    /// merge with no re-sorting, which is what makes incremental row
    /// addition on a live [`crate::Model`] cheap. Duplicate columns within
    /// one added row are coalesced by summation, zeros dropped (the same
    /// normalisation as [`CscMatrix::from_columns`]).
    ///
    /// # Panics
    ///
    /// Panics if an added entry's column is out of range.
    #[must_use]
    pub fn append_rows(&self, added: &[Vec<(usize, f64)>]) -> CscMatrix {
        let m_new = self.m + added.len();
        // Per-column additions, normalised per row (sorted by column after
        // the transpose below; entries within one column arrive in row
        // order because `added` is iterated in row order).
        let mut extra: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for (i, row) in added.iter().enumerate() {
            let mut terms: Vec<(usize, f64)> =
                row.iter().copied().filter(|&(_, v)| v != 0.0).collect();
            terms.sort_unstable_by_key(|&(j, _)| j);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
            for (j, v) in terms {
                assert!(j < self.n, "column index out of range");
                match merged.last_mut() {
                    Some((lj, lv)) if *lj == j => *lv += v,
                    _ => merged.push((j, v)),
                }
            }
            for (j, v) in merged {
                if v != 0.0 {
                    extra[j].push((self.m + i, v));
                }
            }
        }
        let extra_nnz: usize = extra.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(self.n + 1);
        let mut row_idx = Vec::with_capacity(self.values.len() + extra_nnz);
        let mut values = Vec::with_capacity(self.values.len() + extra_nnz);
        col_ptr.push(0);
        for j in 0..self.n {
            let (rows, vals) = self.col(j);
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            for &(i, v) in &extra[j] {
                row_idx.push(i);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            m: m_new,
            n: self.n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Builds the row-major ([`RowMajor`]) companion view of this matrix
    /// — a counting sort over the row indices, `O(nnz + m + n)`. Columns
    /// come out ascending within each row because the columns are visited
    /// in order.
    #[must_use]
    pub fn to_row_major(&self) -> RowMajor {
        let mut row_ptr = vec![0usize; self.m + 1];
        for &i in &self.row_idx {
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.m {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; self.values.len()];
        let mut values = vec![0.0f64; self.values.len()];
        for j in 0..self.n {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                let slot = next[i];
                next[i] += 1;
                col_idx[slot] = j;
                values[slot] = v;
            }
        }
        RowMajor {
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Row-major (CSR) companion view of a [`CscMatrix`].
///
/// The revised simplex prices the dual row `ρ = e_r B⁻¹` against the
/// structural columns. Column-wise that is a dense sweep — `αⱼ = ρ·Aⱼ`
/// for every column — but row-wise only the columns adjacent to `ρ`'s
/// non-zero rows can produce a non-zero `αⱼ`, which needs the row
/// adjacency the CSC layout cannot provide. The engine builds this view
/// once per install and rebuilds it after row growth.
#[derive(Debug, Clone, Default)]
pub struct RowMajor {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl RowMajor {
    /// The `(col_indices, values)` slices of row `i` (columns ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Non-zero count of row `i`.
    #[must_use]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CscMatrix::from_columns(2, &[vec![(0, 1.0)], vec![(1, 3.0)], vec![(0, 2.0)]])
    }

    #[test]
    fn shape_and_nnz() {
        let a = sample();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.col_nnz(1), 1);
    }

    #[test]
    fn columns_sorted_and_zero_dropped() {
        let a = CscMatrix::from_columns(3, &[vec![(2, 1.0), (0, 4.0), (1, 0.0)]]);
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[4.0, 1.0]);
    }

    #[test]
    fn dot_and_axpy() {
        let a = sample();
        assert_eq!(a.dot_col(&[10.0, 100.0], 1), 300.0);
        let mut out = vec![0.0; 2];
        a.axpy_col(&mut out, 2.0, 2);
        assert_eq!(out, vec![4.0, 0.0]);
    }

    #[test]
    fn duplicate_entries_coalesce_by_summation() {
        let a = CscMatrix::from_columns(
            3,
            &[vec![(1, 2.0), (0, 1.0), (1, 3.0), (2, 1.0), (2, -1.0)]],
        );
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[1.0, 5.0]);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn append_rows_preserves_columns_and_sorts() {
        let a = sample();
        // Append rows [ 5 0 -1 ] and [ 0 2 0 ] below the 2×3 sample.
        let b = a.append_rows(&[vec![(2, -1.0), (0, 5.0)], vec![(1, 2.0), (1, 0.0)]]);
        assert_eq!(b.rows(), 4);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.nnz(), 6);
        let (rows, vals) = b.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 5.0]);
        let (rows, vals) = b.col(1);
        assert_eq!(rows, &[1, 3]);
        assert_eq!(vals, &[3.0, 2.0]);
        let (rows, vals) = b.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, -1.0]);
        // Matches a from-scratch build of the same 4×3 matrix.
        let full = CscMatrix::from_columns(
            4,
            &[
                vec![(0, 1.0), (2, 5.0)],
                vec![(1, 3.0), (3, 2.0)],
                vec![(0, 2.0), (2, -1.0)],
            ],
        );
        assert_eq!(b, full);
    }

    #[test]
    fn append_rows_coalesces_duplicates_in_added_rows() {
        let a = sample();
        let b = a.append_rows(&[vec![(0, 1.0), (0, 2.0), (1, 1.0), (1, -1.0)]]);
        assert_eq!(b.rows(), 3);
        let (rows, vals) = b.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(b.col_nnz(1), 1, "cancelled duplicate dropped");
    }

    #[test]
    fn row_major_matches_column_view() {
        let a = CscMatrix::from_columns(
            3,
            &[
                vec![(0, 1.0), (2, 5.0)],
                vec![(1, 3.0)],
                vec![(0, 2.0), (1, -1.0), (2, 4.0)],
                vec![],
            ],
        );
        let r = a.to_row_major();
        assert_eq!(r.row(0), (&[0usize, 2][..], &[1.0, 2.0][..]));
        assert_eq!(r.row(1), (&[1usize, 2][..], &[3.0, -1.0][..]));
        assert_eq!(r.row(2), (&[0usize, 2][..], &[5.0, 4.0][..]));
        assert_eq!(r.row_nnz(2), 2);
        // Every stored entry appears exactly once, at the same value.
        let total: usize = (0..3).map(|i| r.row_nnz(i)).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn scatter_overwrites_only_stored_rows() {
        let a = sample();
        let mut out = vec![7.0; 2];
        a.scatter_col(&mut out, 0);
        assert_eq!(out, vec![1.0, 7.0]);
    }
}
