//! Sparse LU basis factorisation with product-form eta updates.
//!
//! The revised simplex needs four linear-algebra primitives on the basis
//! matrix `B` (one column per constraint row, drawn from the structural
//! CSC matrix or the implicit slack identity):
//!
//! * **FTRAN** — solve `B x = b` (pivot columns, primal updates),
//! * **BTRAN** — solve `Bᵀ y = c` (dual prices, tableau rows),
//! * **update** — replace the basic column of one row after a pivot,
//! * **refactorise** — rebuild the representation from the basis columns.
//!
//! Two interchangeable representations implement them:
//!
//! 1. [`LuFactors`] (the default): a sparse LU factorisation `B·Q = L·U`
//!    (columns permuted by `Q`, rows by partial pivoting) computed with a
//!    left-looking elimination in the style of Gilbert–Peierls. Columns
//!    are eliminated in a **static Markowitz order** — ascending non-zero
//!    count, the column half of the Markowitz merit — and within each
//!    column the pivot row is chosen by *threshold partial pivoting*
//!    biased towards sparse rows: among rows within 10× of the largest
//!    eligible magnitude, the row with the fewest non-zeros in `B` wins.
//!    Pivots are recorded as **product-form eta vectors**: after a pivot
//!    with transformed column `w = B⁻¹ a_q` entering at row `r`, the new
//!    basis satisfies `B' = B·E` with `E = I` except column `r = w`, so
//!    FTRAN appends `E⁻¹` and BTRAN prepends `E⁻ᵀ`. The eta file grows
//!    with every pivot; [`Factorization::needs_refactor`] triggers a
//!    fresh factorisation when the file gets long
//!    ([`FactorOpts::refactor_interval`]) or fat
//!    ([`FactorOpts::eta_fill_factor`] × the LU fill). Solves skip work
//!    on zero multipliers, so hyper-sparse right-hand sides (unit vectors
//!    in BTRAN, single columns in FTRAN) touch only the non-zeros they
//!    reach.
//!
//! 2. [`DenseInverse`]: the explicit dense `m × m` basis inverse of the
//!    original engine — `O(m³)` refactorisation (Gauss–Jordan with
//!    partial pivoting), `O(m²)` rank-one pivot updates. Kept as the
//!    correctness oracle behind
//!    [`LpEngine::DenseInverse`](crate::simplex::LpEngine) and as the
//!    reference implementation for the property tests.
//!
//! Both meter deterministic work: every elementary floating-point
//! operation charges ticks (see [`crate::DeterministicClock`]), harvested
//! by the engine through [`take_work`](LuFactors::take_work), so budgets
//! stay reproducible whichever representation runs.
//!
//! The remaining distance to a production factorisation — Forrest–Tomlin
//! updates that modify `U` in place instead of appending etas, dynamic
//! Markowitz ordering on the active submatrix, and topological-order
//! hyper-sparse solves — is recorded in `ROADMAP.md`.

use crate::sparse::CscMatrix;

/// Magnitude below which a pivot candidate counts as numerically zero.
const PIVOT_TOL: f64 = 1e-10;
/// Threshold-pivoting relaxation: rows within this factor of the largest
/// eligible magnitude may be preferred for sparsity.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Policy knobs for folding the eta file back into a fresh factorisation.
///
/// Reached through [`LpConfig`](crate::simplex::LpConfig) (and from there
/// [`SolverConfig`](crate::SolverConfig)); replaces the engine's old
/// hard-coded `REFACTOR_EVERY = 64` constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorOpts {
    /// Pivot (eta) updates tolerated — and hot basis reuses across solves
    /// — before a hygiene refactorisation is forced.
    pub refactor_interval: u32,
    /// Refactorise when the eta-file non-zeros exceed this multiple of
    /// the LU fill (`nnz(L) + nnz(U) + m`).
    pub eta_fill_factor: f64,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            refactor_interval: 64,
            eta_fill_factor: 3.0,
        }
    }
}

/// One product-form eta transformation: the basis column of row `r` was
/// replaced by a column whose transformed form (`B⁻¹ a_q`) had `pivot` at
/// position `r` and `entries` elsewhere.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    pivot: f64,
    /// `(position, value)` pairs excluding the pivot position.
    entries: Vec<(usize, f64)>,
}

/// Sparse LU factorisation of a simplex basis with an eta-file of
/// product-form pivot updates. See the [module docs](self) for the
/// algorithm and the update calculus.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// Pivot row (original row index) per elimination step.
    p: Vec<usize>,
    /// Inverse of `p`: elimination step of each original row.
    pinv: Vec<usize>,
    /// Basis position eliminated at each step (column permutation `Q`).
    q: Vec<usize>,
    /// Columns of unit-lower-triangular `L`: `(original_row, value)`
    /// pairs over rows not yet pivoted at that step.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Columns of `U` above the diagonal: `(earlier_step, value)` pairs.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`, per step.
    u_diag: Vec<f64>,
    /// Product-form pivot updates since the last refactorisation,
    /// applied after the LU solves in FTRAN order.
    etas: Vec<Eta>,
    /// `nnz(L) + nnz(U)` including the diagonals, at last factorisation.
    lu_nnz: usize,
    /// Total entries across the eta file.
    eta_nnz: usize,
    /// Step-indexed scratch for the permuted triangular solves.
    scratch: Vec<f64>,
    /// Deterministic work accrued since the last harvest.
    work: u64,
}

impl LuFactors {
    /// An identity factorisation for an `m`-row basis (the all-slack
    /// basis `B = I`).
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let mut lu = LuFactors {
            m,
            p: Vec::new(),
            pinv: Vec::new(),
            q: Vec::new(),
            l_cols: Vec::new(),
            u_cols: Vec::new(),
            u_diag: Vec::new(),
            etas: Vec::new(),
            lu_nnz: m,
            eta_nnz: 0,
            scratch: vec![0.0; m],
            work: 0,
        };
        lu.reset_identity();
        lu
    }

    /// Resets to the identity basis without a factorisation pass.
    pub fn reset_identity(&mut self) {
        let m = self.m;
        self.p = (0..m).collect();
        self.pinv = (0..m).collect();
        self.q = (0..m).collect();
        self.l_cols = vec![Vec::new(); m];
        self.u_cols = vec![Vec::new(); m];
        self.u_diag = vec![1.0; m];
        self.etas.clear();
        self.lu_nnz = m;
        self.eta_nnz = 0;
        self.work += m as u64;
    }

    /// Number of eta updates accumulated since the last factorisation.
    #[must_use]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Non-zeros across the eta file.
    #[must_use]
    pub fn eta_nnz(&self) -> usize {
        self.eta_nnz
    }

    /// `nnz(L) + nnz(U)` of the last factorisation (diagonals included).
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        self.lu_nnz
    }

    /// Drains the deterministic work metered since the last call.
    pub fn take_work(&mut self) -> u64 {
        std::mem::take(&mut self.work)
    }

    /// Factorises the basis whose column for row position `k` is
    /// `cols[k]`: structural CSC column `cols[k]` when `cols[k] <
    /// n_struct`, else the slack unit vector `e_{cols[k] − n_struct}`.
    /// Clears the eta file. Returns `false` when the basis is singular
    /// (or hopelessly ill-conditioned); the factors are then unusable
    /// until the next successful call.
    pub fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let m = self.m;
        assert_eq!(cols.len(), m, "one basis column per row required");
        self.etas.clear();
        self.eta_nnz = 0;
        self.p.resize(m, 0);
        self.q.resize(m, 0);
        self.pinv.clear();
        self.pinv.resize(m, usize::MAX);
        self.l_cols.clear();
        self.l_cols.resize(m, Vec::new());
        self.u_cols.clear();
        self.u_cols.resize(m, Vec::new());
        self.u_diag.clear();
        self.u_diag.resize(m, 0.0);

        // Static Markowitz data: column non-zero counts order the
        // elimination; row counts break pivot ties towards sparse rows.
        let col_nnz = |pos: usize| {
            if cols[pos] < n_struct {
                a.col_nnz(cols[pos])
            } else {
                1
            }
        };
        let mut row_count = vec![0usize; m];
        for k in 0..m {
            if cols[k] < n_struct {
                for &i in a.col(cols[k]).0 {
                    row_count[i] += 1;
                }
            } else {
                row_count[cols[k] - n_struct] += 1;
            }
        }
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_unstable_by_key(|&pos| (col_nnz(pos), pos));

        let mut x = vec![0.0f64; m];
        let mut ops = a.nnz() as u64 + m as u64;
        for (step, &pos) in order.iter().enumerate() {
            // Scatter the basis column into the dense work vector.
            let c = cols[pos];
            if c < n_struct {
                a.scatter_col(&mut x, c);
                ops += a.col_nnz(c) as u64;
            } else {
                x[c - n_struct] = 1.0;
                ops += 1;
            }
            // Sparse lower solve `x ← L⁻¹ x` over the steps so far; zero
            // multipliers are skipped, which is what keeps sparse columns
            // cheap (hyper-sparsity by value rather than by pattern).
            for k in 0..step {
                let t = x[self.p[k]];
                if t == 0.0 {
                    continue;
                }
                for &(row, val) in &self.l_cols[k] {
                    x[row] -= val * t;
                }
                ops += self.l_cols[k].len() as u64;
            }
            ops += step as u64;
            // Threshold partial pivoting with a Markowitz row bias: the
            // sparsest row within PIVOT_THRESHOLD of the largest eligible
            // magnitude becomes the pivot.
            let mut max_abs = 0.0f64;
            for row in 0..m {
                if self.pinv[row] == usize::MAX {
                    let v = x[row].abs();
                    if v > max_abs {
                        max_abs = v;
                    }
                }
            }
            ops += m as u64;
            if max_abs < PIVOT_TOL {
                x.fill(0.0);
                return false; // singular in exact or floating arithmetic
            }
            let cutoff = max_abs * PIVOT_THRESHOLD;
            let mut prow = usize::MAX;
            let mut best_count = usize::MAX;
            for row in 0..m {
                if self.pinv[row] == usize::MAX && x[row].abs() >= cutoff {
                    let count = row_count[row];
                    if count < best_count {
                        best_count = count;
                        prow = row;
                    }
                }
            }
            debug_assert_ne!(prow, usize::MAX);
            self.p[step] = prow;
            self.pinv[prow] = step;
            self.q[step] = pos;
            let diag = x[prow];
            self.u_diag[step] = diag;
            // Split the eliminated column into U (pivoted rows) and L
            // (remaining rows, scaled by the pivot); reset the scratch.
            let inv = 1.0 / diag;
            for row in 0..m {
                let v = x[row];
                if v == 0.0 {
                    continue;
                }
                x[row] = 0.0;
                if row == prow {
                    continue;
                }
                let k = self.pinv[row];
                if k == usize::MAX {
                    self.l_cols[step].push((row, v * inv));
                } else {
                    self.u_cols[step].push((k, v));
                }
            }
            ops += m as u64;
        }
        self.lu_nnz = m + self
            .l_cols
            .iter()
            .zip(&self.u_cols)
            .map(|(l, u)| l.len() + u.len())
            .sum::<usize>();
        self.work += ops;
        true
    }

    /// FTRAN: overwrites `x` (indexed by constraint row) with `B⁻¹ x`
    /// (indexed by basis position).
    pub fn ftran(&mut self, x: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        let mut ops = 0u64;
        let LuFactors {
            p,
            q,
            l_cols,
            u_cols,
            u_diag,
            etas,
            scratch: z,
            ..
        } = self;
        // Forward solve L y = x, in place in pivot order.
        for k in 0..m {
            let t = x[p[k]];
            if t == 0.0 {
                continue;
            }
            for &(row, val) in &l_cols[k] {
                x[row] -= val * t;
            }
            ops += l_cols[k].len() as u64;
        }
        // Backward solve U z = y in step space.
        for k in 0..m {
            z[k] = x[p[k]];
        }
        for k in (0..m).rev() {
            let zk = z[k] / u_diag[k];
            z[k] = zk;
            if zk == 0.0 {
                continue;
            }
            for &(i, val) in &u_cols[k] {
                z[i] -= val * zk;
            }
            ops += u_cols[k].len() as u64;
        }
        // Undo the column permutation into basis-position space.
        for k in 0..m {
            x[q[k]] = z[k];
        }
        ops += 3 * m as u64;
        // Apply the eta file in pivot order: x ← E⁻¹ x per eta.
        for eta in etas.iter() {
            let t = x[eta.r] / eta.pivot;
            x[eta.r] = t;
            if t == 0.0 {
                continue;
            }
            for &(i, val) in &eta.entries {
                x[i] -= val * t;
            }
            ops += eta.entries.len() as u64;
        }
        ops += etas.len() as u64;
        self.work += ops;
    }

    /// BTRAN: overwrites `x` (indexed by basis position) with `B⁻ᵀ x`
    /// (indexed by constraint row).
    pub fn btran(&mut self, x: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        let mut ops = 0u64;
        let LuFactors {
            p,
            q,
            l_cols,
            u_cols,
            u_diag,
            etas,
            scratch: z,
            ..
        } = self;
        // Eta transposes first, in reverse pivot order.
        for eta in etas.iter().rev() {
            let mut dot = 0.0;
            for &(i, val) in &eta.entries {
                dot += val * x[i];
            }
            x[eta.r] = (x[eta.r] - dot) / eta.pivot;
            ops += eta.entries.len() as u64 + 1;
        }
        // Uᵀ z = Q x, forward in step space (gather form).
        for k in 0..m {
            let mut v = x[q[k]];
            for &(i, val) in &u_cols[k] {
                v -= val * z[i];
            }
            z[k] = v / u_diag[k];
            ops += u_cols[k].len() as u64;
        }
        // Lᵀ y = z, backward; every original row is written exactly once.
        for k in (0..m).rev() {
            let mut v = z[k];
            for &(row, val) in &l_cols[k] {
                v -= val * x[row];
            }
            x[p[k]] = v;
            ops += l_cols[k].len() as u64;
        }
        ops += 2 * m as u64;
        self.work += ops;
    }

    /// Records a pivot: the basic column at position `r` is replaced by a
    /// column whose FTRANed form is `w` (so `w[r]` is the pivot element).
    /// Appends one eta to the file; `O(nnz(w))`.
    pub fn update(&mut self, r: usize, w: &[f64]) {
        debug_assert_eq!(w.len(), self.m);
        debug_assert!(w[r] != 0.0, "pivot element must be non-zero");
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.work += entries.len() as u64 + 1;
        self.eta_nnz += entries.len() + 1;
        self.etas.push(Eta {
            r,
            pivot: w[r],
            entries,
        });
    }

    /// Refactorisation trigger: a long eta file costs every solve, a fat
    /// one costs memory and accuracy; either pays for a fresh LU.
    #[must_use]
    pub fn needs_refactor(&self, opts: &FactorOpts) -> bool {
        self.etas.len() >= opts.refactor_interval as usize
            || self.eta_nnz as f64 > opts.eta_fill_factor * (self.lu_nnz + self.m) as f64
    }
}

/// Explicit dense `m × m` basis inverse — the original engine's
/// representation, kept as the correctness oracle for [`LuFactors`] and
/// selectable via [`LpEngine::DenseInverse`](crate::simplex::LpEngine).
#[derive(Debug, Clone)]
pub struct DenseInverse {
    m: usize,
    /// Row-major `m × m` basis inverse: `binv[i·m + k] = (B⁻¹)[i, k]`
    /// maps constraint row `k` to basis position `i`.
    binv: Vec<f64>,
    scratch: Vec<f64>,
    work: u64,
}

impl DenseInverse {
    /// The identity inverse for an `m`-row basis.
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let mut inv = DenseInverse {
            m,
            binv: vec![0.0; m * m],
            scratch: vec![0.0; m],
            work: 0,
        };
        inv.reset_identity();
        inv
    }

    /// Resets to the identity basis.
    pub fn reset_identity(&mut self) {
        self.binv.fill(0.0);
        for i in 0..self.m {
            self.binv[i * self.m + i] = 1.0;
        }
        self.work += self.m as u64;
    }

    /// Drains the deterministic work metered since the last call.
    pub fn take_work(&mut self) -> u64 {
        std::mem::take(&mut self.work)
    }

    /// Gauss–Jordan inversion of the basis matrix with partial pivoting;
    /// the column convention matches [`LuFactors::factorize`]. Returns
    /// `false` on a singular basis.
    pub fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let m = self.m;
        assert_eq!(cols.len(), m, "one basis column per row required");
        let mut b = vec![0.0f64; m * m];
        for (r, &c) in cols.iter().enumerate() {
            if c < n_struct {
                let (rows, vals) = a.col(c);
                for (&i, &v) in rows.iter().zip(vals) {
                    b[i * m + r] = v;
                }
            } else {
                b[(c - n_struct) * m + r] = 1.0;
            }
        }
        self.binv.fill(0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        for k in 0..m {
            let mut p = k;
            let mut best = b[k * m + k].abs();
            for i in k + 1..m {
                let v = b[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < PIVOT_TOL {
                return false;
            }
            if p != k {
                for j in 0..m {
                    b.swap(k * m + j, p * m + j);
                    self.binv.swap(k * m + j, p * m + j);
                }
            }
            let inv = 1.0 / b[k * m + k];
            for j in 0..m {
                b[k * m + j] *= inv;
                self.binv[k * m + j] *= inv;
            }
            for i in 0..m {
                if i == k {
                    continue;
                }
                let f = b[i * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        let bv = b[k * m + j];
                        let nv = self.binv[k * m + j];
                        b[i * m + j] -= f * bv;
                        self.binv[i * m + j] -= f * nv;
                    }
                }
            }
        }
        self.work += (m * m * m) as u64;
        true
    }

    /// FTRAN: overwrites `x` (row-indexed) with `B⁻¹ x`
    /// (position-indexed); dense `O(m²)`.
    pub fn ftran(&mut self, x: &mut [f64]) {
        let m = self.m;
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.scratch[i] = row.iter().zip(x.iter()).map(|(&v, &r)| v * r).sum();
        }
        x.copy_from_slice(&self.scratch);
        self.work += (m * m) as u64;
    }

    /// BTRAN: overwrites `x` (position-indexed) with `B⁻ᵀ x`
    /// (row-indexed); dense `O(m²)`.
    pub fn btran(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.scratch.fill(0.0);
        for r in 0..m {
            let xr = x[r];
            if xr != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (acc, &v) in self.scratch.iter_mut().zip(row) {
                    *acc += xr * v;
                }
            }
        }
        x.copy_from_slice(&self.scratch);
        self.work += (m * m) as u64;
    }

    /// Copies row `r` of `B⁻¹` (`= e_rᵀ B⁻¹`) into `out`.
    pub fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.binv[r * self.m..(r + 1) * self.m]);
        self.work += self.m as u64;
    }

    /// Rank-one basis-inverse update after a pivot at row `r` with
    /// transformed entering column `w`; dense `O(m²)`.
    pub fn update(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let inv = 1.0 / w[r];
        for j in 0..m {
            self.binv[r * m + j] *= inv;
        }
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = w[i];
            if f != 0.0 {
                for j in 0..m {
                    let v = self.binv[r * m + j];
                    self.binv[i * m + j] -= f * v;
                }
            }
        }
        self.work += (m * m) as u64;
    }
}

/// The engine-facing dispatch over the two representations.
#[derive(Debug, Clone)]
pub(crate) enum Factorization {
    /// Sparse LU with an eta file.
    Lu(LuFactors),
    /// Explicit dense inverse (oracle / fallback representation).
    Dense(DenseInverse),
}

impl Factorization {
    pub(crate) fn reset_identity(&mut self) {
        match self {
            Factorization::Lu(f) => f.reset_identity(),
            Factorization::Dense(f) => f.reset_identity(),
        }
    }

    pub(crate) fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        match self {
            Factorization::Lu(f) => f.factorize(cols, a, n_struct),
            Factorization::Dense(f) => f.factorize(cols, a, n_struct),
        }
    }

    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        match self {
            Factorization::Lu(f) => f.ftran(x),
            Factorization::Dense(f) => f.ftran(x),
        }
    }

    pub(crate) fn btran(&mut self, x: &mut [f64]) {
        match self {
            Factorization::Lu(f) => f.btran(x),
            Factorization::Dense(f) => f.btran(x),
        }
    }

    /// `out ← e_rᵀ B⁻¹` (the tableau row's dual direction).
    pub(crate) fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        match self {
            Factorization::Lu(f) => {
                out.fill(0.0);
                out[r] = 1.0;
                f.btran(out);
            }
            Factorization::Dense(f) => f.btran_unit(r, out),
        }
    }

    pub(crate) fn update(&mut self, r: usize, w: &[f64]) {
        match self {
            Factorization::Lu(f) => f.update(r, w),
            Factorization::Dense(f) => f.update(r, w),
        }
    }

    /// Whether the accumulated updates warrant a fresh factorisation.
    /// The dense inverse is updated in place and never refactorises
    /// mid-run (matching the original engine); the LU representation
    /// follows the eta-file policy in `opts`.
    pub(crate) fn needs_refactor(&self, opts: &FactorOpts) -> bool {
        match self {
            Factorization::Lu(f) => f.needs_refactor(opts),
            Factorization::Dense(_) => false,
        }
    }

    pub(crate) fn take_work(&mut self) -> u64 {
        match self {
            Factorization::Lu(f) => f.take_work(),
            Factorization::Dense(f) => f.take_work(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3×3 matrix with a sparse structure and a known inverse action.
    fn sample_csc() -> CscMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 1 0 1 ]
        CscMatrix::from_columns(
            3,
            &[
                vec![(0, 2.0), (2, 1.0)],
                vec![(1, 3.0)],
                vec![(0, 1.0), (2, 1.0)],
            ],
        )
    }

    #[test]
    fn lu_matches_dense_on_structural_basis() {
        let a = sample_csc();
        let cols = vec![0, 1, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(lu.factorize(&cols, &a, 3));
        assert!(dense.factorize(&cols, &a, 3));
        let rhs = [1.0, 2.0, 3.0];
        let mut x1 = rhs;
        let mut x2 = rhs;
        lu.ftran(&mut x1);
        dense.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }
        let mut y1 = rhs;
        let mut y2 = rhs;
        lu.btran(&mut y1);
        dense.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn mixed_slack_basis_and_unit_btran() {
        let a = sample_csc();
        // Basis: structural col 0, slack of row 1, structural col 2.
        let cols = vec![0, 4, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(lu.factorize(&cols, &a, 3));
        assert!(dense.factorize(&cols, &a, 3));
        for r in 0..3 {
            let mut u1 = vec![0.0; 3];
            let mut u2 = vec![0.0; 3];
            u1[r] = 1.0;
            lu.btran(&mut u1);
            dense.btran_unit(r, &mut u2);
            for (a, b) in u1.iter().zip(&u2) {
                assert!((a - b).abs() < 1e-12, "row {r}: {u1:?} vs {u2:?}");
            }
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let a = sample_csc();
        // Column 0 twice: linearly dependent.
        let cols = vec![0, 0, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(!lu.factorize(&cols, &a, 3));
        assert!(!dense.factorize(&cols, &a, 3));
    }

    #[test]
    fn eta_update_tracks_dense_rank_one() {
        let a = sample_csc();
        let cols = vec![3, 4, 5]; // all-slack identity basis
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(lu.factorize(&cols, &a, 3));
        assert!(dense.factorize(&cols, &a, 3));
        // Pivot structural column 0 into row 0.
        let mut w1 = vec![0.0; 3];
        a.axpy_col(&mut w1, 1.0, 0);
        let mut w2 = w1.clone();
        lu.ftran(&mut w1);
        dense.ftran(&mut w2);
        lu.update(0, &w1);
        dense.update(0, &w2);
        assert_eq!(lu.eta_count(), 1);
        let rhs = [5.0, -1.0, 2.0];
        let mut x1 = rhs;
        let mut x2 = rhs;
        lu.ftran(&mut x1);
        dense.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }
        let mut y1 = rhs;
        let mut y2 = rhs;
        lu.btran(&mut y1);
        dense.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn refactor_policy_triggers() {
        let lu = LuFactors::identity(4);
        let tight = FactorOpts {
            refactor_interval: 0,
            eta_fill_factor: 0.0,
        };
        assert!(lu.needs_refactor(&tight));
        let loose = FactorOpts::default();
        assert!(!lu.needs_refactor(&loose));
    }

    #[test]
    fn work_is_metered_and_drained() {
        let a = sample_csc();
        let mut lu = LuFactors::identity(3);
        assert!(lu.factorize(&[0, 1, 2], &a, 3));
        assert!(lu.take_work() > 0);
        assert_eq!(lu.take_work(), 0);
    }
}
