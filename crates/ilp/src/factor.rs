//! Sparse LU basis factorisation with Forrest–Tomlin or product-form
//! updates and hyper-sparse triangular solves.
//!
//! The revised simplex needs four linear-algebra primitives on the basis
//! matrix `B` (one column per constraint row, drawn from the structural
//! CSC matrix or the implicit slack identity):
//!
//! * **FTRAN** — solve `B x = b` (pivot columns, primal updates),
//! * **BTRAN** — solve `Bᵀ y = c` (dual prices, tableau rows),
//! * **update** — replace the basic column of one row after a pivot,
//! * **refactorise** — rebuild the representation from the basis columns.
//!
//! Two interchangeable representations implement them:
//!
//! 1. [`LuFactors`] (the default): a sparse LU factorisation `B·Q = L·U`
//!    (columns permuted by `Q`, rows by partial pivoting). The default
//!    [`MarkowitzOrdering::Dynamic`] runs a right-looking elimination
//!    that picks every pivot by **live Markowitz merit on the active
//!    submatrix**: column candidates come out of non-zero-count buckets
//!    (lazily rebucketed as elimination changes the counts), and among
//!    the entries of a candidate column that pass *threshold partial
//!    pivoting* — within 10× of the column's largest magnitude — the one
//!    minimising `(col_count − 1) · (row_count − 1)` wins. Both counts
//!    are the *current* active-submatrix counts, maintained under fill,
//!    so the ordering adapts to the elimination instead of freezing the
//!    input structure. [`MarkowitzOrdering::StaticColCount`] keeps the
//!    PR 2 left-looking Gilbert–Peierls elimination in ascending static
//!    column count as the differential-testing oracle.
//!
//!    Pivots are applied through one of two update schemes, selected by
//!    [`FactorOpts::update`]:
//!
//!    * [`UpdateRule::ForrestTomlin`] (the default): the stored `U` is
//!      modified **in place**. The leaving column's slot `t` is emptied,
//!      the transformed entering column (the *spike* `v = L̃⁻¹ a_q`) is
//!      inserted in its place, slot `t` is moved to the end of the pivot
//!      order, and the now out-of-place row `t` of `U` is eliminated by a
//!      single row transform `R = I − e_t μᵀ` whose multipliers solve the
//!      trailing triangular system `Ūᵀ μ = u_tᵀ`. `R` joins a short file
//!      of row transforms applied between the `L` and `U` solves, so
//!      FTRAN/BTRAN cost tracks `nnz(L) + nnz(U) + nnz(R-file)` — flat in
//!      the number of pivots — instead of growing with one eta per pivot.
//!    * [`UpdateRule::ProductForm`]: the classical eta file. After a
//!      pivot with transformed column `w = B⁻¹ a_q` entering at row `r`,
//!      the new basis satisfies `B' = B·E` with `E = I` except column
//!      `r = w`, so FTRAN appends `E⁻¹` and BTRAN prepends `E⁻ᵀ`. The
//!      file grows with every pivot; kept selectable so the two schemes
//!      can be differentially tested against each other and against
//!      [`DenseInverse`].
//!
//!    [`LuFactors::needs_refactor`] triggers a fresh factorisation
//!    when the update file gets long ([`FactorOpts::refactor_interval`])
//!    or fat ([`FactorOpts::eta_fill_factor`] × the LU fill).
//!
//!    The triangular solves are **hyper-sparse**: when the right-hand
//!    side is sparse enough (see the density cutover below), the solver
//!    first computes the *reach* of the RHS pattern — a DFS over the
//!    triangular factor's dependency graph, visited in topological
//!    (pivot) order — and then runs the scatter-form solve over exactly
//!    those columns, so work is proportional to the non-zeros actually
//!    touched rather than to `m`. Dense right-hand sides cut over to the
//!    scanning kernels, which sweep every elimination step and skip zero
//!    multipliers. Both kernels execute bit-identical arithmetic (same
//!    scatter operations in the same pivot order), so results do not
//!    depend on which kernel a density estimate picks.
//!
//! 2. [`DenseInverse`]: the explicit dense `m × m` basis inverse of the
//!    original engine — `O(m³)` refactorisation (Gauss–Jordan with
//!    partial pivoting), `O(m²)` rank-one pivot updates. Kept as the
//!    correctness oracle behind
//!    [`LpEngine::DenseInverse`](crate::simplex::LpEngine) and as the
//!    reference implementation for the property tests.
//!
//! Both meter deterministic work: every elementary floating-point
//! operation charges ticks (see [`crate::DeterministicClock`]), harvested
//! by the engine through [`take_work`](LuFactors::take_work), so budgets
//! stay reproducible whichever representation runs. [`FactorStats`]
//! additionally counts FTRAN/BTRAN visited non-zeros, kernel selections
//! and update-file growth for the bench log.
//!
//! Callers that know a solve's right-hand-side pattern ahead of time use
//! the `*_sparse` entry points; the `*_tracked` variants additionally
//! return the **result** pattern discovered by the DFS reach, so
//! consecutive solves can thread patterns (FTRAN result → update → next
//! FTRAN seed) without ever scanning a dense vector.

use crate::sparse::CscMatrix;

/// Magnitude below which a pivot candidate counts as numerically zero.
const PIVOT_TOL: f64 = crate::tol::PIVOT;
/// Threshold-pivoting relaxation: rows within this factor of the largest
/// eligible magnitude may be preferred for sparsity.
const PIVOT_THRESHOLD: f64 = 0.1;
/// Default RHS density (pattern non-zeros / m) above which the
/// hyper-sparse kernels cut over to the scanning kernels. DFS reach
/// computation only pays off when the solution stays sparse, which an
/// already-dense right-hand side rules out.
const HYPER_DENSITY_CUTOFF: f64 = 0.125;

/// How [`LuFactors::factorize`] orders the elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarkowitzOrdering {
    /// Right-looking elimination choosing each pivot by live Markowitz
    /// merit `(col_count − 1)·(row_count − 1)` on the active submatrix,
    /// with count buckets and lazy rebucketing. Threshold partial
    /// pivoting is unchanged. The default.
    #[default]
    Dynamic,
    /// The PR 2 left-looking elimination in ascending *static* column
    /// count, with the sparsest-row tie-break frozen at the input
    /// counts. Kept as the differential-testing oracle for the dynamic
    /// ordering.
    StaticColCount,
}

/// Bounded candidate search of the dynamic ordering: how many usable
/// pivot columns are examined (in ascending active count) before the
/// best Markowitz merit seen so far is accepted.
const MARKOWITZ_CANDIDATES: usize = 4;

/// How a pivot is folded into an existing [`LuFactors`] factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateRule {
    /// Forrest–Tomlin: modify the stored `U` in place (spike insertion,
    /// row elimination, pivot-order bookkeeping). Solve cost stays flat
    /// in the number of pivots since the last refactorisation. The
    /// default.
    #[default]
    ForrestTomlin,
    /// Product-form eta file: append one eta per pivot. Solve cost grows
    /// linearly with pivots since the last refactorisation; kept as the
    /// differential-testing oracle for the Forrest–Tomlin path.
    ProductForm,
}

/// Policy knobs for folding accumulated updates back into a fresh
/// factorisation, plus the update scheme itself.
///
/// Reached through [`LpConfig`](crate::simplex::LpConfig) (and from there
/// [`SolverConfig`](crate::SolverConfig)); replaces the engine's old
/// hard-coded `REFACTOR_EVERY = 64` constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorOpts {
    /// Pivot updates tolerated — and hot basis reuses across solves —
    /// before a hygiene refactorisation is forced.
    pub refactor_interval: u32,
    /// Refactorise when the update file's non-zeros exceed this multiple
    /// of the LU fill. The fill is `nnz(L) + nnz(U)` *including* both
    /// diagonals (`lu_nnz`, which therefore already counts the `m` unit
    /// diagonal entries of `L`): the trigger point is exactly
    /// `update_nnz > eta_fill_factor · lu_nnz`.
    pub eta_fill_factor: f64,
    /// Which update scheme [`LuFactors::update`] applies.
    pub update: UpdateRule,
    /// Which pivot-ordering strategy [`LuFactors::factorize`] runs.
    pub ordering: MarkowitzOrdering,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            refactor_interval: 96,
            eta_fill_factor: 3.0,
            update: UpdateRule::default(),
            ordering: MarkowitzOrdering::default(),
        }
    }
}

/// Counters for the factorisation work behind one (or more) solves:
/// solve/kernel selections, visited non-zeros and update-file growth.
/// Harvested by the engine via [`LuFactors::take_stats`] and surfaced on
/// [`LpResult`](crate::simplex::LpResult) for the bench log.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FactorStats {
    /// FTRAN solves performed.
    pub ftran_solves: u64,
    /// FTRAN solves served by the hyper-sparse (DFS reach) kernel.
    pub ftran_hyper: u64,
    /// Non-zeros visited across all FTRAN passes (reach nodes + scatter
    /// entries + update-file entries).
    pub ftran_visited: u64,
    /// BTRAN solves performed.
    pub btran_solves: u64,
    /// BTRAN solves served by the hyper-sparse (DFS reach) kernel.
    pub btran_hyper: u64,
    /// Non-zeros visited across all BTRAN passes.
    pub btran_visited: u64,
    /// Pivot updates applied (either scheme).
    pub updates: u64,
    /// Entries added to the update file (etas, or spike fill + row
    /// transform multipliers under Forrest–Tomlin).
    pub update_nnz: u64,
    /// Successful refactorisations performed.
    pub refactors: u64,
    /// Deterministic work ticks metered inside those refactorisations
    /// (elimination + triangular-extraction ops) — the slice of the LP
    /// engine's `work_ticks` that
    /// [`SpanKind::Refactor`](crate::trace::SpanKind::Refactor) spans
    /// report.
    pub refactor_ticks: u64,
    /// Peak of `update file size / refactor policy bound` observed at an
    /// update. Values slightly above 1.0 are normal (the policy is
    /// checked after the pivot that crosses it); sustained growth beyond
    /// that means the refactor policy is not being enforced.
    pub growth_peak: f64,
}

impl FactorStats {
    /// Accumulates `other` into `self` (sums counters, maxes peaks).
    pub fn merge(&mut self, other: &FactorStats) {
        self.ftran_solves += other.ftran_solves;
        self.ftran_hyper += other.ftran_hyper;
        self.ftran_visited += other.ftran_visited;
        self.btran_solves += other.btran_solves;
        self.btran_hyper += other.btran_hyper;
        self.btran_visited += other.btran_visited;
        self.updates += other.updates;
        self.update_nnz += other.update_nnz;
        self.refactors += other.refactors;
        self.refactor_ticks += other.refactor_ticks;
        self.growth_peak = self.growth_peak.max(other.growth_peak);
    }
}

/// Debug-build contract check for the `*_sparse` solve entry points:
/// `pattern` must cover every non-zero of `x`, or the reach kernels
/// silently drop values. The check is gated to the hyper path (the
/// scanning fall-through ignores the pattern entirely) and to small
/// systems — it sweeps the dense vector, which would drag the dev
/// profile's optimised numeric kernels on bench-sized instances.
#[inline]
fn debug_check_superset(x: &[f64], pattern: &[usize]) {
    #[cfg(debug_assertions)]
    if x.len() <= 512 {
        for (i, &v) in x.iter().enumerate() {
            debug_assert!(
                v == 0.0 || pattern.contains(&i),
                "sparse-solve pattern misses non-zero row {i}"
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = (x, pattern);
}

/// One product-form eta transformation: the basis column of row `r` was
/// replaced by a column whose transformed form (`B⁻¹ a_q`) had `pivot` at
/// position `r` and `entries` elsewhere.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    pivot: f64,
    /// `(position, value)` pairs excluding the pivot position.
    entries: Vec<(usize, f64)>,
}

/// One Forrest–Tomlin row transform `R = I − e_t μᵀ`: applied between
/// the `L` and `U` solves (in slot space), chronologically in FTRAN and
/// transposed in reverse order in BTRAN.
#[derive(Debug, Clone)]
struct FtTransform {
    /// Slot whose `U` row was eliminated (the update's pivot slot).
    t: usize,
    /// `(slot, multiplier)` pairs over the trailing slots.
    entries: Vec<(usize, f64)>,
}

/// One bordered-growth row transform, recorded when the basis is grown in
/// place by appended constraint rows (cutting planes): with the new basis
/// `B' = [[B, 0], [N, I]]` (new logical slacks basic in the new rows), the
/// inverse factors as `B'⁻¹ = diag(B⁻¹, I) · T` with
/// `T = [[I, 0], [−N B⁻¹, I]]` — one transform per new row, whose
/// multipliers `μ = B⁻ᵀ n` (`n` = the new row over the current basic
/// columns) are computed once at growth time. `T` is applied *first* in
/// FTRAN (newest growth first) and its transpose *last* in BTRAN (oldest
/// growth first); everything downstream — L, the update files, U, etas —
/// composes against it unchanged, so Forrest–Tomlin and product-form
/// pivots keep absorbing updates on the grown basis without a
/// refactorisation from scratch.
#[derive(Debug, Clone)]
struct Border {
    /// The appended row this transform targets.
    row: usize,
    /// `(row, multiplier)` pairs over rows that existed before the growth.
    entries: Vec<(usize, f64)>,
}

/// Which triangular dependency graph a hyper-sparse reach runs over.
#[derive(Clone, Copy)]
enum Phase {
    /// Forward solve `L y = b`: slot `k` feeds slots `pinv[row]` for the
    /// rows of `l_cols[k]`.
    LowerFwd,
    /// Backward solve `U z = y`: slot `k` feeds the earlier slots of
    /// `u_cols[k]`.
    UpperBwd,
    /// Forward solve `Uᵀ z = c`: slot `k` feeds the later slots of
    /// `u_rows[k]`.
    UpperTFwd,
    /// Backward solve `Lᵀ y = z`: slot `k` feeds the earlier slots of
    /// `l_rows[p[k]]`.
    LowerTBwd,
}

/// Sparse LU factorisation of a simplex basis with in-place
/// Forrest–Tomlin updates (or a product-form eta file) and hyper-sparse
/// triangular solves. See the [module docs](self) for the algorithm and
/// the update calculus.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// Pivot row (original row index) per elimination slot.
    p: Vec<usize>,
    /// Inverse of `p`: elimination slot of each original row.
    pinv: Vec<usize>,
    /// Basis position eliminated at each slot (column permutation `Q`).
    q: Vec<usize>,
    /// Inverse of `q`: elimination slot of each basis position.
    qinv: Vec<usize>,
    /// Slots in current pivotal order. After a factorisation this is the
    /// identity; Forrest–Tomlin updates cyclically move the updated slot
    /// to the end.
    order: Vec<usize>,
    /// Inverse of `order`: pivotal position of each slot.
    pos: Vec<usize>,
    /// Columns of unit-lower-triangular `L`: `(original_row, value)`
    /// pairs over rows not yet pivoted at that slot. Static between
    /// refactorisations.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Row-wise mirror of `L` for the transposed scatter solve:
    /// `l_rows[row]` holds `(slot, value)` for every `l_cols[slot]`
    /// entry at `row`.
    l_rows: Vec<Vec<(usize, f64)>>,
    /// Columns of `U` above the diagonal: `(slot, value)` pairs whose
    /// slots come earlier in pivotal order.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Row-wise mirror of `U`: `u_rows[i]` holds `(slot, value)` for
    /// every `u_cols[slot]` entry at `i` (slots later in pivotal order).
    /// Kept in lockstep with `u_cols` through Forrest–Tomlin updates.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`, per slot.
    u_diag: Vec<f64>,
    /// Product-form pivot updates since the last refactorisation,
    /// applied after the LU solves in FTRAN order (ProductForm rule).
    etas: Vec<Eta>,
    /// Forrest–Tomlin row transforms since the last refactorisation,
    /// applied between the `L` and `U` solves (ForrestTomlin rule).
    ft: Vec<FtTransform>,
    /// Bordered-growth transforms since the last refactorisation, in
    /// growth order; applied ahead of everything in FTRAN (newest first)
    /// and after everything in BTRAN (oldest first). See [`Border`].
    border: Vec<Border>,
    /// `nnz(L) + nnz(U)` including the diagonals, at last factorisation.
    lu_nnz: usize,
    /// Current `nnz(U)` including the diagonal (changes under FT).
    u_nnz: usize,
    /// `nnz(U)` at the last factorisation.
    u_nnz0: usize,
    /// Total entries across the update file (etas, or FT multipliers).
    file_nnz: usize,
    /// Pivot updates applied since the last factorisation.
    updates: u32,
    /// RHS density above which solves use the scanning kernels.
    hyper_cutoff: f64,
    /// Pivot-ordering strategy for `factorize`.
    ordering: MarkowitzOrdering,
    /// Slot-indexed scratch for the permuted triangular solves; zeroed
    /// between calls.
    scratch: Vec<f64>,
    /// Second slot-indexed scratch (spike / elimination work vectors);
    /// zeroed between calls.
    aux: Vec<f64>,
    /// Scratch pattern buffers (row/position and slot space).
    pat: Vec<usize>,
    pat2: Vec<usize>,
    /// DFS reach output (postorder, then sorted by pivotal position).
    reach: Vec<usize>,
    /// DFS stack of `(slot, next child index)`.
    rstack: Vec<(usize, usize)>,
    /// Visit stamps for the DFS and pattern tracking.
    mark: Vec<u32>,
    stamp: u32,
    /// When set, the hyper kernels record the result's (superset)
    /// pattern into `result_pat` — the `*_tracked` entry points.
    track: bool,
    /// Result pattern captured by the last tracked solve.
    result_pat: Vec<usize>,
    /// Deterministic work accrued since the last harvest.
    work: u64,
    /// Factorisation statistics since the last harvest.
    stats: FactorStats,
}

impl LuFactors {
    /// An identity factorisation for an `m`-row basis (the all-slack
    /// basis `B = I`).
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let mut lu = LuFactors {
            m,
            p: Vec::new(),
            pinv: Vec::new(),
            q: Vec::new(),
            qinv: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            l_cols: Vec::new(),
            l_rows: Vec::new(),
            u_cols: Vec::new(),
            u_rows: Vec::new(),
            u_diag: Vec::new(),
            etas: Vec::new(),
            ft: Vec::new(),
            border: Vec::new(),
            lu_nnz: m,
            u_nnz: m,
            u_nnz0: m,
            file_nnz: 0,
            updates: 0,
            hyper_cutoff: HYPER_DENSITY_CUTOFF,
            ordering: MarkowitzOrdering::default(),
            scratch: vec![0.0; m],
            aux: vec![0.0; m],
            pat: Vec::new(),
            pat2: Vec::new(),
            reach: Vec::new(),
            rstack: Vec::new(),
            mark: vec![0; m],
            stamp: 0,
            track: false,
            result_pat: Vec::new(),
            work: 0,
            stats: FactorStats::default(),
        };
        lu.reset_identity();
        lu
    }

    /// Resets to the identity basis without a factorisation pass.
    pub fn reset_identity(&mut self) {
        let m = self.m;
        self.p = (0..m).collect();
        self.pinv = (0..m).collect();
        self.q = (0..m).collect();
        self.qinv = (0..m).collect();
        self.order = (0..m).collect();
        self.pos = (0..m).collect();
        self.l_cols = vec![Vec::new(); m];
        self.l_rows = vec![Vec::new(); m];
        self.u_cols = vec![Vec::new(); m];
        self.u_rows = vec![Vec::new(); m];
        self.u_diag = vec![1.0; m];
        self.etas.clear();
        self.ft.clear();
        self.border.clear();
        self.lu_nnz = m;
        self.u_nnz = m;
        self.u_nnz0 = m;
        self.file_nnz = 0;
        self.updates = 0;
        self.work += m as u64;
    }

    /// Grows the factorisation in place by `borders.len()` appended
    /// constraint rows whose basic columns are the new logical slacks —
    /// the incremental-row (cutting plane) path. `borders[i]` holds the
    /// multipliers `μ_i = B⁻ᵀ n_i` of the new row `i` over the
    /// *pre-growth* rows (`n_i` = the appended row's coefficients on the
    /// current basic columns, by row position); the caller computes them
    /// with [`btran_sparse`](Self::btran_sparse) **before** calling this.
    ///
    /// The grown basis `B' = [[B, 0], [N, I]]` is represented exactly as
    /// the old factors extended by unit rows/columns plus one border
    /// transform per new row, so no refactorisation happens here; the
    /// border non-zeros count towards the update file, which means the
    /// [`needs_refactor`](Self::needs_refactor) policy eventually folds
    /// them into a fresh LU like any other accumulated update.
    pub fn grow(&mut self, borders: Vec<Vec<(usize, f64)>>) {
        let k = borders.len();
        let m0 = self.m;
        let m = m0 + k;
        self.m = m;
        for s in m0..m {
            // New slot `s` pivots the new row `s` at the new basis
            // position `s`, last in pivotal order, with a unit diagonal
            // and no off-diagonal fill — exactly the slack unit column.
            self.p.push(s);
            self.pinv.push(s);
            self.q.push(s);
            self.qinv.push(s);
            self.order.push(s);
            self.pos.push(s);
            self.l_cols.push(Vec::new());
            self.l_rows.push(Vec::new());
            self.u_cols.push(Vec::new());
            self.u_rows.push(Vec::new());
            self.u_diag.push(1.0);
        }
        self.scratch.resize(m, 0.0);
        self.aux.resize(m, 0.0);
        self.mark.resize(m, 0);
        self.lu_nnz += k;
        self.u_nnz += k;
        self.u_nnz0 += k;
        let mut border_nnz = 0usize;
        for (i, entries) in borders.into_iter().enumerate() {
            debug_assert!(entries.iter().all(|&(j, _)| j < m0));
            border_nnz += entries.len();
            if !entries.is_empty() {
                self.border.push(Border {
                    row: m0 + i,
                    entries,
                });
            }
        }
        self.file_nnz += border_nnz;
        self.stats.update_nnz += border_nnz as u64;
        self.work += (border_nnz + k) as u64;
    }

    /// Applies the bordered-growth transforms to an FTRAN right-hand side
    /// (row space), newest growth first. When `pat` is `Some`, rows the
    /// border turned non-zero are pushed onto it so the hyper-sparse
    /// kernels keep a superset pattern.
    fn apply_border_ftran(&mut self, x: &mut [f64], track: bool) {
        if self.border.is_empty() {
            return;
        }
        let LuFactors {
            border,
            pat,
            work,
            stats,
            ..
        } = self;
        let mut visited = 0u64;
        for b in border.iter().rev() {
            let mut dot = 0.0;
            for &(j, mu) in &b.entries {
                dot += mu * x[j];
            }
            visited += b.entries.len() as u64;
            if dot != 0.0 {
                x[b.row] -= dot;
                if track {
                    pat.push(b.row);
                }
            }
        }
        *work += visited;
        stats.ftran_visited += visited;
    }

    /// Applies the transposed bordered-growth transforms to a BTRAN
    /// result (row space), oldest growth first.
    fn apply_border_btran(&mut self, x: &mut [f64]) {
        if self.border.is_empty() {
            return;
        }
        let mut visited = 0u64;
        let LuFactors {
            border,
            track,
            result_pat,
            ..
        } = self;
        for b in border.iter() {
            let v = x[b.row];
            if v == 0.0 {
                continue;
            }
            for &(j, mu) in &b.entries {
                x[j] -= mu * v;
                if *track {
                    result_pat.push(j);
                }
            }
            visited += b.entries.len() as u64;
        }
        self.work += visited;
        self.stats.btran_visited += visited;
    }

    /// Selects the pivot-ordering strategy for subsequent
    /// [`factorize`](Self::factorize) calls. Both orderings produce a
    /// valid LU of the same basis (they generally differ in pivot
    /// sequence and therefore in round-off); each is individually
    /// deterministic.
    pub fn set_ordering(&mut self, ordering: MarkowitzOrdering) {
        self.ordering = ordering;
    }

    /// Overrides the hyper-sparse density cutover: right-hand sides whose
    /// pattern exceeds `cutoff · m` non-zeros use the scanning kernels.
    /// `0.0` forces scanning everywhere, `1.0` forces the hyper-sparse
    /// kernels; both produce bit-identical results (the kernels execute
    /// the same scatter operations in the same pivot order), so this knob
    /// only moves work accounting, never answers.
    pub fn set_hyper_density_cutoff(&mut self, cutoff: f64) {
        self.hyper_cutoff = cutoff.clamp(0.0, 1.0);
    }

    /// Largest RHS pattern (in non-zeros) the hyper-sparse kernels accept.
    fn hyper_cap(&self) -> usize {
        (self.m as f64 * self.hyper_cutoff) as usize
    }

    /// Number of pivot updates accumulated since the last factorisation
    /// (etas under ProductForm, in-place updates under Forrest–Tomlin).
    #[must_use]
    pub fn update_count(&self) -> usize {
        self.updates as usize
    }

    /// Alias for [`update_count`](Self::update_count), kept for callers
    /// from the product-form era.
    #[must_use]
    pub fn eta_count(&self) -> usize {
        self.update_count()
    }

    /// Non-zeros across the update file: eta entries under ProductForm;
    /// row-transform multipliers plus any net `U` fill under
    /// Forrest–Tomlin. This is the quantity the
    /// [`FactorOpts::eta_fill_factor`] policy bounds.
    #[must_use]
    pub fn update_nnz(&self) -> usize {
        self.file_nnz + self.u_nnz.saturating_sub(self.u_nnz0)
    }

    /// Alias for [`update_nnz`](Self::update_nnz).
    #[must_use]
    pub fn eta_nnz(&self) -> usize {
        self.update_nnz()
    }

    /// `nnz(L) + nnz(U)` of the last factorisation (diagonals included).
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        self.lu_nnz
    }

    /// Drains the deterministic work metered since the last call.
    pub fn take_work(&mut self) -> u64 {
        std::mem::take(&mut self.work)
    }

    /// Drains the factorisation statistics gathered since the last call.
    pub fn take_stats(&mut self) -> FactorStats {
        std::mem::take(&mut self.stats)
    }

    /// Factorises the basis whose column for row position `k` is
    /// `cols[k]`: structural CSC column `cols[k]` when `cols[k] <
    /// n_struct`, else the slack unit vector `e_{cols[k] − n_struct}`.
    /// Clears the update file. Returns `false` when the basis is singular
    /// (or hopelessly ill-conditioned); the factors are then unusable
    /// until the next successful call.
    pub fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let work_before = self.work;
        let ok = match self.ordering {
            MarkowitzOrdering::Dynamic => self.factorize_dynamic(cols, a, n_struct),
            MarkowitzOrdering::StaticColCount => self.factorize_static(cols, a, n_struct),
        };
        // Attribute the metered elimination work to the refactorisation
        // bucket so traces can split solve vs refactor time.
        self.stats.refactor_ticks += self.work - work_before;
        ok
    }

    /// Shared prologue of both factorisation paths: clears the update
    /// files and sizes the permutation/factor arrays for a fresh LU.
    fn factorize_reset(&mut self) {
        let m = self.m;
        self.etas.clear();
        self.ft.clear();
        self.border.clear();
        self.file_nnz = 0;
        self.updates = 0;
        self.p.resize(m, 0);
        self.q.resize(m, 0);
        self.pinv.clear();
        self.pinv.resize(m, usize::MAX);
        // The dynamic path flags pivoted columns through `qinv`; the
        // epilogue rebuilds it from `q` either way.
        self.qinv.clear();
        self.qinv.resize(m, usize::MAX);
        self.l_cols.clear();
        self.l_cols.resize(m, Vec::new());
        self.u_cols.clear();
        self.u_cols.resize(m, Vec::new());
        self.u_diag.clear();
        self.u_diag.resize(m, 0.0);
    }

    /// Shared epilogue: permutation inverses, identity pivotal order and
    /// the row-wise mirrors; refreshes the fill counters and stats.
    fn factorize_finish(&mut self, mut ops: u64) {
        let m = self.m;
        self.qinv.clear();
        self.qinv.resize(m, 0);
        for (k, &pos) in self.q.iter().enumerate() {
            self.qinv[pos] = k;
        }
        self.order.clear();
        self.order.extend(0..m);
        self.pos.clear();
        self.pos.extend(0..m);
        self.l_rows.clear();
        self.l_rows.resize(m, Vec::new());
        for (k, col) in self.l_cols.iter().enumerate() {
            for &(row, val) in col {
                self.l_rows[row].push((k, val));
            }
        }
        self.u_rows.clear();
        self.u_rows.resize(m, Vec::new());
        for (k, col) in self.u_cols.iter().enumerate() {
            for &(i, val) in col {
                self.u_rows[i].push((k, val));
            }
        }
        let u_fill: usize = self.u_cols.iter().map(Vec::len).sum();
        self.u_nnz = m + u_fill;
        self.u_nnz0 = self.u_nnz;
        self.lu_nnz = m + u_fill + self.l_cols.iter().map(Vec::len).sum::<usize>();
        ops += self.lu_nnz as u64;
        self.work += ops;
        self.stats.refactors += 1;
    }

    /// Right-looking elimination under the live Markowitz ordering: the
    /// working matrix (column values + row patterns + active counts) is
    /// updated as pivots are taken, so every pivot choice sees the
    /// *current* active submatrix. Work is proportional to the non-zeros
    /// actually touched (entries, fill and the bounded candidate scans),
    /// not to `m²` — on the very sparse bases the simplex produces this
    /// is the difference between a refactorisation costing `O(nnz)` and
    /// one costing `O(m²)`.
    fn factorize_dynamic(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let m = self.m;
        assert_eq!(cols.len(), m, "one basis column per row required");
        self.factorize_reset();
        if m == 0 {
            self.factorize_finish(0);
            return true;
        }

        // Working matrix: column-wise values, row-wise patterns, live
        // active-submatrix counts. `rows_pat[i]` is a superset of the
        // active columns with an entry at row `i` (stale only through
        // already-pivoted columns, which are skipped on sight); columns
        // hold no stale entries — eliminated rows are compacted out the
        // moment their pivot row is processed.
        let mut wcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut rows_pat: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut row_count = vec![0usize; m];
        let mut ops = a.nnz() as u64 + m as u64;
        for (pos, &c) in cols.iter().enumerate() {
            let col: Vec<(usize, f64)> = if c < n_struct {
                let (ri, vv) = a.col(c);
                ri.iter().zip(vv).map(|(&i, &v)| (i, v)).collect()
            } else {
                vec![(c - n_struct, 1.0)]
            };
            for &(i, _) in &col {
                rows_pat[i].push(pos);
                row_count[i] += 1;
            }
            wcols.push(col);
        }
        // Column-count buckets; entries go stale when elimination moves
        // a count and are lazily rebucketed on examination.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m + 1];
        for (pos, col) in wcols.iter().enumerate() {
            if col.is_empty() {
                self.work += ops;
                return false; // structurally singular (empty column)
            }
            buckets[col.len()].push(pos);
        }
        // Dense scratch for one column update at a time.
        let mut x = vec![0.0f64; m];
        let mut occ = vec![0u32; m];
        let mut occ_stamp = 0u32;
        // U entries recorded row-wise at pivot time (basis-position
        // column ids); mapped to slots in the epilogue once `qinv` of
        // every position is known.
        let mut u_tmp: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut patk: Vec<usize> = Vec::new();

        for step in 0..m {
            // --- Pivot selection: ascending active column count, best
            // Markowitz merit among threshold-eligible entries, bounded
            // candidate scan. ---
            let mut best_cost = u64::MAX;
            let mut best_col = usize::MAX;
            let mut best_row = usize::MAX;
            let mut examined = 0usize;
            'count: for count in 1..=m {
                if best_cost <= ((count - 1) * (count - 1)) as u64 {
                    break;
                }
                let mut idx = 0;
                while idx < buckets[count].len() {
                    let pos = buckets[count][idx];
                    if self.qinv[pos] != usize::MAX {
                        buckets[count].swap_remove(idx);
                        continue; // already pivoted
                    }
                    let cc = wcols[pos].len();
                    if cc != count {
                        buckets[count].swap_remove(idx);
                        buckets[cc].push(pos);
                        continue; // stale count: rebucket, re-examined later
                    }
                    idx += 1;
                    let col = &wcols[pos];
                    let mut max_abs = 0.0f64;
                    for &(_, v) in col {
                        let av = v.abs();
                        if av > max_abs {
                            max_abs = av;
                        }
                    }
                    ops += col.len() as u64;
                    if max_abs < PIVOT_TOL {
                        continue; // numerically nil column: unusable
                    }
                    let cutoff = max_abs * PIVOT_THRESHOLD;
                    let mut cand_row = usize::MAX;
                    let mut cand_cost = u64::MAX;
                    for &(i, v) in col {
                        if v.abs() >= cutoff {
                            let cost = ((count - 1) * (row_count[i] - 1)) as u64;
                            if cost < cand_cost {
                                cand_cost = cost;
                                cand_row = i;
                            }
                        }
                    }
                    ops += col.len() as u64;
                    examined += 1;
                    if cand_cost < best_cost {
                        best_cost = cand_cost;
                        best_col = pos;
                        best_row = cand_row;
                    }
                    if best_cost == 0
                        || (examined >= MARKOWITZ_CANDIDATES && best_col != usize::MAX)
                    {
                        break 'count;
                    }
                }
            }
            if best_col == usize::MAX {
                self.work += ops;
                return false; // every remaining column numerically nil
            }
            let (pcol, prow) = (best_col, best_row);

            // --- Eliminate pivot (prow, pcol) at slot `step`. ---
            self.p[step] = prow;
            self.pinv[prow] = step;
            self.q[step] = pcol;
            self.qinv[pcol] = step;
            let pivot_col = std::mem::take(&mut wcols[pcol]);
            let mut diag = 0.0f64;
            for &(i, v) in &pivot_col {
                if i == prow {
                    diag = v;
                }
            }
            self.u_diag[step] = diag;
            let inv = 1.0 / diag;
            let mut lcol: Vec<(usize, f64)> = Vec::with_capacity(pivot_col.len() - 1);
            for &(i, v) in &pivot_col {
                if i != prow {
                    lcol.push((i, v * inv));
                    row_count[i] -= 1; // entry leaves with the pivot column
                }
            }
            ops += pivot_col.len() as u64;
            row_count[prow] = 0;
            // Schur-complement update: every active column with an entry
            // in the pivot row absorbs `−l · u` fill, sees its pivot-row
            // entry removed, and is rebucketed at its new count.
            let rp = std::mem::take(&mut rows_pat[prow]);
            for &k in &rp {
                if self.qinv[k] != usize::MAX {
                    continue; // stale: column already pivoted
                }
                let colk = &mut wcols[k];
                occ_stamp = occ_stamp.wrapping_add(1);
                if occ_stamp == 0 {
                    occ.fill(0);
                    occ_stamp = 1;
                }
                patk.clear();
                let mut ukval = 0.0f64;
                for &(i, v) in colk.iter() {
                    if i == prow {
                        ukval = v;
                    } else {
                        x[i] = v;
                        occ[i] = occ_stamp;
                        patk.push(i);
                    }
                }
                ops += colk.len() as u64;
                if ukval != 0.0 {
                    u_tmp[step].push((k, ukval));
                    for &(i, lv) in &lcol {
                        if occ[i] == occ_stamp {
                            x[i] -= lv * ukval;
                        } else {
                            occ[i] = occ_stamp;
                            x[i] = -lv * ukval;
                            patk.push(i);
                            rows_pat[i].push(k);
                            row_count[i] += 1;
                        }
                    }
                    ops += lcol.len() as u64;
                }
                colk.clear();
                for &i in &patk {
                    // Exact cancellations keep their (zero) entry: the
                    // row patterns and counts stay consistent without
                    // searching `rows_pat` for removals.
                    colk.push((i, x[i]));
                }
                ops += patk.len() as u64;
                buckets[colk.len().min(m)].push(k);
            }
            self.l_cols[step] = lcol;
        }

        // Map the recorded U rows into slot space now that every basis
        // position has its elimination slot.
        for (s, entries) in u_tmp.iter().enumerate() {
            for &(k, val) in entries {
                let t = self.qinv[k];
                debug_assert!(t > s, "U entry below the diagonal");
                self.u_cols[t].push((s, val));
            }
        }
        self.factorize_finish(ops);
        true
    }

    /// The PR 2 left-looking elimination in static column-count order —
    /// the differential-testing oracle for
    /// [`factorize_dynamic`](Self::factorize_dynamic).
    fn factorize_static(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let m = self.m;
        assert_eq!(cols.len(), m, "one basis column per row required");
        self.factorize_reset();

        // Static Markowitz data: column non-zero counts order the
        // elimination; row counts break pivot ties towards sparse rows.
        let col_nnz = |pos: usize| {
            if cols[pos] < n_struct {
                a.col_nnz(cols[pos])
            } else {
                1
            }
        };
        let mut row_count = vec![0usize; m];
        for k in 0..m {
            if cols[k] < n_struct {
                for &i in a.col(cols[k]).0 {
                    row_count[i] += 1;
                }
            } else {
                row_count[cols[k] - n_struct] += 1;
            }
        }
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_unstable_by_key(|&pos| (col_nnz(pos), pos));

        let mut x = vec![0.0f64; m];
        let mut ops = a.nnz() as u64 + m as u64;
        for (step, &pos) in order.iter().enumerate() {
            // Scatter the basis column into the dense work vector.
            let c = cols[pos];
            if c < n_struct {
                a.scatter_col(&mut x, c);
                ops += a.col_nnz(c) as u64;
            } else {
                x[c - n_struct] = 1.0;
                ops += 1;
            }
            // Sparse lower solve `x ← L⁻¹ x` over the slots so far; zero
            // multipliers are skipped, which is what keeps sparse columns
            // cheap (hyper-sparsity by value rather than by pattern).
            for k in 0..step {
                let t = x[self.p[k]];
                if t == 0.0 {
                    continue;
                }
                for &(row, val) in &self.l_cols[k] {
                    x[row] -= val * t;
                }
                ops += self.l_cols[k].len() as u64;
            }
            ops += step as u64;
            // Threshold partial pivoting with a Markowitz row bias: the
            // sparsest row within PIVOT_THRESHOLD of the largest eligible
            // magnitude becomes the pivot.
            let mut max_abs = 0.0f64;
            for row in 0..m {
                if self.pinv[row] == usize::MAX {
                    let v = x[row].abs();
                    if v > max_abs {
                        max_abs = v;
                    }
                }
            }
            ops += m as u64;
            if max_abs < PIVOT_TOL {
                x.fill(0.0);
                self.work += ops;
                return false; // singular in exact or floating arithmetic
            }
            let cutoff = max_abs * PIVOT_THRESHOLD;
            let mut prow = usize::MAX;
            let mut best_count = usize::MAX;
            for row in 0..m {
                if self.pinv[row] == usize::MAX && x[row].abs() >= cutoff {
                    let count = row_count[row];
                    if count < best_count {
                        best_count = count;
                        prow = row;
                    }
                }
            }
            debug_assert_ne!(prow, usize::MAX);
            self.p[step] = prow;
            self.pinv[prow] = step;
            self.q[step] = pos;
            let diag = x[prow];
            self.u_diag[step] = diag;
            // Split the eliminated column into U (pivoted rows) and L
            // (remaining rows, scaled by the pivot); reset the scratch.
            let inv = 1.0 / diag;
            for row in 0..m {
                let v = x[row];
                if v == 0.0 {
                    continue;
                }
                x[row] = 0.0;
                if row == prow {
                    continue;
                }
                let k = self.pinv[row];
                if k == usize::MAX {
                    self.l_cols[step].push((row, v * inv));
                } else {
                    self.u_cols[step].push((k, v));
                }
            }
            ops += m as u64;
        }
        self.factorize_finish(ops);
        true
    }

    /// Computes the reach of the pattern in `self.pat2` (slot space) over
    /// the dependency graph of `phase`, into `self.reach` (unsorted
    /// postorder). Returns the number of edges examined, for metering.
    fn compute_reach(&mut self, phase: Phase) -> u64 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.mark.fill(0);
            self.stamp = 1;
        }
        let LuFactors {
            p,
            pinv,
            l_cols,
            l_rows,
            u_cols,
            u_rows,
            pat2,
            reach,
            rstack,
            mark,
            stamp,
            ..
        } = self;
        let stamp = *stamp;
        reach.clear();
        let mut edges = 0u64;
        for &s in pat2.iter() {
            if mark[s] == stamp {
                continue;
            }
            mark[s] = stamp;
            rstack.push((s, 0));
            while let Some(&mut (node, ref mut ci)) = rstack.last_mut() {
                // Find the next unvisited successor of `node`.
                let next = {
                    let adj: &[(usize, f64)] = match phase {
                        Phase::LowerFwd => &l_cols[node],
                        Phase::UpperBwd => &u_cols[node],
                        Phase::UpperTFwd => &u_rows[node],
                        Phase::LowerTBwd => &l_rows[p[node]],
                    };
                    let mut found = None;
                    while *ci < adj.len() {
                        let raw = adj[*ci].0;
                        *ci += 1;
                        edges += 1;
                        let child = match phase {
                            Phase::LowerFwd => pinv[raw],
                            _ => raw,
                        };
                        if mark[child] != stamp {
                            found = Some(child);
                            break;
                        }
                    }
                    found
                };
                match next {
                    Some(c) => {
                        mark[c] = stamp;
                        rstack.push((c, 0));
                    }
                    None => {
                        rstack.pop();
                        reach.push(node);
                    }
                }
            }
        }
        edges
    }

    /// FTRAN: overwrites `x` (indexed by constraint row) with `B⁻¹ x`
    /// (indexed by basis position). Scans `x` for its non-zero pattern;
    /// prefer [`ftran_sparse`](Self::ftran_sparse) when the caller knows
    /// the pattern.
    pub fn ftran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        self.apply_border_ftran(x, false);
        let cap = self.hyper_cap();
        self.pat.clear();
        let mut hyper = true;
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                if self.pat.len() >= cap {
                    hyper = false;
                    break;
                }
                self.pat.push(i);
            }
        }
        if hyper {
            self.ftran_hyper(x);
        } else {
            self.ftran_scan(x);
        }
    }

    /// FTRAN with a caller-supplied non-zero pattern: `pattern` must be a
    /// superset of the non-zero row indices of `x` (duplicates allowed).
    /// Skips the `O(m)` pattern scan of [`ftran`](Self::ftran).
    pub fn ftran_sparse(&mut self, x: &mut [f64], pattern: &[usize]) {
        debug_assert_eq!(x.len(), self.m);
        if self.border.is_empty() {
            if pattern.len() <= self.hyper_cap() {
                debug_check_superset(x, pattern);
                self.pat.clear();
                self.pat.extend_from_slice(pattern);
                self.ftran_hyper(x);
            } else {
                self.ftran_scan(x);
            }
            return;
        }
        // The border transforms may light up appended rows outside the
        // caller's pattern: apply them first, tracking the touched rows
        // so the kernel still sees a superset pattern.
        self.pat.clear();
        self.pat.extend_from_slice(pattern);
        self.apply_border_ftran(x, true);
        if self.pat.len() <= self.hyper_cap() {
            debug_check_superset(x, &self.pat);
            self.ftran_hyper(x);
        } else {
            self.ftran_scan(x);
        }
    }

    /// [`ftran_sparse`](Self::ftran_sparse) that additionally captures
    /// the **result's** non-zero pattern (basis positions, a superset,
    /// sorted and duplicate-free) into `result` — the
    /// solve-pattern-threading primitive: the caller seeds the next
    /// dependent solve's DFS from it instead of scanning the dense
    /// vector. Returns `false` when the solve ran on the scanning
    /// kernel (dense RHS), in which case `result` is left empty and the
    /// result must be treated as dense.
    pub fn ftran_sparse_tracked(
        &mut self,
        x: &mut [f64],
        pattern: &[usize],
        result: &mut Vec<usize>,
    ) -> bool {
        debug_assert_eq!(x.len(), self.m);
        result.clear();
        self.pat.clear();
        self.pat.extend_from_slice(pattern);
        if !self.border.is_empty() {
            self.apply_border_ftran(x, true);
        }
        if self.pat.len() > self.hyper_cap() {
            self.ftran_scan(x);
            return false;
        }
        debug_check_superset(x, &self.pat);
        self.track = true;
        self.result_pat.clear();
        self.ftran_hyper(x);
        self.track = false;
        std::mem::swap(result, &mut self.result_pat);
        // Eta/transform targets can repeat reach positions; consumers
        // apply pattern-indexed updates exactly once per position, so
        // canonicalise here (sorted order also keeps them deterministic).
        result.sort_unstable();
        result.dedup();
        true
    }

    /// `x ← e_rᵀ B⁻¹` with the result's non-zero pattern (constraint
    /// rows, a sorted duplicate-free superset) captured into `result`;
    /// `x` must be all-zero on entry (it is overwritten in place).
    /// Returns `false` when the solve cut over to the scanning kernel
    /// (then `result` is empty and the result must be treated as dense).
    pub fn btran_unit_tracked(&mut self, r: usize, x: &mut [f64], result: &mut Vec<usize>) -> bool {
        debug_assert_eq!(x.len(), self.m);
        debug_assert!(x.iter().all(|&v| v == 0.0), "x must be all-zero");
        result.clear();
        x[r] = 1.0;
        if self.hyper_cap() < 1 {
            self.btran_scan(x);
            self.apply_border_btran(x);
            return false;
        }
        self.pat.clear();
        self.pat.push(r);
        self.track = true;
        self.result_pat.clear();
        self.btran_hyper(x);
        self.apply_border_btran(x);
        self.track = false;
        std::mem::swap(result, &mut self.result_pat);
        // Border targets can repeat reach positions; see
        // `ftran_sparse_tracked` for why the pattern is canonicalised.
        result.sort_unstable();
        result.dedup();
        true
    }

    /// Scanning FTRAN kernel: sweeps every elimination slot, skipping
    /// zero multipliers.
    fn ftran_scan(&mut self, x: &mut [f64]) {
        let m = self.m;
        let mut ops = 0u64;
        let mut visited = 0u64;
        let LuFactors {
            p,
            q,
            order,
            l_cols,
            u_cols,
            u_diag,
            etas,
            ft,
            scratch: z,
            ..
        } = self;
        // Forward solve L y = x, in place in elimination order.
        for k in 0..m {
            let t = x[p[k]];
            if t == 0.0 {
                continue;
            }
            for &(row, val) in &l_cols[k] {
                x[row] -= val * t;
            }
            visited += l_cols[k].len() as u64;
        }
        // Gather into slot space.
        for k in 0..m {
            z[k] = x[p[k]];
            x[p[k]] = 0.0;
        }
        // Forrest–Tomlin row transforms, chronologically.
        for tr in ft.iter() {
            let mut dot = 0.0;
            for &(c, mu) in &tr.entries {
                dot += mu * z[c];
            }
            if dot != 0.0 {
                z[tr.t] -= dot;
            }
            visited += tr.entries.len() as u64;
        }
        // Backward solve U z = y in pivotal order.
        for j in (0..m).rev() {
            let k = order[j];
            let zk = z[k];
            if zk == 0.0 {
                continue;
            }
            let zk = zk / u_diag[k];
            z[k] = zk;
            for &(i, val) in &u_cols[k] {
                z[i] -= val * zk;
            }
            visited += u_cols[k].len() as u64;
        }
        // Undo the column permutation into basis-position space, leaving
        // the scratch zeroed for the hyper-sparse kernels.
        for k in 0..m {
            x[q[k]] = z[k];
            z[k] = 0.0;
        }
        ops += 3 * m as u64;
        // Apply the eta file in pivot order: x ← E⁻¹ x per eta.
        for eta in etas.iter() {
            let t = x[eta.r] / eta.pivot;
            x[eta.r] = t;
            if t == 0.0 {
                continue;
            }
            for &(i, val) in &eta.entries {
                x[i] -= val * t;
            }
            visited += eta.entries.len() as u64 + 1;
        }
        self.work += ops + visited;
        self.stats.ftran_solves += 1;
        self.stats.ftran_visited += visited;
    }

    /// Hyper-sparse FTRAN kernel over the reach of `self.pat` (row
    /// indices). Executes the same scatter operations as the scanning
    /// kernel, in the same pivot order, visiting only reached slots.
    fn ftran_hyper(&mut self, x: &mut [f64]) {
        // Pattern rows → starting slots of the L reach.
        let LuFactors {
            pat, pat2, pinv, ..
        } = self;
        pat2.clear();
        for &row in pat.iter() {
            pat2.push(pinv[row]);
        }
        let mut edges = self.compute_reach(Phase::LowerFwd);
        self.reach.sort_unstable();
        let mut visited = 0u64;
        {
            let LuFactors {
                p,
                l_cols,
                reach,
                scratch: z,
                pat2,
                mark,
                stamp,
                ft,
                ..
            } = self;
            // Forward solve L y = x over the reach, ascending slots.
            for &k in reach.iter() {
                let t = x[p[k]];
                if t == 0.0 {
                    continue;
                }
                for &(row, val) in &l_cols[k] {
                    x[row] -= val * t;
                }
                visited += l_cols[k].len() as u64;
            }
            // Gather the (superset) result pattern into slot space; mark
            // the non-zero slots as the seed of the U reach.
            *stamp = stamp.wrapping_add(1);
            if *stamp == 0 {
                mark.fill(0);
                *stamp = 1;
            }
            pat2.clear();
            for &k in reach.iter() {
                let v = x[p[k]];
                x[p[k]] = 0.0;
                if v != 0.0 {
                    z[k] = v;
                    mark[k] = *stamp;
                    pat2.push(k);
                }
            }
            // Forrest–Tomlin row transforms, chronologically; targets may
            // extend the pattern.
            for tr in ft.iter() {
                let mut dot = 0.0;
                for &(c, mu) in &tr.entries {
                    dot += mu * z[c];
                }
                if dot != 0.0 {
                    z[tr.t] -= dot;
                    if mark[tr.t] != *stamp {
                        mark[tr.t] = *stamp;
                        pat2.push(tr.t);
                    }
                }
                visited += tr.entries.len() as u64;
            }
        }
        // Backward solve U z = y over the reach, descending pivotal order.
        edges += self.compute_reach(Phase::UpperBwd);
        let LuFactors {
            q,
            order: _,
            pos,
            u_cols,
            u_diag,
            etas,
            reach,
            scratch: z,
            track,
            result_pat,
            ..
        } = self;
        reach.sort_unstable_by_key(|&k| pos[k]);
        for &k in reach.iter().rev() {
            let zk = z[k];
            if zk == 0.0 {
                continue;
            }
            let zk = zk / u_diag[k];
            z[k] = zk;
            for &(i, val) in &u_cols[k] {
                z[i] -= val * zk;
            }
            visited += u_cols[k].len() as u64;
        }
        // Scatter into basis-position space and re-zero the scratch;
        // the reach is the tracked result pattern.
        for &k in reach.iter() {
            x[q[k]] = z[k];
            z[k] = 0.0;
            if *track {
                result_pat.push(q[k]);
            }
        }
        // Apply the eta file (ProductForm) on the dense result; eta
        // targets extend the result pattern.
        for eta in etas.iter() {
            let t = x[eta.r] / eta.pivot;
            x[eta.r] = t;
            if *track {
                result_pat.push(eta.r);
            }
            if t == 0.0 {
                continue;
            }
            for &(i, val) in &eta.entries {
                x[i] -= val * t;
                if *track {
                    result_pat.push(i);
                }
            }
            visited += eta.entries.len() as u64 + 1;
        }
        self.work += visited + edges + self.reach.len() as u64;
        self.stats.ftran_solves += 1;
        self.stats.ftran_hyper += 1;
        self.stats.ftran_visited += visited + edges;
    }

    /// BTRAN: overwrites `x` (indexed by basis position) with `B⁻ᵀ x`
    /// (indexed by constraint row). Scans `x` for its non-zero pattern;
    /// prefer [`btran_sparse`](Self::btran_sparse) when the caller knows
    /// the pattern.
    pub fn btran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        let cap = self.hyper_cap();
        self.pat.clear();
        let mut hyper = true;
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                if self.pat.len() >= cap {
                    hyper = false;
                    break;
                }
                self.pat.push(i);
            }
        }
        if hyper {
            self.btran_hyper(x);
        } else {
            self.btran_scan(x);
        }
        self.apply_border_btran(x);
    }

    /// BTRAN with a caller-supplied non-zero pattern: `pattern` must be a
    /// superset of the non-zero basis positions of `x`.
    pub fn btran_sparse(&mut self, x: &mut [f64], pattern: &[usize]) {
        debug_assert_eq!(x.len(), self.m);
        if pattern.len() <= self.hyper_cap() {
            debug_check_superset(x, pattern);
            self.pat.clear();
            self.pat.extend_from_slice(pattern);
            self.btran_hyper(x);
        } else {
            self.btran_scan(x);
        }
        self.apply_border_btran(x);
    }

    /// Scanning BTRAN kernel: sweeps every slot in scatter form, skipping
    /// zeros.
    fn btran_scan(&mut self, x: &mut [f64]) {
        let m = self.m;
        let mut visited = 0u64;
        let LuFactors {
            p,
            q,
            order,
            l_rows,
            u_rows,
            u_diag,
            etas,
            ft,
            scratch: z,
            ..
        } = self;
        // Eta transposes first, in reverse pivot order (ProductForm).
        for eta in etas.iter().rev() {
            let mut dot = 0.0;
            for &(i, val) in &eta.entries {
                dot += val * x[i];
            }
            x[eta.r] = (x[eta.r] - dot) / eta.pivot;
            visited += eta.entries.len() as u64 + 1;
        }
        // Gather into slot space.
        for k in 0..m {
            z[k] = x[q[k]];
            x[q[k]] = 0.0;
        }
        // Forward solve Uᵀ z = c in pivotal order, scatter form.
        for j in 0..m {
            let k = order[j];
            let v = z[k];
            if v == 0.0 {
                continue;
            }
            let zk = v / u_diag[k];
            z[k] = zk;
            for &(i, val) in &u_rows[k] {
                z[i] -= val * zk;
            }
            visited += u_rows[k].len() as u64;
        }
        // Transposed Forrest–Tomlin row transforms, reverse order.
        for tr in ft.iter().rev() {
            let zt = z[tr.t];
            if zt == 0.0 {
                continue;
            }
            for &(c, mu) in &tr.entries {
                z[c] -= mu * zt;
            }
            visited += tr.entries.len() as u64;
        }
        // Backward solve Lᵀ y = z in scatter form; every original row is
        // written exactly once and the scratch is left zeroed.
        for k in (0..m).rev() {
            let v = z[k];
            z[k] = 0.0;
            x[p[k]] = v;
            if v == 0.0 {
                continue;
            }
            for &(j, val) in &l_rows[p[k]] {
                z[j] -= val * v;
            }
            visited += l_rows[p[k]].len() as u64;
        }
        self.work += visited + 3 * m as u64;
        self.stats.btran_solves += 1;
        self.stats.btran_visited += visited;
    }

    /// Hyper-sparse BTRAN kernel over the reach of `self.pat` (basis
    /// positions). Same scatter operations as the scanning kernel, same
    /// pivot order, only reached slots visited.
    fn btran_hyper(&mut self, x: &mut [f64]) {
        let mut visited = 0u64;
        {
            let LuFactors { etas, pat, .. } = self;
            // Eta transposes on the dense vector (ProductForm): identical
            // to the scanning kernel; targets extend the pattern.
            for eta in etas.iter().rev() {
                let mut dot = 0.0;
                for &(i, val) in &eta.entries {
                    dot += val * x[i];
                }
                x[eta.r] = (x[eta.r] - dot) / eta.pivot;
                pat.push(eta.r);
                visited += eta.entries.len() as u64 + 1;
            }
        }
        {
            // Pattern positions → starting slots (deduped via marks).
            let LuFactors {
                pat,
                pat2,
                qinv,
                q,
                scratch: z,
                mark,
                stamp,
                ..
            } = self;
            *stamp = stamp.wrapping_add(1);
            if *stamp == 0 {
                mark.fill(0);
                *stamp = 1;
            }
            pat2.clear();
            for &posn in pat.iter() {
                let k = qinv[posn];
                if mark[k] != *stamp {
                    mark[k] = *stamp;
                    pat2.push(k);
                    z[k] = x[q[k]];
                    x[q[k]] = 0.0;
                }
            }
        }
        let mut edges = self.compute_reach(Phase::UpperTFwd);
        {
            let LuFactors {
                pos,
                u_rows,
                u_diag,
                ft,
                reach,
                pat2,
                scratch: z,
                mark,
                stamp,
                ..
            } = self;
            reach.sort_unstable_by_key(|&k| pos[k]);
            // Forward solve Uᵀ z = c over the reach, ascending pivotal
            // order, scatter form.
            for &k in reach.iter() {
                let v = z[k];
                if v == 0.0 {
                    continue;
                }
                let zk = v / u_diag[k];
                z[k] = zk;
                for &(i, val) in &u_rows[k] {
                    z[i] -= val * zk;
                }
                visited += u_rows[k].len() as u64;
            }
            // Seed the Lᵀ reach with every slot the Uᵀ phase may have
            // touched, then the transposed row transforms (which may
            // extend it further).
            *stamp = stamp.wrapping_add(1);
            if *stamp == 0 {
                mark.fill(0);
                *stamp = 1;
            }
            pat2.clear();
            for &k in reach.iter() {
                mark[k] = *stamp;
                pat2.push(k);
            }
            for tr in ft.iter().rev() {
                let zt = z[tr.t];
                if zt == 0.0 {
                    continue;
                }
                for &(c, mu) in &tr.entries {
                    z[c] -= mu * zt;
                    if mark[c] != *stamp {
                        mark[c] = *stamp;
                        pat2.push(c);
                    }
                }
                visited += tr.entries.len() as u64;
            }
        }
        edges += self.compute_reach(Phase::LowerTBwd);
        let LuFactors {
            p,
            l_rows,
            reach,
            scratch: z,
            track,
            result_pat,
            ..
        } = self;
        reach.sort_unstable();
        // Backward solve Lᵀ y = z over the reach, descending slots; the
        // scratch is re-zeroed as each slot is consumed. The reach is
        // the tracked result pattern (constraint rows).
        for &k in reach.iter().rev() {
            let v = z[k];
            z[k] = 0.0;
            x[p[k]] = v;
            if *track {
                result_pat.push(p[k]);
            }
            if v == 0.0 {
                continue;
            }
            for &(j, val) in &l_rows[p[k]] {
                z[j] -= val * v;
            }
            visited += l_rows[p[k]].len() as u64;
        }
        self.work += visited + edges + self.reach.len() as u64;
        self.stats.btran_solves += 1;
        self.stats.btran_hyper += 1;
        self.stats.btran_visited += visited + edges;
    }

    /// Records a pivot: the basic column at position `r` is replaced by a
    /// column whose FTRANed form is `w` (so `w[r]` is the pivot element).
    ///
    /// Under [`UpdateRule::ProductForm`] this appends one eta
    /// (`O(nnz(w))`, never fails). Under [`UpdateRule::ForrestTomlin`]
    /// the stored `U` is modified in place; returns `false` when the
    /// updated diagonal would be numerically degenerate — the caller must
    /// then refactorise from the (already updated) basis columns instead.
    pub fn update(&mut self, r: usize, w: &[f64], opts: &FactorOpts) -> bool {
        debug_assert_eq!(w.len(), self.m);
        debug_assert!(w[r] != 0.0, "pivot element must be non-zero");
        let ok = match opts.update {
            UpdateRule::ProductForm => {
                self.update_product_form(r, w);
                true
            }
            UpdateRule::ForrestTomlin => self.update_forrest_tomlin(r, w),
        };
        if ok {
            self.updates += 1;
            self.stats.updates += 1;
            // Record how close the update file came to the refactor
            // policy bound; peaks past ~1.0 beyond one pivot's overshoot
            // mean the policy is not being enforced.
            let bound = opts.eta_fill_factor * self.lu_nnz as f64;
            if bound > 0.0 {
                let ratio = self.update_nnz() as f64 / bound;
                if ratio > self.stats.growth_peak {
                    self.stats.growth_peak = ratio;
                }
            }
        }
        ok
    }

    /// Product-form update: append one eta holding the transformed column.
    fn update_product_form(&mut self, r: usize, w: &[f64]) {
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.work += entries.len() as u64 + 1;
        self.file_nnz += entries.len() + 1;
        self.stats.update_nnz += entries.len() as u64 + 1;
        self.etas.push(Eta {
            r,
            pivot: w[r],
            entries,
        });
    }

    /// Forrest–Tomlin update: replace the `U` column of the leaving
    /// slot with the spike of the entering column, move the slot to the
    /// end of the pivotal order, and eliminate the out-of-place `U` row
    /// with a recorded row transform.
    ///
    /// Cost per pivot is `O(m + reach + fill)`: the *floating-point*
    /// work (spike accumulation, μ elimination, structure edits) is
    /// reach/fill-bounded, but three pointer-light `Θ(m)` sweeps remain
    /// — the scan of `w` for the spike pattern, the zero-skipping walk
    /// of the trailing pivotal positions, and the cyclic order shift.
    /// What matters for the solve-cost story is that *FTRAN/BTRAN* stay
    /// flat; the update itself is charged for what it touches.
    ///
    /// Returns `false` (leaving the factors untouched) when the new
    /// diagonal is numerically degenerate.
    fn update_forrest_tomlin(&mut self, r: usize, w: &[f64]) -> bool {
        let m = self.m;
        let t = self.qinv[r];
        let mut ops = 0u64;

        // --- Spike v = L̃⁻¹ a_q = U ẑ, where ẑ is `w` mapped to slot
        // space (w = B⁻¹ a_q = U⁻¹ L̃⁻¹ a_q). Computed as a sparse
        // combination of U's columns so the engine need not save the
        // FTRAN intermediate. Scratch `aux` holds the spike. ---
        self.pat2.clear();
        {
            let LuFactors {
                q,
                u_cols,
                u_diag,
                aux,
                pat2,
                mark,
                stamp,
                ..
            } = self;
            *stamp = stamp.wrapping_add(1);
            if *stamp == 0 {
                mark.fill(0);
                *stamp = 1;
            }
            let mut mark_spike = |i: usize, pat2: &mut Vec<usize>| {
                if mark[i] != *stamp {
                    mark[i] = *stamp;
                    pat2.push(i);
                }
            };
            for k in 0..m {
                let zv = w[q[k]];
                if zv == 0.0 {
                    continue;
                }
                mark_spike(k, pat2);
                aux[k] += u_diag[k] * zv;
                for &(i, val) in &u_cols[k] {
                    mark_spike(i, pat2);
                    aux[i] += val * zv;
                }
                ops += u_cols[k].len() as u64 + 1;
            }
        }

        // --- Row elimination multipliers: solve Ūᵀ μ = u_tᵀ over the
        // trailing principal submatrix (slots after `t` in pivotal
        // order), forward in pivotal order, scatter form. The reach of
        // u_t's pattern bounds the non-zero μ's; a zero-skipping sweep of
        // the trailing positions visits exactly those slots. ---
        let mut mu: Vec<(usize, f64)> = Vec::new();
        {
            // Scatter row t of U into scratch (slot space).
            let LuFactors {
                u_rows, scratch: z, ..
            } = self;
            for &(k, val) in &u_rows[t] {
                z[k] = val;
            }
            ops += u_rows[t].len() as u64;
        }
        let pos_t = self.pos[t];
        {
            let LuFactors {
                order,
                u_rows,
                u_diag,
                scratch: z,
                ..
            } = self;
            for j in pos_t + 1..m {
                let c = order[j];
                let v = z[c];
                if v == 0.0 {
                    continue;
                }
                z[c] = 0.0;
                let mc = v / u_diag[c];
                mu.push((c, mc));
                for &(k, val) in &u_rows[c] {
                    z[k] -= val * mc;
                }
                ops += u_rows[c].len() as u64;
            }
        }

        // --- New diagonal d = v[t] − μᵀ v; reject degenerate pivots
        // before any structural mutation so a failed update leaves the
        // factors intact for the caller's refactorisation. ---
        let mut d = self.aux[t];
        let mut spike_max = 0.0f64;
        for &k in &self.pat2 {
            let a = self.aux[k].abs();
            if a > spike_max {
                spike_max = a;
            }
        }
        for &(c, mc) in &mu {
            d -= mc * self.aux[c];
        }
        ops += mu.len() as u64;
        if d.abs() < PIVOT_TOL * (1.0 + spike_max) {
            // Clean the scratches and bail; `aux` holds the spike.
            for &k in &self.pat2 {
                self.aux[k] = 0.0;
            }
            self.work += ops;
            return false;
        }

        // --- Commit. Remove the old column t from U (and its row-wise
        // mirror)... ---
        let old_col = std::mem::take(&mut self.u_cols[t]);
        for &(i, _) in &old_col {
            let rowlist = &mut self.u_rows[i];
            if let Some(at) = rowlist.iter().position(|&(k, _)| k == t) {
                rowlist.swap_remove(at);
            }
            ops += rowlist.len() as u64;
        }
        self.u_nnz -= old_col.len();
        // ...remove the eliminated row t from U's columns... ---
        let old_row = std::mem::take(&mut self.u_rows[t]);
        for &(k, _) in &old_row {
            let collist = &mut self.u_cols[k];
            if let Some(at) = collist.iter().position(|&(i, _)| i == t) {
                collist.swap_remove(at);
            }
            ops += collist.len() as u64;
        }
        self.u_nnz -= old_row.len();
        // ...insert the spike as the new column t (all other slots now
        // precede t in pivotal order, so every entry is above the new
        // diagonal)... ---
        let mut spike_fill = 0usize;
        for idx in 0..self.pat2.len() {
            let i = self.pat2[idx];
            let v = self.aux[i];
            self.aux[i] = 0.0;
            if i == t || v == 0.0 {
                continue;
            }
            self.u_cols[t].push((i, v));
            self.u_rows[i].push((t, v));
            spike_fill += 1;
        }
        self.u_diag[t] = d;
        self.u_nnz += spike_fill;
        ops += spike_fill as u64;
        // ...move slot t to the end of the pivotal order... ---
        {
            let LuFactors { order, pos, .. } = self;
            for j in pos_t + 1..m {
                let s = order[j];
                order[j - 1] = s;
                pos[s] = j - 1;
            }
            order[m - 1] = t;
            pos[t] = m - 1;
        }
        // ...and record the row transform for the solves. ---
        self.file_nnz += mu.len();
        self.stats.update_nnz += mu.len() as u64 + spike_fill as u64;
        if !mu.is_empty() {
            self.ft.push(FtTransform { t, entries: mu });
        }
        self.work += ops;
        true
    }

    /// Refactorisation trigger: a long update file costs every solve, a
    /// fat one costs memory and accuracy; either pays for a fresh LU.
    ///
    /// The fill trigger is `update_nnz > eta_fill_factor · lu_nnz`, where
    /// `lu_nnz = nnz(L) + nnz(U)` *including both diagonals* — it already
    /// counts the `m` unit-diagonal entries of `L`, so no separate `+ m`
    /// term belongs in the bound (an earlier version double-counted it,
    /// firing refactorisations later than documented).
    #[must_use]
    pub fn needs_refactor(&self, opts: &FactorOpts) -> bool {
        self.updates as usize >= opts.refactor_interval as usize
            || self.update_nnz() as f64 > opts.eta_fill_factor * self.lu_nnz as f64
    }
}

/// Explicit dense `m × m` basis inverse — the original engine's
/// representation, kept as the correctness oracle for [`LuFactors`] and
/// selectable via [`LpEngine::DenseInverse`](crate::simplex::LpEngine).
#[derive(Debug, Clone)]
pub struct DenseInverse {
    m: usize,
    /// Row-major `m × m` basis inverse: `binv[i·m + k] = (B⁻¹)[i, k]`
    /// maps constraint row `k` to basis position `i`.
    binv: Vec<f64>,
    scratch: Vec<f64>,
    work: u64,
}

impl DenseInverse {
    /// The identity inverse for an `m`-row basis.
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let mut inv = DenseInverse {
            m,
            binv: vec![0.0; m * m],
            scratch: vec![0.0; m],
            work: 0,
        };
        inv.reset_identity();
        inv
    }

    /// Resets to the identity basis.
    pub fn reset_identity(&mut self) {
        self.binv.fill(0.0);
        for i in 0..self.m {
            self.binv[i * self.m + i] = 1.0;
        }
        self.work += self.m as u64;
    }

    /// Drains the deterministic work metered since the last call.
    pub fn take_work(&mut self) -> u64 {
        std::mem::take(&mut self.work)
    }

    /// Grows the inverse in place by `borders.len()` appended rows whose
    /// basic columns are the new logical slacks: with
    /// `B' = [[B, 0], [N, I]]`, the inverse is exactly
    /// `[[B⁻¹, 0], [−N B⁻¹, I]]`, so each new row of `binv` is the
    /// negated multiplier vector `μ_i = B⁻ᵀ n_i` (same convention as
    /// [`LuFactors::grow`]) followed by the unit diagonal — no
    /// refactorisation, `O((m + k)²)` for the copy.
    pub fn grow(&mut self, borders: &[Vec<(usize, f64)>]) {
        let k = borders.len();
        let m0 = self.m;
        let m = m0 + k;
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m0 {
            binv[i * m..i * m + m0].copy_from_slice(&self.binv[i * m0..(i + 1) * m0]);
        }
        for (i, entries) in borders.iter().enumerate() {
            let r = m0 + i;
            for &(j, mu) in entries {
                binv[r * m + j] = -mu;
            }
            binv[r * m + r] = 1.0;
        }
        self.m = m;
        self.binv = binv;
        self.scratch.resize(m, 0.0);
        self.work += (m * m) as u64;
    }

    /// Gauss–Jordan inversion of the basis matrix with partial pivoting;
    /// the column convention matches [`LuFactors::factorize`]. Returns
    /// `false` on a singular basis.
    pub fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        let m = self.m;
        assert_eq!(cols.len(), m, "one basis column per row required");
        let mut b = vec![0.0f64; m * m];
        for (r, &c) in cols.iter().enumerate() {
            if c < n_struct {
                let (rows, vals) = a.col(c);
                for (&i, &v) in rows.iter().zip(vals) {
                    b[i * m + r] = v;
                }
            } else {
                b[(c - n_struct) * m + r] = 1.0;
            }
        }
        self.binv.fill(0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        for k in 0..m {
            let mut p = k;
            let mut best = b[k * m + k].abs();
            for i in k + 1..m {
                let v = b[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < PIVOT_TOL {
                return false;
            }
            if p != k {
                for j in 0..m {
                    b.swap(k * m + j, p * m + j);
                    self.binv.swap(k * m + j, p * m + j);
                }
            }
            let inv = 1.0 / b[k * m + k];
            for j in 0..m {
                b[k * m + j] *= inv;
                self.binv[k * m + j] *= inv;
            }
            for i in 0..m {
                if i == k {
                    continue;
                }
                let f = b[i * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        let bv = b[k * m + j];
                        let nv = self.binv[k * m + j];
                        b[i * m + j] -= f * bv;
                        self.binv[i * m + j] -= f * nv;
                    }
                }
            }
        }
        self.work += (m * m * m) as u64;
        true
    }

    /// FTRAN: overwrites `x` (row-indexed) with `B⁻¹ x`
    /// (position-indexed); dense `O(m²)`.
    pub fn ftran(&mut self, x: &mut [f64]) {
        let m = self.m;
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.scratch[i] = row.iter().zip(x.iter()).map(|(&v, &r)| v * r).sum();
        }
        x.copy_from_slice(&self.scratch);
        self.work += (m * m) as u64;
    }

    /// BTRAN: overwrites `x` (position-indexed) with `B⁻ᵀ x`
    /// (row-indexed); dense `O(m²)`.
    pub fn btran(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.scratch.fill(0.0);
        for r in 0..m {
            let xr = x[r];
            if xr != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (acc, &v) in self.scratch.iter_mut().zip(row) {
                    *acc += xr * v;
                }
            }
        }
        x.copy_from_slice(&self.scratch);
        self.work += (m * m) as u64;
    }

    /// Copies row `r` of `B⁻¹` (`= e_rᵀ B⁻¹`) into `out`.
    pub fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.binv[r * self.m..(r + 1) * self.m]);
        self.work += self.m as u64;
    }

    /// Rank-one basis-inverse update after a pivot at row `r` with
    /// transformed entering column `w`; dense `O(m²)`.
    pub fn update(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let inv = 1.0 / w[r];
        for j in 0..m {
            self.binv[r * m + j] *= inv;
        }
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = w[i];
            if f != 0.0 {
                for j in 0..m {
                    let v = self.binv[r * m + j];
                    self.binv[i * m + j] -= f * v;
                }
            }
        }
        self.work += (m * m) as u64;
    }
}

/// The engine-facing dispatch over the two representations.
#[derive(Debug, Clone)]
pub(crate) enum Factorization {
    /// Sparse LU with Forrest–Tomlin or product-form updates (boxed:
    /// the LU machinery is an order of magnitude larger than the dense
    /// oracle's handle).
    Lu(Box<LuFactors>),
    /// Explicit dense inverse (oracle / fallback representation).
    Dense(DenseInverse),
}

impl Factorization {
    pub(crate) fn reset_identity(&mut self) {
        match self {
            Factorization::Lu(f) => f.reset_identity(),
            Factorization::Dense(f) => f.reset_identity(),
        }
    }

    pub(crate) fn factorize(&mut self, cols: &[usize], a: &CscMatrix, n_struct: usize) -> bool {
        match self {
            Factorization::Lu(f) => f.factorize(cols, a, n_struct),
            Factorization::Dense(f) => f.factorize(cols, a, n_struct),
        }
    }

    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        match self {
            Factorization::Lu(f) => f.ftran(x),
            Factorization::Dense(f) => f.ftran(x),
        }
    }

    /// BTRAN with the pattern discovered by scanning `x` (property-test
    /// entry point; the engine always knows its patterns and calls
    /// [`btran_sparse`](Self::btran_sparse)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn btran(&mut self, x: &mut [f64]) {
        match self {
            Factorization::Lu(f) => f.btran(x),
            Factorization::Dense(f) => f.btran(x),
        }
    }

    /// BTRAN with a known RHS pattern (superset of non-zero positions);
    /// the dense oracle ignores the hint.
    pub(crate) fn btran_sparse(&mut self, x: &mut [f64], pattern: &[usize]) {
        match self {
            Factorization::Lu(f) => f.btran_sparse(x, pattern),
            Factorization::Dense(f) => f.btran(x),
        }
    }

    /// FTRAN that also records the result's non-zero pattern into
    /// `result` (a superset; exact zeros may appear). Returns `true` when
    /// the pattern is valid — `false` means a dense kernel ran and the
    /// caller must fall back to scanning the dense result.
    pub(crate) fn ftran_sparse_tracked(
        &mut self,
        x: &mut [f64],
        pattern: &[usize],
        result: &mut Vec<usize>,
    ) -> bool {
        match self {
            Factorization::Lu(f) => f.ftran_sparse_tracked(x, pattern, result),
            Factorization::Dense(f) => {
                f.ftran(x);
                false
            }
        }
    }

    /// Unit-vector BTRAN (row `r` of `B⁻¹`) that also records the
    /// result's non-zero pattern into `result`. `out` must be all-zero on
    /// entry. Returns `false` when a dense kernel ran (no pattern).
    pub(crate) fn btran_unit_tracked(
        &mut self,
        r: usize,
        out: &mut [f64],
        result: &mut Vec<usize>,
    ) -> bool {
        match self {
            Factorization::Lu(f) => f.btran_unit_tracked(r, out, result),
            Factorization::Dense(f) => {
                f.btran_unit(r, out);
                false
            }
        }
    }

    /// Applies a pivot update under the configured rule. Returns `false`
    /// when the representation could not absorb the pivot (Forrest–Tomlin
    /// degenerate diagonal) — the caller must refactorise from the
    /// updated basis columns before the next solve.
    pub(crate) fn update(&mut self, r: usize, w: &[f64], opts: &FactorOpts) -> bool {
        match self {
            Factorization::Lu(f) => f.update(r, w, opts),
            Factorization::Dense(f) => {
                f.update(r, w);
                true
            }
        }
    }

    /// Grows the representation in place by appended rows (new logical
    /// slacks basic); `borders[i]` holds `μ_i = B⁻ᵀ n_i` computed by the
    /// caller against the *pre-growth* factors. Exact under both
    /// representations — the LU keeps the border as a recorded transform
    /// (counted against the update-file policy), the dense inverse
    /// materialises the grown inverse outright.
    pub(crate) fn grow(&mut self, borders: Vec<Vec<(usize, f64)>>) {
        match self {
            Factorization::Lu(f) => f.grow(borders),
            Factorization::Dense(f) => f.grow(&borders),
        }
    }

    /// Whether the accumulated updates warrant a fresh factorisation.
    /// The dense inverse is updated in place and never refactorises
    /// mid-run (matching the original engine); the LU representation
    /// follows the update-file policy in `opts`.
    pub(crate) fn needs_refactor(&self, opts: &FactorOpts) -> bool {
        match self {
            Factorization::Lu(f) => f.needs_refactor(opts),
            Factorization::Dense(_) => false,
        }
    }

    pub(crate) fn take_work(&mut self) -> u64 {
        match self {
            Factorization::Lu(f) => f.take_work(),
            Factorization::Dense(f) => f.take_work(),
        }
    }

    /// Drains the LU statistics (zero for the dense oracle).
    pub(crate) fn take_stats(&mut self) -> FactorStats {
        match self {
            Factorization::Lu(f) => f.take_stats(),
            Factorization::Dense(_) => FactorStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf_opts() -> FactorOpts {
        FactorOpts {
            update: UpdateRule::ProductForm,
            ..FactorOpts::default()
        }
    }

    fn ft_opts() -> FactorOpts {
        FactorOpts {
            update: UpdateRule::ForrestTomlin,
            ..FactorOpts::default()
        }
    }

    /// 3×3 matrix with a sparse structure and a known inverse action.
    fn sample_csc() -> CscMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 1 0 1 ]
        CscMatrix::from_columns(
            3,
            &[
                vec![(0, 2.0), (2, 1.0)],
                vec![(1, 3.0)],
                vec![(0, 1.0), (2, 1.0)],
            ],
        )
    }

    #[test]
    fn lu_matches_dense_on_structural_basis() {
        let a = sample_csc();
        let cols = vec![0, 1, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(lu.factorize(&cols, &a, 3));
        assert!(dense.factorize(&cols, &a, 3));
        let rhs = [1.0, 2.0, 3.0];
        let mut x1 = rhs;
        let mut x2 = rhs;
        lu.ftran(&mut x1);
        dense.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }
        let mut y1 = rhs;
        let mut y2 = rhs;
        lu.btran(&mut y1);
        dense.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn mixed_slack_basis_and_unit_btran() {
        let a = sample_csc();
        // Basis: structural col 0, slack of row 1, structural col 2.
        let cols = vec![0, 4, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(lu.factorize(&cols, &a, 3));
        assert!(dense.factorize(&cols, &a, 3));
        for r in 0..3 {
            let mut u1 = vec![0.0; 3];
            let mut u2 = vec![0.0; 3];
            u1[r] = 1.0;
            lu.btran(&mut u1);
            dense.btran_unit(r, &mut u2);
            for (a, b) in u1.iter().zip(&u2) {
                assert!((a - b).abs() < 1e-12, "row {r}: {u1:?} vs {u2:?}");
            }
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let a = sample_csc();
        // Column 0 twice: linearly dependent.
        let cols = vec![0, 0, 2];
        let mut lu = LuFactors::identity(3);
        let mut dense = DenseInverse::identity(3);
        assert!(!lu.factorize(&cols, &a, 3));
        assert!(!dense.factorize(&cols, &a, 3));
    }

    #[test]
    fn updates_track_dense_rank_one_under_both_rules() {
        for opts in [pf_opts(), ft_opts()] {
            let a = sample_csc();
            let cols = vec![3, 4, 5]; // all-slack identity basis
            let mut lu = LuFactors::identity(3);
            let mut dense = DenseInverse::identity(3);
            assert!(lu.factorize(&cols, &a, 3));
            assert!(dense.factorize(&cols, &a, 3));
            // Pivot structural column 0 into row 0.
            let mut w1 = vec![0.0; 3];
            a.axpy_col(&mut w1, 1.0, 0);
            let mut w2 = w1.clone();
            lu.ftran(&mut w1);
            dense.ftran(&mut w2);
            assert!(lu.update(0, &w1, &opts), "{opts:?}");
            dense.update(0, &w2);
            assert_eq!(lu.update_count(), 1);
            let rhs = [5.0, -1.0, 2.0];
            let mut x1 = rhs;
            let mut x2 = rhs;
            lu.ftran(&mut x1);
            dense.ftran(&mut x2);
            for (a, b) in x1.iter().zip(&x2) {
                assert!((a - b).abs() < 1e-12, "{opts:?}: {x1:?} vs {x2:?}");
            }
            let mut y1 = rhs;
            let mut y2 = rhs;
            lu.btran(&mut y1);
            dense.btran(&mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-12, "{opts:?}: {y1:?} vs {y2:?}");
            }
        }
    }

    #[test]
    fn refactor_policy_triggers() {
        let lu = LuFactors::identity(4);
        let tight = FactorOpts {
            refactor_interval: 0,
            eta_fill_factor: 0.0,
            ..FactorOpts::default()
        };
        assert!(lu.needs_refactor(&tight));
        let loose = FactorOpts::default();
        assert!(!lu.needs_refactor(&loose));
    }

    /// Pins the fill-trigger point of the refactor policy: with
    /// `lu_nnz = m` (identity basis) and `eta_fill_factor = 2.0`, the
    /// bound is exactly `2m` update non-zeros — not `2·(m + m)` as the
    /// old double-counted formula had it.
    #[test]
    fn refactor_fill_bound_is_exact() {
        let m = 4;
        let a = CscMatrix::from_columns(m, &[vec![(0, 1.0)]]);
        let mut lu = LuFactors::identity(m);
        assert!(lu.factorize(&[1, 2, 3, 4], &a, 1)); // all-slack: lu_nnz = m
        assert_eq!(lu.lu_nnz(), m);
        let opts = FactorOpts {
            refactor_interval: 1000,
            eta_fill_factor: 2.0,
            update: UpdateRule::ProductForm,
            ..FactorOpts::default()
        };
        // Each eta below carries exactly 2 nnz (pivot + 1 off-diagonal).
        let mut w = vec![0.0; m];
        w[0] = 2.0;
        w[1] = 1.0;
        for k in 0..4 {
            assert!(
                !lu.needs_refactor(&opts),
                "fired early at {} nnz (bound {})",
                lu.update_nnz(),
                2 * m
            );
            assert!(lu.update(0, &w, &opts));
            assert_eq!(lu.update_nnz(), 2 * (k + 1));
        }
        // 8 nnz = 2·m: the bound is inclusive (trigger is strict >).
        assert_eq!(lu.update_nnz(), 2 * m);
        assert!(!lu.needs_refactor(&opts));
        assert!(lu.update(0, &w, &opts));
        // 10 nnz > 2·m: must fire now. Under the old `+ m` double-count
        // the bound would have been 16 and this would still be quiet.
        assert!(lu.needs_refactor(&opts));
    }

    #[test]
    fn forrest_tomlin_keeps_solves_flat_vs_product_form() {
        // After many pivots on the same factorisation, FTRAN under FT
        // must not grow with the pivot count the way the eta file does.
        let m = 16;
        let cols: Vec<Vec<(usize, f64)>> =
            (0..m).map(|j| vec![(j, 2.0), ((j + 1) % m, 1.0)]).collect();
        let a = CscMatrix::from_columns(m, &cols);
        let slack: Vec<usize> = (m..2 * m).collect();
        let mut pf = LuFactors::identity(m);
        let mut ft = LuFactors::identity(m);
        assert!(pf.factorize(&slack, &a, m));
        assert!(ft.factorize(&slack, &a, m));
        let popts = pf_opts();
        let fopts = ft_opts();
        for j in 0..m {
            let mut w1 = vec![0.0; m];
            a.axpy_col(&mut w1, 1.0, j);
            let mut w2 = w1.clone();
            pf.ftran(&mut w1);
            ft.ftran(&mut w2);
            for (x, y) in w1.iter().zip(&w2) {
                assert!((x - y).abs() < 1e-9, "pivot {j}");
            }
            assert!(pf.update(j, &w1, &popts));
            assert!(ft.update(j, &w2, &fopts));
        }
        // Eta file carries one eta per pivot; the FT update file stays
        // bounded by the row-transform fill, far below the eta total.
        assert_eq!(pf.update_count(), m);
        assert_eq!(ft.update_count(), m);
        assert!(
            ft.update_nnz() < pf.update_nnz(),
            "ft {} vs pf {}",
            ft.update_nnz(),
            pf.update_nnz()
        );
        // And the two still agree on solves.
        let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 7.0).collect();
        let mut x1 = rhs.clone();
        let mut x2 = rhs.clone();
        pf.ftran(&mut x1);
        ft.ftran(&mut x2);
        for (x, y) in x1.iter().zip(&x2) {
            assert!((x - y).abs() < 1e-8, "{x1:?} vs {x2:?}");
        }
        let mut y1 = rhs.clone();
        let mut y2 = rhs;
        pf.btran(&mut y1);
        ft.btran(&mut y2);
        for (x, y) in y1.iter().zip(&y2) {
            assert!((x - y).abs() < 1e-8, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn hyper_and_scanning_kernels_agree_exactly() {
        let a = sample_csc();
        let cols = vec![0, 4, 2];
        let mut scan = LuFactors::identity(3);
        let mut hyper = LuFactors::identity(3);
        scan.set_hyper_density_cutoff(0.0);
        hyper.set_hyper_density_cutoff(1.0);
        assert!(scan.factorize(&cols, &a, 3));
        assert!(hyper.factorize(&cols, &a, 3));
        for r in 0..3 {
            let mut x1 = vec![0.0; 3];
            let mut x2 = vec![0.0; 3];
            x1[r] = 1.0;
            x2[r] = 1.0;
            scan.ftran(&mut x1);
            hyper.ftran(&mut x2);
            assert_eq!(x1, x2, "ftran e{r}");
            let mut y1 = vec![0.0; 3];
            let mut y2 = vec![0.0; 3];
            y1[r] = 1.0;
            y2[r] = 1.0;
            scan.btran(&mut y1);
            hyper.btran(&mut y2);
            assert_eq!(y1, y2, "btran e{r}");
        }
    }

    /// Multipliers `μ_i = B⁻ᵀ n_i` for appending `rows` (structural
    /// `(col, val)` lists) below a basis `cols` already factorised in
    /// `fac`: `n_i` scatters each new row's coefficients on the basic
    /// structural columns by their basis position.
    fn borders_for(
        fac: &mut Factorization,
        cols: &[usize],
        n_struct: usize,
        rows: &[Vec<(usize, f64)>],
    ) -> Vec<Vec<(usize, f64)>> {
        let m = cols.len();
        rows.iter()
            .map(|row| {
                let mut n = vec![0.0f64; m];
                let mut pat = Vec::new();
                for &(j, v) in row {
                    if let Some(r) = cols.iter().position(|&c| c == j) {
                        assert!(j < n_struct);
                        n[r] = v;
                        pat.push(r);
                    }
                }
                fac.btran_sparse(&mut n, &pat);
                n.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect()
    }

    /// In-place growth must agree with a from-scratch factorisation of
    /// the grown basis — on solves immediately after the growth *and*
    /// after further pivot updates under both update rules, for both
    /// representations. This is the exactness contract behind
    /// `LpSession::add_rows` absorbing cutting planes without a
    /// refactorisation.
    #[test]
    fn grow_matches_refactorised_basis_under_further_updates() {
        let a = sample_csc(); // 3×3
                              // Append rows [1 2 0] and [0 1 1]: grown matrix is 5×3.
        let new_rows = vec![vec![(0, 1.0), (1, 2.0)], vec![(1, 1.0), (2, 1.0)]];
        let big = a.append_rows(&new_rows);
        let cols = vec![0, 4, 2]; // structural 0, slack of row 1, structural 2
        let grown_cols = vec![0, 4, 2, 3 + 3, 3 + 4]; // + new slacks
        for opts in [pf_opts(), ft_opts()] {
            let mut lu = Factorization::Lu(Box::new(LuFactors::identity(3)));
            let mut dn = Factorization::Dense(DenseInverse::identity(3));
            assert!(lu.factorize(&cols, &a, 3));
            assert!(dn.factorize(&cols, &a, 3));
            let lb = borders_for(&mut lu, &cols, 3, &new_rows);
            let db = borders_for(&mut dn, &cols, 3, &new_rows);
            lu.grow(lb);
            dn.grow(db);
            let mut fresh = Factorization::Lu(Box::new(LuFactors::identity(5)));
            assert!(fresh.factorize(&grown_cols, &big, 3));
            let rhs = [3.0, -1.0, 2.0, 0.5, -4.0];
            for fac in [&mut lu, &mut dn] {
                let mut x1 = rhs;
                let mut x2 = rhs;
                fac.ftran(&mut x1);
                fresh.ftran(&mut x2);
                for (p, q) in x1.iter().zip(&x2) {
                    assert!(
                        (p - q).abs() < 1e-9,
                        "{opts:?}: grown ftran {x1:?} vs {x2:?}"
                    );
                }
                let mut y1 = rhs;
                let mut y2 = rhs;
                fac.btran(&mut y1);
                fresh.btran(&mut y2);
                for (p, q) in y1.iter().zip(&y2) {
                    assert!(
                        (p - q).abs() < 1e-9,
                        "{opts:?}: grown btran {y1:?} vs {y2:?}"
                    );
                }
            }
            // Pivot structural column 1 into the last (appended) row on
            // every representation: updates must keep composing exactly
            // against the border.
            let mut w_big: Vec<f64> = vec![0.0; 5];
            big.axpy_col(&mut w_big, 1.0, 1);
            let mut w_lu = w_big.clone();
            let mut w_dn = w_big.clone();
            let mut w_fresh = w_big;
            lu.ftran(&mut w_lu);
            dn.ftran(&mut w_dn);
            fresh.ftran(&mut w_fresh);
            assert!(lu.update(4, &w_lu, &opts));
            assert!(dn.update(4, &w_dn, &opts));
            assert!(fresh.update(4, &w_fresh, &opts));
            let rhs = [1.0, 0.0, -2.0, 3.0, 1.5];
            let mut want_f = rhs;
            fresh.ftran(&mut want_f);
            let mut want_b = rhs;
            fresh.btran(&mut want_b);
            for fac in [&mut lu, &mut dn] {
                let mut x = rhs;
                fac.ftran(&mut x);
                for (p, q) in x.iter().zip(&want_f) {
                    assert!((p - q).abs() < 1e-9, "{opts:?}: post-update ftran");
                }
                let mut y = rhs;
                fac.btran(&mut y);
                for (p, q) in y.iter().zip(&want_b) {
                    assert!((p - q).abs() < 1e-9, "{opts:?}: post-update btran");
                }
            }
        }
    }

    /// Two growth batches compose: the second border's multipliers are
    /// computed against the once-grown factors and may reference the
    /// first batch's rows.
    #[test]
    fn repeated_growth_batches_compose() {
        let a = sample_csc();
        let rows1 = vec![vec![(0, 1.0), (1, 2.0)]];
        let rows2 = vec![vec![(1, 1.0), (2, 1.0)]];
        let mid = a.append_rows(&rows1);
        let big = mid.append_rows(&rows2);
        let cols = vec![0, 4, 2];
        let mut lu = Factorization::Lu(Box::new(LuFactors::identity(3)));
        assert!(lu.factorize(&cols, &a, 3));
        let b1 = borders_for(&mut lu, &cols, 3, &rows1);
        lu.grow(b1);
        let cols_mid = vec![0, 4, 2, 6];
        let b2 = borders_for(&mut lu, &cols_mid, 3, &rows2);
        lu.grow(b2);
        let mut fresh = Factorization::Lu(Box::new(LuFactors::identity(5)));
        assert!(fresh.factorize(&[0, 4, 2, 6, 7], &big, 3));
        let rhs = [2.0, 1.0, -1.0, 4.0, 0.25];
        let mut x1 = rhs;
        let mut x2 = rhs;
        lu.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9, "{x1:?} vs {x2:?}");
        }
        let mut y1 = rhs;
        let mut y2 = rhs;
        lu.btran(&mut y1);
        fresh.btran(&mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-9, "{y1:?} vs {y2:?}");
        }
    }

    /// Border multipliers count towards the update file, so the refactor
    /// policy eventually folds a long border into a fresh LU.
    #[test]
    fn border_counts_towards_refactor_policy() {
        let a = sample_csc();
        let mut lu = LuFactors::identity(3);
        assert!(lu.factorize(&[0, 4, 2], &a, 3));
        let before = lu.update_nnz();
        lu.grow(vec![vec![(0, 1.0), (2, -2.0)]]);
        assert_eq!(lu.update_nnz(), before + 2);
        let opts = FactorOpts {
            refactor_interval: 1000,
            eta_fill_factor: 0.0,
            ..FactorOpts::default()
        };
        assert!(lu.needs_refactor(&opts));
    }

    #[test]
    fn work_is_metered_and_drained() {
        let a = sample_csc();
        let mut lu = LuFactors::identity(3);
        assert!(lu.factorize(&[0, 1, 2], &a, 3));
        assert!(lu.take_work() > 0);
        assert_eq!(lu.take_work(), 0);
        let stats = lu.take_stats();
        assert_eq!(stats.refactors, 1);
        assert!(stats.refactor_ticks > 0);
        assert_eq!(lu.take_stats(), FactorStats::default());
    }
}
