//! LP relaxations: sparse revised simplex fast path, dense fallback.
//!
//! The unified entry point to the engines is
//! [`LpSession`](crate::LpSession) (see [`crate::backend`]); this module
//! keeps the configuration types ([`LpConfig`], [`LpEngine`],
//! [`PricingRule`]), the result types, the dense two-phase tableau
//! implementation, and the deprecated pre-session shims
//! ([`solve_relaxation_warm`], [`LpSolver`]) retained for one release as
//! differential-test oracles.
//!
//! Two engines sit behind every session's fallback ladder:
//!
//! 1. **Sparse revised simplex** (the private `revised` module, the
//!    default): the
//!    constraint matrix lives once in CSC form on the [`Model`]
//!    ([`Model::csc`]); the basis is held as a sparse LU factorisation
//!    with product-form eta updates ([`crate::factor`]) — or, behind
//!    [`LpEngine::DenseInverse`], as the explicit dense inverse of the
//!    original engine — and columns are priced by sparse dot products.
//!    The dual simplex selects leaving rows by Devex reference-framework
//!    pricing (Dantzig selectable, Bland guard on stalls) and runs a
//!    bound-flipping dual ratio test. It always starts *dual feasible* —
//!    from the all-slack basis on a cold start, or from a caller-supplied
//!    [`Basis`] snapshot on a warm start — so phase 1 is never run.
//!    Branch-and-bound exploits this heavily: a parent's optimal basis
//!    stays dual feasible for its children (only bounds change), and each
//!    child re-optimises in a few dual pivots.
//!
//! 2. **Dense two-phase primal simplex** (fallback, or forced via
//!    [`LpEngine::DenseTableau`]): the original tableau implementation,
//!    kept for the cases the revised engine declines — unbounded
//!    directions, singular or dual-infeasible warm bases, and numerical
//!    trouble. Dantzig pricing with a switch to Bland's rule on stalls,
//!    artificials in phase 1, bound flips in the ratio test.
//!
//! Both engines meter deterministic [`work_ticks`](LpResult::work_ticks)
//! proportional to the floating-point work performed, so
//! [`DeterministicClock`](crate::DeterministicClock) budgets remain
//! reproducible no matter which path a solve takes.

use crate::basis::Basis;
use crate::expr::ConstraintSense;
use crate::factor::{FactorStats, MarkowitzOrdering, UpdateRule};
use crate::model::Model;

/// Numerical tolerance for feasibility and pricing decisions.
pub const TOL: f64 = crate::tol::PRIMAL_FEAS;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution within the bounds.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterLimit,
}

/// Result of solving an LP relaxation.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve outcome.
    pub status: LpStatus,
    /// Objective value (meaningful for [`LpStatus::Optimal`]).
    pub objective: f64,
    /// Values of the model's structural variables.
    pub values: Vec<f64>,
    /// Simplex iterations performed (both phases).
    pub iterations: u64,
    /// Deterministic work performed, in ticks.
    pub work_ticks: u64,
    /// `true` when the dense two-phase tableau produced this result —
    /// either because the revised engine declined the solve (the costly
    /// fallback the degeneracy work targets) or because the caller forced
    /// [`LpEngine::DenseTableau`].
    pub dense_fallback: bool,
    /// Factorisation counters behind this solve (FTRAN/BTRAN visited
    /// non-zeros, kernel selections, update-file growth). All zeros on
    /// dense-tableau and trivial solves.
    pub factor: FactorStats,
}

/// Which LP engine handles a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Revised simplex over a sparse LU factorisation with eta-file
    /// updates ([`crate::factor::LuFactors`]) — the default.
    #[default]
    SparseLu,
    /// Revised simplex over the explicit dense basis inverse
    /// ([`crate::factor::DenseInverse`]) — the previous engine, kept as a
    /// correctness oracle and numerical cross-check.
    DenseInverse,
    /// The dense two-phase primal tableau only (skips the revised engine
    /// entirely) — the slowest, most battle-tested path.
    DenseTableau,
}

/// Pricing rule for the dual simplex leaving-row selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Devex reference-framework weights: rows are scored by
    /// `violation² / weight`, approximating dual steepest edge at a
    /// fraction of the cost. Weights reset when they outgrow the
    /// reference framework. The default.
    #[default]
    Devex,
    /// Classic Dantzig pricing: the largest violation leaves. Cheapest
    /// per iteration, often more iterations overall.
    Dantzig,
    /// Exact dual steepest-edge (Forrest–Goldfarb): rows are scored by
    /// `violation² / ‖B⁻ᵀeᵢ‖²` with exact reference weights, maintained
    /// under basis changes by the standard recurrence (one extra FTRAN
    /// per pivot). The engine falls back to Devex-style unit weights for
    /// the rest of a solve if drift between the recurrence and the exact
    /// leaving-row norm is detected. Fewest iterations; highest
    /// per-iteration cost.
    SteepestEdge,
}

/// Configuration for the simplex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpConfig {
    /// Hard cap on simplex iterations across both phases.
    pub max_iterations: u64,
    /// Deterministic-tick budget for one solve: both engines report
    /// [`LpStatus::IterLimit`] once the solve's metered work reaches this
    /// many ticks (`u64::MAX`, the default, disables the cap). Unlike
    /// `max_iterations` this bounds actual *work*, so callers can slice a
    /// deterministic budget fairly across solves whose per-iteration cost
    /// varies wildly — the root cut loop caps each separation round's
    /// re-solve at a multiple of the root solve's ticks this way.
    pub work_limit: u64,
    /// Engine selection (sparse LU, explicit inverse, or dense tableau).
    pub engine: LpEngine,
    /// Dual pricing rule; a Bland-style anti-cycling guard overrides
    /// either rule when the objective stalls.
    pub pricing: PricingRule,
    /// Eta updates / hot basis reuses tolerated before a refactorisation
    /// (replaces the old hard-coded `REFACTOR_EVERY = 64`).
    pub refactor_interval: u32,
    /// Refactorise when the update file outgrows this multiple of the LU
    /// fill-in (see [`crate::factor::FactorOpts`]).
    pub eta_fill_factor: f64,
    /// How pivots are folded into the sparse LU factorisation: in-place
    /// Forrest–Tomlin updates (the default) or the product-form eta file
    /// (kept as the differential-testing oracle).
    pub update: UpdateRule,
    /// How refactorisation picks pivots: live Markowitz counts on the
    /// active submatrix (the default) or the legacy static column-count
    /// preorder (kept as the differential-testing oracle).
    pub ordering: MarkowitzOrdering,
    /// Enables the bound-flipping (long-step) dual ratio test.
    pub bound_flips: bool,
    /// Anti-degeneracy cost perturbation on *cold* revised-simplex starts:
    /// a tiny deterministic, seed-derived amount is added to every
    /// structural cost before the dual simplex runs, breaking the massive
    /// reduced-cost ties of set-partitioning models. The perturbation is
    /// removed (and the basis re-verified dual feasible) before any result
    /// is reported, so objectives stay exact; if removal fails the engine
    /// silently retries the cold solve unperturbed.
    pub perturb: bool,
    /// Seed the perturbation amounts derive from (the solver forwards its
    /// own seed, keeping whole solves reproducible).
    pub perturb_seed: u64,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig {
            max_iterations: 200_000,
            work_limit: u64::MAX,
            engine: LpEngine::SparseLu,
            pricing: PricingRule::Devex,
            refactor_interval: 96,
            eta_fill_factor: 3.0,
            update: UpdateRule::default(),
            ordering: MarkowitzOrdering::default(),
            bound_flips: true,
            perturb: true,
            perturb_seed: 0,
        }
    }
}

impl LpConfig {
    /// The factorisation policy carried by this configuration.
    #[must_use]
    pub fn factor_opts(&self) -> crate::factor::FactorOpts {
        crate::factor::FactorOpts {
            refactor_interval: self.refactor_interval,
            eta_fill_factor: self.eta_fill_factor,
            update: self.update,
            ordering: self.ordering,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

/// Dense bounded-variable simplex working state.
struct Tableau {
    m: usize,
    /// Total columns: structural + slack + artificial.
    n_cols: usize,
    /// Structural column count.
    n_struct: usize,
    /// First artificial column index.
    art_start: usize,
    /// Row-major `m × n_cols` working matrix `B⁻¹ A`.
    t: Vec<f64>,
    /// Current values of basic variables, per row.
    beta: Vec<f64>,
    /// Basis: column occupying each row.
    basis: Vec<usize>,
    /// Inverse of `basis`: row occupied by each column, `usize::MAX` when
    /// nonbasic. Kept in lockstep with `basis` so value lookups are O(1).
    row_of: Vec<usize>,
    /// Status per column.
    status: Vec<ColStatus>,
    /// Lower bound per column.
    lower: Vec<f64>,
    /// Upper bound per column (may be `f64::INFINITY`).
    upper: Vec<f64>,
    /// Reduced-cost row for the current phase's objective.
    zrow: Vec<f64>,
    /// Current phase cost per column.
    cost: Vec<f64>,
    iterations: u64,
    work_ticks: u64,
}

impl Tableau {
    /// Current value of column `j`.
    fn col_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lower[j],
            ColStatus::AtUpper => self.upper[j],
            ColStatus::Basic => self.beta[self.row_of[j]],
        }
    }

    /// Rebuilds the reduced-cost row `z[j] = c[j] − c_B' T[:,j]` for the
    /// current `cost` vector.
    fn rebuild_zrow(&mut self) {
        let mut z = self.cost.clone();
        for i in 0..self.m {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.t[i * self.n_cols..(i + 1) * self.n_cols];
                for (zj, &tij) in z.iter_mut().zip(row.iter()) {
                    *zj -= cb * tij;
                }
            }
        }
        self.work_ticks += (self.m * self.n_cols) as u64;
        self.zrow = z;
    }

    /// Chooses an entering column, or `None` at optimality.
    ///
    /// `bland` forces lowest-index anti-cycling selection.
    fn choose_entering(&self, bland: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n_cols {
            if self.status[j] == ColStatus::Basic {
                continue;
            }
            // Fixed columns can never move.
            if self.upper[j] - self.lower[j] <= TOL {
                continue;
            }
            let d = self.zrow[j];
            let (eligible, score) = match self.status[j] {
                ColStatus::AtLower => (d < -TOL, -d),
                ColStatus::AtUpper => (d > TOL, d),
                ColStatus::Basic => unreachable!(),
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, d));
            }
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((j, score));
            }
        }
        best.map(|(j, _)| (j, self.zrow[j]))
    }

    /// One primal iteration. Returns `Ok(true)` if progress was made,
    /// `Ok(false)` at optimality, `Err(())` on unboundedness.
    fn iterate(&mut self, bland: bool) -> Result<bool, ()> {
        let Some((q, dq)) = self.choose_entering(bland) else {
            return Ok(false);
        };
        // Direction: +1 if increasing from lower, −1 if decreasing from upper.
        let sigma = if self.status[q] == ColStatus::AtLower {
            1.0
        } else {
            -1.0
        };
        debug_assert!(sigma * dq < 0.0, "entering column must improve");

        // Ratio test: the step is limited by the entering variable's own
        // bound span (a bound flip) and by each basic variable hitting one
        // of its bounds (a pivot).
        let mut best_step = self.upper[q] - self.lower[q]; // may be +inf
        let mut pivot_row: Option<usize> = None;
        for i in 0..self.m {
            let delta = sigma * self.t[i * self.n_cols + q];
            if delta.abs() <= TOL {
                continue;
            }
            let b = self.basis[i];
            let step = if delta > 0.0 {
                // Basic value decreases towards its lower bound.
                (self.beta[i] - self.lower[b]).max(0.0) / delta
            } else {
                // Basic value increases towards its upper bound.
                if self.upper[b].is_infinite() {
                    continue;
                }
                (self.beta[i] - self.upper[b]).min(0.0) / delta
            };
            if step < best_step - crate::tol::ZERO || (pivot_row.is_none() && step <= best_step) {
                best_step = step;
                pivot_row = Some(i);
            }
        }
        if best_step.is_infinite() {
            return Err(()); // unbounded ray
        }
        // Prefer a pure bound flip when it is as tight as every pivot.
        let flip_span = self.upper[q] - self.lower[q];
        let (step, pivot_row) = if flip_span <= best_step {
            (flip_span, None)
        } else {
            (best_step.max(0.0), pivot_row)
        };

        // Apply movement to basic values.
        for i in 0..self.m {
            let delta = sigma * self.t[i * self.n_cols + q];
            if delta != 0.0 {
                self.beta[i] -= delta * step;
            }
        }
        self.iterations += 1;
        self.work_ticks += (2 * self.m * self.n_cols) as u64;

        match pivot_row {
            None => {
                // Pure bound flip.
                self.status[q] = if sigma > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
            }
            Some(r) => {
                let leaving = self.basis[r];
                // Leaving variable rests at the bound it ran into.
                let delta_r = sigma * self.t[r * self.n_cols + q];
                self.status[leaving] = if delta_r > 0.0 {
                    ColStatus::AtLower
                } else {
                    ColStatus::AtUpper
                };
                // Entering variable's new value.
                let enter_from = if sigma > 0.0 {
                    self.lower[q]
                } else {
                    self.upper[q]
                };
                let enter_val = enter_from + sigma * step;
                // Gauss–Jordan elimination on column q.
                let piv = self.t[r * self.n_cols + q];
                debug_assert!(piv.abs() > TOL * 1e-3, "pivot too small: {piv}");
                let inv = 1.0 / piv;
                for j in 0..self.n_cols {
                    self.t[r * self.n_cols + j] *= inv;
                }
                for i in 0..self.m {
                    if i == r {
                        continue;
                    }
                    let factor = self.t[i * self.n_cols + q];
                    if factor != 0.0 {
                        for j in 0..self.n_cols {
                            let v = self.t[r * self.n_cols + j];
                            self.t[i * self.n_cols + j] -= factor * v;
                        }
                    }
                }
                let zfac = self.zrow[q];
                if zfac != 0.0 {
                    for j in 0..self.n_cols {
                        self.zrow[j] -= zfac * self.t[r * self.n_cols + j];
                    }
                }
                self.row_of[leaving] = usize::MAX;
                self.basis[r] = q;
                self.row_of[q] = r;
                self.beta[r] = enter_val;
                self.status[q] = ColStatus::Basic;
            }
        }
        Ok(true)
    }

    /// Drives any artificial variable still basic (at value ~0) out of the
    /// basis, or pins redundant rows.
    fn expel_artificials(&mut self) {
        for r in 0..self.m {
            let b = self.basis[r];
            if b < self.art_start {
                continue;
            }
            // Find a non-artificial column with a usable pivot in this row.
            let mut replacement = None;
            for j in 0..self.art_start {
                if self.status[j] != ColStatus::Basic
                    && self.t[r * self.n_cols + j].abs() > crate::tol::FEAS
                {
                    replacement = Some(j);
                    break;
                }
            }
            match replacement {
                Some(q) => {
                    // Degenerate pivot: artificial is at 0, so the entering
                    // column keeps its current value and beta[r] becomes it.
                    let enter_val = self.col_value(q);
                    let piv = self.t[r * self.n_cols + q];
                    let inv = 1.0 / piv;
                    for j in 0..self.n_cols {
                        self.t[r * self.n_cols + j] *= inv;
                    }
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let factor = self.t[i * self.n_cols + q];
                        if factor != 0.0 {
                            for j in 0..self.n_cols {
                                let v = self.t[r * self.n_cols + j];
                                self.t[i * self.n_cols + j] -= factor * v;
                            }
                        }
                    }
                    self.status[self.basis[r]] = ColStatus::AtLower;
                    self.lower[b] = 0.0;
                    self.upper[b] = 0.0;
                    self.row_of[b] = usize::MAX;
                    self.basis[r] = q;
                    self.row_of[q] = r;
                    self.beta[r] = enter_val;
                    self.status[q] = ColStatus::Basic;
                    self.work_ticks += (self.m * self.n_cols) as u64;
                }
                None => {
                    // Redundant row: pin the artificial to zero so it can
                    // never move again.
                    self.lower[b] = 0.0;
                    self.upper[b] = 0.0;
                    self.beta[r] = 0.0;
                }
            }
        }
    }
}

/// Result of [`solve_relaxation_warm`]: the LP outcome plus, on optimal
/// solves, the basis snapshot to warm-start related solves from.
#[derive(Debug, Clone)]
pub struct WarmLpResult {
    /// The LP outcome.
    pub result: LpResult,
    /// Optimal basis for reuse (present only for [`LpStatus::Optimal`]
    /// solves handled by the revised engine).
    pub basis: Option<Basis>,
}

/// Solves the LP relaxation of `model` with per-variable bound overrides.
///
/// `bounds` must have one `(lower, upper)` pair per model variable; it is
/// how branch-and-bound tightens and fixes binaries without rebuilding the
/// model. Integrality is ignored — binaries are relaxed to their bounds.
#[deprecated(
    note = "open an `LpSession` instead; kept for one release as the differential-test oracle"
)]
#[must_use]
pub fn solve_relaxation(model: &Model, bounds: &[(f64, f64)], config: &LpConfig) -> LpResult {
    #[allow(deprecated)]
    solve_relaxation_warm(model, bounds, config, None).result
}

/// Solves the LP relaxation, optionally warm-starting from a [`Basis`].
///
/// Thin shim over a one-shot [`LpSession`](crate::LpSession); sessions
/// additionally keep the engine hot across solves and accept incremental
/// rows.
#[deprecated(
    note = "open an `LpSession` instead; kept for one release as the differential-test oracle"
)]
#[must_use]
pub fn solve_relaxation_warm(
    model: &Model,
    bounds: &[(f64, f64)],
    config: &LpConfig,
    warm: Option<&Basis>,
) -> WarmLpResult {
    crate::backend::LpSession::open(model, *config).solve(bounds, warm)
}

/// A stateful LP solver handle that keeps the revised-simplex engine warm
/// between solves — the pre-session API, now a thin shim over
/// [`LpSession`](crate::LpSession).
///
/// The shim keeps one session alive and reopens it whenever the model's
/// matrix identity or the engine selection changes, which reproduces the
/// old context behaviour exactly (a context never matched across models
/// either). Unlike a session it cannot accept incremental rows; migrate
/// to [`LpSession`](crate::LpSession) for that.
#[deprecated(
    note = "open an `LpSession` instead; kept for one release as the differential-test oracle"
)]
#[derive(Default)]
pub struct LpSolver {
    session: Option<crate::backend::LpSession>,
}

#[allow(deprecated)]
impl LpSolver {
    /// Creates a solver with no live engine.
    #[must_use]
    pub fn new() -> Self {
        LpSolver::default()
    }

    /// Solves one relaxation, warm-starting from `warm` when provided.
    ///
    /// Semantics are identical to [`solve_relaxation_warm`]; the only
    /// difference is engine reuse across calls.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != model.num_vars()`.
    #[must_use]
    pub fn solve(
        &mut self,
        model: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        warm: Option<&Basis>,
    ) -> WarmLpResult {
        let matrix = model.csc();
        let stale = match &self.session {
            Some(s) => {
                s.config().engine != config.engine
                    || !std::sync::Arc::ptr_eq(&s.model().csc(), &matrix)
            }
            None => true,
        };
        if stale {
            self.session = Some(crate::backend::LpSession::open(model, *config));
        }
        // lint: allow(panic-path) — the `stale` branch directly above stores Some; the Option is never None here by construction
        let session = self.session.as_mut().expect("session opened above");
        session.configure(*config);
        session.solve(bounds, warm)
    }
}

/// Dense two-phase primal fallback (the original engine). The terminal
/// rung of every session's and shim's fallback ladder.
#[must_use]
pub(crate) fn solve_relaxation_dense(
    model: &Model,
    bounds: &[(f64, f64)],
    config: &LpConfig,
) -> LpResult {
    let n = model.num_vars();
    assert_eq!(bounds.len(), n, "one bound pair per variable required");
    let m = model.num_constraints();

    // Quick bound-sanity: crossed overrides mean an infeasible node.
    for &(l, u) in bounds {
        if l > u + TOL {
            return LpResult {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: 0,
                work_ticks: 1,
                dense_fallback: false,
                factor: FactorStats::default(),
            };
        }
    }
    if m == 0 {
        // Pure bound problem: minimise by setting each var to the cheap bound.
        let mut values = vec![0.0; n];
        for (j, &(l, u)) in bounds.iter().enumerate() {
            let c = model
                .objective()
                .iter()
                .find(|&&(v, _)| v.index() == j)
                .map_or(0.0, |&(_, c)| c);
            values[j] = if c >= 0.0 {
                l
            } else if u.is_finite() {
                u
            } else {
                return LpResult {
                    status: LpStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    iterations: 0,
                    work_ticks: 1,
                    dense_fallback: false,
                    factor: FactorStats::default(),
                };
            };
        }
        let objective = model.objective_value(&values);
        return LpResult {
            status: LpStatus::Optimal,
            objective,
            values,
            iterations: 0,
            work_ticks: n as u64,
            dense_fallback: false,
            factor: FactorStats::default(),
        };
    }

    // Column layout: structural | slack (one per Le/Ge row) | artificial (one per row).
    let n_slack = model
        .constraints()
        .iter()
        .filter(|c| c.sense != ConstraintSense::Eq)
        .count();
    let art_start = n + n_slack;
    let n_cols = art_start + m;

    let mut lower = vec![0.0f64; n_cols];
    let mut upper = vec![f64::INFINITY; n_cols];
    for j in 0..n {
        lower[j] = bounds[j].0;
        upper[j] = bounds[j].1;
    }

    // Dense A (m × n_cols) with slacks and artificial placeholders.
    let mut a = vec![0.0f64; m * n_cols];
    let mut rhs = vec![0.0f64; m];
    let mut slack_idx = n;
    for (i, con) in model.constraints().iter().enumerate() {
        for &(v, c) in &con.terms {
            a[i * n_cols + v.index()] += c;
        }
        rhs[i] = con.rhs;
        match con.sense {
            ConstraintSense::Le => {
                a[i * n_cols + slack_idx] = 1.0;
                slack_idx += 1;
            }
            ConstraintSense::Ge => {
                a[i * n_cols + slack_idx] = -1.0;
                slack_idx += 1;
            }
            ConstraintSense::Eq => {}
        }
    }
    debug_assert_eq!(slack_idx, art_start);

    // Initial nonbasic point: every non-artificial column at a finite bound.
    let mut status = vec![ColStatus::AtLower; n_cols];
    for (j, st) in status.iter_mut().enumerate().take(art_start) {
        if lower[j].is_finite() {
            *st = ColStatus::AtLower;
        } else if upper[j].is_finite() {
            *st = ColStatus::AtUpper;
        } else {
            // Free variable: pin it at 0 by splitting bounds — croxmap
            // models never produce these, treat 0 as a pseudo lower bound.
            lower[j] = 0.0;
            *st = ColStatus::AtLower;
        }
    }

    // Residuals r = b − A x̄ determine artificial signs and values.
    let xbar: Vec<f64> = (0..art_start)
        .map(|j| match status[j] {
            ColStatus::AtLower => lower[j],
            ColStatus::AtUpper => upper[j],
            ColStatus::Basic => unreachable!("no basics yet"),
        })
        .collect();
    let mut beta = vec![0.0f64; m];
    let mut basis = vec![0usize; m];
    for i in 0..m {
        let mut r = rhs[i];
        for (j, &xj) in xbar.iter().enumerate() {
            let c = a[i * n_cols + j];
            if c != 0.0 {
                r -= c * xj;
            }
        }
        let sign = if r < 0.0 { -1.0 } else { 1.0 };
        let art = art_start + i;
        a[i * n_cols + art] = sign;
        // Scale the row so the artificial's tableau column is +e_i:
        // B = diag(sign) ⇒ B⁻¹ row i multiplies by sign.
        if sign < 0.0 {
            for j in 0..n_cols {
                a[i * n_cols + j] = -a[i * n_cols + j];
            }
        }
        beta[i] = r.abs();
        basis[i] = art;
        status[art] = ColStatus::Basic;
    }

    let mut row_of = vec![usize::MAX; n_cols];
    for (i, &b) in basis.iter().enumerate() {
        row_of[b] = i;
    }
    let mut tab = Tableau {
        m,
        n_cols,
        n_struct: n,
        art_start,
        t: a,
        beta,
        basis,
        row_of,
        status,
        lower,
        upper,
        zrow: vec![0.0; n_cols],
        cost: vec![0.0; n_cols],
        iterations: 0,
        work_ticks: (m * n_cols) as u64,
    };

    // ---- Phase 1: minimise sum of artificials ----
    for j in art_start..n_cols {
        tab.cost[j] = 1.0;
    }
    tab.rebuild_zrow();
    let mut iters_left = config.max_iterations;
    let mut stall = 0u32;
    let mut last_obj = f64::INFINITY;
    loop {
        let phase1_obj: f64 = tab
            .beta
            .iter()
            .zip(tab.basis.iter())
            .fold(
                0.0,
                |acc, (&b, &col)| {
                    if col >= art_start {
                        acc + b
                    } else {
                        acc
                    }
                },
            );
        if phase1_obj <= TOL * (1.0 + m as f64) {
            break;
        }
        if iters_left == 0 || tab.work_ticks >= config.work_limit {
            return finish(model, &tab, LpStatus::IterLimit);
        }
        if phase1_obj < last_obj - TOL {
            stall = 0;
            last_obj = phase1_obj;
        } else {
            stall += 1;
        }
        let bland = stall > 64;
        match tab.iterate(bland) {
            Ok(true) => iters_left -= 1,
            Ok(false) => break, // phase-1 optimal
            Err(()) => break,   // cannot happen: phase-1 objective bounded below
        }
    }
    let phase1_obj: f64 = tab
        .beta
        .iter()
        .zip(tab.basis.iter())
        .fold(
            0.0,
            |acc, (&b, &col)| if col >= art_start { acc + b } else { acc },
        );
    if phase1_obj > crate::tol::FEAS {
        return finish(model, &tab, LpStatus::Infeasible);
    }
    tab.expel_artificials();
    // Freeze all artificials at zero.
    for j in tab.art_start..tab.n_cols {
        if tab.status[j] != ColStatus::Basic {
            tab.lower[j] = 0.0;
            tab.upper[j] = 0.0;
            tab.status[j] = ColStatus::AtLower;
        }
    }

    // ---- Phase 2: minimise the real objective ----
    tab.cost = vec![0.0; tab.n_cols];
    for &(v, c) in model.objective() {
        tab.cost[v.index()] = c;
    }
    tab.rebuild_zrow();
    stall = 0;
    last_obj = f64::INFINITY;
    loop {
        if iters_left == 0 || tab.work_ticks >= config.work_limit {
            return finish(model, &tab, LpStatus::IterLimit);
        }
        let obj: f64 = current_objective(model, &tab);
        if obj < last_obj - TOL {
            stall = 0;
            last_obj = obj;
        } else {
            stall += 1;
        }
        let bland = stall > 64;
        match tab.iterate(bland) {
            Ok(true) => iters_left -= 1,
            Ok(false) => return finish(model, &tab, LpStatus::Optimal),
            Err(()) => return finish(model, &tab, LpStatus::Unbounded),
        }
    }
}

/// Objective of the current point under the tableau's phase costs,
/// evaluated in O(m + n) without materialising the solution vector.
fn current_objective(_model: &Model, tab: &Tableau) -> f64 {
    let mut obj = 0.0;
    for i in 0..tab.m {
        obj += tab.cost[tab.basis[i]] * tab.beta[i];
    }
    for j in 0..tab.n_cols {
        match tab.status[j] {
            ColStatus::Basic => {}
            ColStatus::AtLower => obj += tab.cost[j] * tab.lower[j],
            ColStatus::AtUpper => obj += tab.cost[j] * tab.upper[j],
        }
    }
    obj
}

fn extract_values(tab: &Tableau) -> Vec<f64> {
    let mut values = vec![0.0f64; tab.n_struct];
    for (j, val) in values.iter_mut().enumerate() {
        *val = match tab.status[j] {
            ColStatus::AtLower => tab.lower[j],
            ColStatus::AtUpper => tab.upper[j],
            ColStatus::Basic => tab.beta[tab.row_of[j]],
        };
    }
    values
}

fn finish(model: &Model, tab: &Tableau, status: LpStatus) -> LpResult {
    let values = extract_values(tab);
    let objective = match status {
        LpStatus::Optimal | LpStatus::IterLimit => model.objective_value(&values),
        LpStatus::Infeasible => f64::INFINITY,
        LpStatus::Unbounded => f64::NEG_INFINITY,
    };
    LpResult {
        status,
        objective,
        values,
        iterations: tab.iterations,
        work_ticks: tab.work_ticks,
        dense_fallback: true,
        factor: FactorStats::default(),
    }
}

/// Convenience: solve the relaxation with the model's own bounds.
#[deprecated(
    note = "open an `LpSession` instead; kept for one release as the differential-test oracle"
)]
#[must_use]
pub fn solve_model_relaxation(model: &Model, config: &LpConfig) -> LpResult {
    let bounds: Vec<(f64, f64)> = model
        .variables()
        .iter()
        .map(|v| (v.lower, v.upper))
        .collect();
    #[allow(deprecated)]
    solve_relaxation(model, &bounds, config)
}

#[cfg(test)]
#[allow(deprecated)] // oracle tests for the deprecated shims
mod tests {
    use super::*;
    use crate::Model;

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    #[test]
    fn simple_two_var_lp() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6, 0<=x,y  → min -(x+y)
        // Optimum at intersection: x = 8/5, y = 6/5, obj = -14/5.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", m.expr([(x, 1.0), (y, 2.0)]).leq(4.0));
        m.add_constraint("c2", m.expr([(x, 3.0), (y, 1.0)]).leq(6.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(
            (r.objective + 14.0 / 5.0).abs() < 1e-6,
            "obj {}",
            r.objective
        );
        assert!((r.values[0] - 1.6).abs() < 1e-6);
        assert!((r.values[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 3, x <= 2, y <= 2 → obj 3.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0)]).eq(3.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 3.0).abs() < 1e-6);
        assert!((r.values[0] + r.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", m.expr([(x, 1.0)]).geq(2.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", m.expr([(x, 1.0), (y, -1.0)]).leq(1.0));
        m.set_objective(m.expr([(y, -1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected_via_bound_flips() {
        // min -x - 2y with x,y in [0,1] and x + y <= 1.5 → y=1, x=0.5.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).leq(1.5));
        m.set_objective(m.expr([(x, -1.0), (y, -2.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective + 2.5).abs() < 1e-6, "obj {}", r.objective);
        assert!((r.values[1] - 1.0).abs() < 1e-6);
        assert!((r.values[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", m.expr([(x, 1.0), (y, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(x, 1.0), (y, 3.0)]));
        // Fix x to 0: forced y = 1.
        let r = solve_relaxation(&m, &[(0.0, 0.0), (0.0, 1.0)], &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[1] - 1.0).abs() < 1e-6);
        assert!((r.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn crossed_override_is_infeasible() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(m.expr([(x, 1.0)]));
        m.add_constraint("c", m.expr([(x, 1.0)]).leq(1.0));
        let r = solve_relaxation(&m, &[(1.0, 0.0)], &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn no_constraints_bound_problem() {
        let mut m = Model::new();
        let x = m.add_continuous("x", -1.0, 4.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.set_objective(m.expr([(x, 1.0), (y, -1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert_eq!(r.values, vec![-1.0, 2.0]);
        assert_eq!(r.objective, -3.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints through the optimum.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        m.add_constraint("c2", m.expr([(x, 1.0)]).leq(1.0));
        m.add_constraint("c3", m.expr([(y, 1.0)]).leq(1.0));
        m.add_constraint("c4", m.expr([(x, 2.0), (y, 2.0)]).leq(2.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 2 stated twice: phase 1 must expel or pin artificials.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.add_constraint("e1", m.expr([(x, 1.0), (y, 1.0)]).eq(2.0));
        m.add_constraint("e2", m.expr([(x, 1.0), (y, 1.0)]).eq(2.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(r.objective.abs() < 1e-6);
        assert!((r.values[0] + r.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn covering_lp_fractional_bound() {
        // Set cover LP relaxation: 3 elements, pairs — classic 1/2 solution.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("e1", m.expr([(a, 1.0), (b, 1.0)]).geq(1.0));
        m.add_constraint("e2", m.expr([(b, 1.0), (c, 1.0)]).geq(1.0));
        m.add_constraint("e3", m.expr([(a, 1.0), (c, 1.0)]).geq(1.0));
        m.set_objective(m.expr([(a, 1.0), (b, 1.0), (c, 1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.5).abs() < 1e-6, "obj {}", r.objective);
    }

    #[test]
    fn negative_rhs_rows() {
        // −x ≤ −2 with x ∈ [0, 5]: optimum of min x is 2.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_constraint("c", m.expr([(x, -1.0)]).leq(-2.0));
        m.set_objective(m.expr([(x, 1.0)]));
        let r = solve_model_relaxation(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 2.0).abs() < 1e-6);
    }
}
