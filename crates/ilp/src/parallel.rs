//! Parallel branch-and-bound: work-stealing tree search with racing
//! dive/LNS workers over per-thread [`LpSession`]s.
//!
//! The sequential root phase (presolve → root LP → root cuts → root
//! dives) always runs first on the caller's thread; this module takes
//! over for the tree phase when [`SolverConfig::with_threads`] asks for
//! more than one worker. Each worker owns a private [`LpSession`] opened
//! on the *cut-grown* root view, so the tightened relaxation every node
//! inherits sequentially is inherited here too — the session is the
//! per-thread state, the model view is the shared read-only state.
//!
//! Two coordination modes ([`ParallelMode`]):
//!
//! * **[`ParallelMode::Deterministic`]** (the default) — an epoch-barrier
//!   scheme. A coordinator keeps the one global open-node heap, ordered
//!   by (bound, node-id) exactly like the sequential best-first heap, and
//!   each epoch deals the best nodes round-robin to the workers. Each
//!   worker plunges depth-first through its dealt batch under the
//!   epoch-frozen cutoff — up to a fixed node quota, children expanded
//!   newest-first like the sequential tie-break — so deep integral
//!   leaves are reached within an epoch instead of one level per
//!   barrier. The coordinator waits for *all* results, then folds them
//!   back in fixed worker order: node ids, incumbent acceptance, clock
//!   aggregation and frontier re-queuing are all resolved
//!   deterministically, so two runs at the same thread count produce
//!   identical incumbent streams, node counts and bounds. Every few
//!   epochs one worker races an LNS round (seed-offset from the solver
//!   seed) against the tree instead of expanding nodes.
//! * **[`ParallelMode::WorkStealing`]** — free-running workers over
//!   per-worker deques (LIFO locally for a plunging bias, FIFO steals of
//!   the best untouched subtrees). Pruning reads the atomic incumbent
//!   cutoff on every node, incumbents publish through a mutex-protected
//!   exchange, and the last worker switches to racing diversified LNS
//!   rounds once a first incumbent exists. Fastest wall-clock, but node
//!   counts and the incumbent *timing* vary run-to-run (the final
//!   objective does not: the tree is exhausted or the budget is shared).
//!
//! Work-tick accounting aggregates per-worker [`DeterministicClock`]s
//! into the one [`crate::SolveResult`] total: deterministic budgets mean
//! the same amount of *work* at any thread count — parallelism spends it
//! in less wall time.
//!
//! # Memory-ordering contract
//!
//! The `Exchange` atomics split into two classes, and the split is
//! what every `Ordering` choice below follows (each `Relaxed` site
//! carries a `lint: allow(relaxed-ordering)` waiver restating its case):
//!
//! * **Monotone statistics counters** — `ticks`, `nodes`, `steals`.
//!   These only ever increase, no control decision needs the *latest*
//!   value, and no data is published through them: a stale read of
//!   `ticks`/`nodes` merely delays a budget stop by one node, and the
//!   final totals are read after the `thread::scope` join (which is
//!   itself a full happens-before edge covering every worker write).
//!   `Relaxed` is therefore sound for every access — there is no
//!   payload whose visibility an `Acquire`/`Release` pair would order.
//! * **Protocol state** — everything a worker *acts on*:
//!   - `stop` is written with `Release` and read with `Acquire`: the
//!     store must not sink below the budget check that triggered it,
//!     and a reader that observes it must also observe the writer's
//!     preceding bound drops.
//!   - `in_flight` uses `Release` on the initial store, `AcqRel` on
//!     every decrement and `Acquire` on reads. The protocol is
//!     *children enqueued before the parent retires*, so the count can
//!     only reach zero when the tree is truly exhausted; the `AcqRel`
//!     decrement makes each retirement synchronize with the reader
//!     that concludes "exhausted" and tears the search down.
//!   - `best_bits` / `dropped_bits` go through `atomic_min_f64`
//!     (`Acquire` load, `AcqRel` compare-exchange): the cutoff a
//!     worker prunes against must be at least as fresh as the
//!     incumbent publication it raced with, and the publishing side
//!     pairs the CAS with the mutex-protected `ExchangeInner` update.
//!   - the `alive` worker counter (scope-local) is `Release` on
//!     decrement / `Acquire` on read so the streaming loop's exit
//!     happens-after every worker's final incumbent publication.
//!
//! # Lock-order contract
//!
//! This module owns two of the workspace's three locks: the per-worker
//! steal `deques` (`Vec<Mutex<VecDeque<..>>>`) and the incumbent
//! exchange `inner` (`Mutex<ExchangeInner>`); the third is the trace
//! `sink` (`trace.rs`). The contract, statically proven by
//! `croxmap-lint`'s `lock-order` pass and committed as
//! `docs/lock_order.md`, is that **no code path acquires a second lock
//! while holding one**: every critical section here is self-contained
//! (push/pop/steal under one deque guard, publish/read under the one
//! exchange guard), and trace emission never happens under a deque or
//! exchange guard. The acquisition graph therefore has no edges, any
//! nesting someone introduces shows up as a new edge in the committed
//! contract, and any cyclic nesting fails the build outright.
//!
//! [`LpSession`]: crate::backend::LpSession
//! [`SolverConfig::with_threads`]: crate::SolverConfig::with_threads
//! [`DeterministicClock`]: crate::DeterministicClock

use crate::basis::Basis;
use crate::clock::DeterministicClock;
use crate::expr::VarId;
use crate::factor::FactorStats;
use crate::model::Model;
use crate::solution::{IncumbentEvent, Solution};
use crate::solver::{NodeExpansion, Search, SolverConfig};
use crate::tol;
use crate::trace::{Phase, PhaseBreakdown, SpanEvent};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering as AtomicOrd};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How the parallel tree phase coordinates its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Epoch-synchronised search: node ordering and incumbent acceptance
    /// are resolved by (bound, node-id) priority at a barrier, so results
    /// — incumbent-event sequence, node count, bound, deterministic time
    /// — are reproducible run-to-run at a fixed thread count.
    #[default]
    Deterministic,
    /// Free-running work-stealing search: maximum throughput; the final
    /// objective is unchanged but node counts and incumbent timing vary
    /// run-to-run.
    WorkStealing,
}

/// What the parallel driver did, reported in
/// [`crate::SolveResult::parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker threads used for the tree phase.
    pub threads: usize,
    /// Coordination mode.
    pub mode: ParallelMode,
    /// Synchronisation epochs (deterministic mode; `0` when stealing).
    pub epochs: u64,
    /// Nodes taken from another worker's deque (stealing mode; `0` when
    /// deterministic).
    pub steals: u64,
    /// Incumbents contributed by the racing LNS workers rather than the
    /// tree itself.
    pub heuristic_incumbents: u64,
}

/// Lock-light shared state for free-running workers: the atomic
/// incumbent cutoff read on every node, the aggregate work clock, the
/// stealing deque bookkeeping and the mutex-protected incumbent stream.
pub(crate) struct Exchange {
    /// Best incumbent objective as `f64` bits (`+inf` when none); the
    /// atomic cutoff every worker prunes against.
    best_bits: AtomicU64,
    /// Aggregate work ticks: root phase plus every worker's LP charges.
    ticks: AtomicU64,
    /// Nodes expanded across all workers.
    nodes: AtomicU64,
    /// Min bound over nodes dropped unresolved (budget stop, iteration
    /// cap), as `f64` bits; `+inf` when every node resolved.
    dropped_bits: AtomicU64,
    /// Open nodes queued or mid-expansion; `0` means the tree is
    /// exhausted (children are enqueued before the parent retires, so
    /// the count never dips to zero while work remains).
    in_flight: AtomicI64,
    /// Cooperative stop flag (budget or node limit hit).
    stop: AtomicBool,
    steals: AtomicU64,
    limit_ticks: u64,
    node_limit: u64,
    inner: Mutex<ExchangeInner>,
}

struct ExchangeInner {
    best: Option<Arc<Solution>>,
    events: Vec<IncumbentEvent>,
    /// Prefix of `events` already streamed to the user callback.
    published: usize,
}

/// Lowers `a` (an `f64` stored as bits) to `val` if `val` is smaller,
/// comparing as floats — bit order and float order disagree below zero.
fn atomic_min_f64(a: &AtomicU64, val: f64) {
    let mut cur = a.load(AtomicOrd::Acquire);
    while f64::from_bits(cur) > val {
        match a.compare_exchange_weak(cur, val.to_bits(), AtomicOrd::AcqRel, AtomicOrd::Acquire) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

impl Exchange {
    fn new(cfg: &SolverConfig, root_ticks: u64, incumbent: Option<Arc<Solution>>) -> Self {
        let best = incumbent.as_ref().map_or(f64::INFINITY, |s| s.objective());
        let limit_ticks = if cfg.det_time_limit.is_finite() {
            DeterministicClock::seconds_to_ticks(cfg.det_time_limit)
        } else {
            u64::MAX
        };
        Exchange {
            best_bits: AtomicU64::new(best.to_bits()),
            ticks: AtomicU64::new(root_ticks),
            nodes: AtomicU64::new(0),
            dropped_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            in_flight: AtomicI64::new(0),
            stop: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            limit_ticks,
            node_limit: cfg.node_limit,
            inner: Mutex::new(ExchangeInner {
                best: incumbent,
                events: Vec::new(),
                published: 0,
            }),
        }
    }

    /// Charges worker LP work to the aggregate clock.
    pub(crate) fn charge(&self, ticks: u64) {
        // lint: allow(relaxed-ordering) — monotone statistics counter; no payload is published through it and a stale read only delays a budget stop by one node
        self.ticks.fetch_add(ticks, AtomicOrd::Relaxed);
    }

    pub(crate) fn count_node(&self) {
        // lint: allow(relaxed-ordering) — monotone statistics counter; final total is read after the scope join, which already orders every worker write
        self.nodes.fetch_add(1, AtomicOrd::Relaxed);
    }

    fn seconds(&self) -> f64 {
        // lint: allow(relaxed-ordering) — event timestamps tolerate counter staleness; the mutex in publish() orders the event stream itself
        DeterministicClock::ticks_to_seconds(self.ticks.load(AtomicOrd::Relaxed))
    }

    /// Aggregate deterministic seconds left in the global budget.
    pub(crate) fn remaining(&self) -> f64 {
        DeterministicClock::ticks_to_seconds(
            self.limit_ticks
                // lint: allow(relaxed-ordering) — budget check on a monotone counter; a stale read admits at most one extra node, never unsoundness
                .saturating_sub(self.ticks.load(AtomicOrd::Relaxed)),
        )
    }

    /// True once the shared budget is spent or a stop was requested.
    pub(crate) fn exhausted(&self) -> bool {
        self.stop.load(AtomicOrd::Acquire)
            // lint: allow(relaxed-ordering) — monotone budget counter; the stop *decision* publishes via the Release store to `stop` above, not via this read
            || self.ticks.load(AtomicOrd::Relaxed) >= self.limit_ticks
            // lint: allow(relaxed-ordering) — same as the tick counter: monotone, decision-tolerant of staleness by one node
            || self.nodes.load(AtomicOrd::Relaxed) >= self.node_limit
    }

    /// Current global incumbent objective (`+inf` when none).
    pub(crate) fn best_objective(&self) -> f64 {
        f64::from_bits(self.best_bits.load(AtomicOrd::Acquire))
    }

    /// Publishes a candidate incumbent. The lock arbitrates races: the
    /// candidate must still beat the *global* best when the lock is held,
    /// and its event is stamped with the aggregate clock — so the stream
    /// stays strictly improving and time-monotone. Returns the accepted
    /// solution for the worker to adopt locally, or `None` if a better
    /// incumbent landed first.
    pub(crate) fn publish(&self, values: Vec<f64>, objective: f64) -> Option<Arc<Solution>> {
        // lint: allow(panic-path) — a poisoned exchange means a worker already panicked; propagating the panic is the correct teardown
        let mut inner = self.inner.lock().expect("exchange lock poisoned");
        if inner
            .best
            .as_ref()
            .is_some_and(|b| objective >= b.objective() - tol::OBJ_AGREE)
        {
            return None;
        }
        let sol = Arc::new(Solution::new(values, objective));
        inner.best = Some(Arc::clone(&sol));
        let det_time = self.seconds();
        inner.events.push(IncumbentEvent {
            objective,
            det_time,
            solution: Solution::clone(&sol),
        });
        atomic_min_f64(&self.best_bits, objective);
        Some(sol)
    }

    /// Records the bound of a node retired without being resolved.
    fn drop_bound(&self, bound: f64) {
        atomic_min_f64(&self.dropped_bits, bound);
    }

    /// Events published since the last drain (streamed to the user
    /// callback by the driver's main thread).
    fn drain_new(&self) -> Vec<IncumbentEvent> {
        // lint: allow(panic-path) — a poisoned exchange means a worker already panicked; propagating the panic is the correct teardown
        let mut inner = self.inner.lock().expect("exchange lock poisoned");
        let fresh = inner.events[inner.published..].to_vec();
        inner.published = inner.events.len();
        fresh
    }

    /// Final state: the global incumbent and the full event stream.
    fn take_all(&self) -> (Option<Arc<Solution>>, Vec<IncumbentEvent>) {
        // lint: allow(panic-path) — a poisoned exchange means a worker already panicked; propagating the panic is the correct teardown
        let mut inner = self.inner.lock().expect("exchange lock poisoned");
        let events = std::mem::take(&mut inner.events);
        (inner.best.take(), events)
    }
}

/// Golden-ratio seed offset: worker `id` explores with its own RNG
/// stream so racing dives/LNS rounds diversify instead of duplicating.
fn worker_seed(seed: u64, id: usize) -> u64 {
    seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What the tree phase proved, handed back to
/// [`crate::Solver`]'s result assembly.
pub(crate) struct TreeOutcome {
    /// Best proven bound for the whole tree (`+inf` = exhausted with no
    /// feasible point ⇒ integer-infeasible).
    pub bound: f64,
    pub stats: ParallelStats,
}

/// Runs the tree phase of `search` on `cfg.threads` workers and folds
/// every worker's results — incumbent, events, nodes, ticks, factor and
/// fallback counts — back into the root search context.
///
/// The caller's root phase already ran: `search.session` holds the
/// cut-grown view (cloned here as the shared worker view) and
/// `root_warm` is the final root basis every worker seeds from.
pub(crate) fn run_tree(
    search: &mut Search<'_>,
    root_bounds: &[(f64, f64)],
    root_warm: Option<&Basis>,
    callback: &mut dyn FnMut(&IncumbentEvent),
) -> TreeOutcome {
    // The workers' shared read-only view: the session's model carries the
    // root cut rows, so the parallel tree prunes against the same
    // tightened relaxation the sequential tree would.
    let view = search.session.model().clone();
    match search.cfg.parallel_mode {
        ParallelMode::Deterministic => {
            run_deterministic(search, &view, root_bounds, root_warm, callback)
        }
        ParallelMode::WorkStealing => {
            run_work_stealing(search, &view, root_bounds, root_warm, callback)
        }
    }
}

// ---------------------------------------------------------------------
// Work-stealing driver
// ---------------------------------------------------------------------

/// An open node in transit between workers: the branching decisions from
/// the root (sparse — bounds rebuild in O(depth)), the inherited bound,
/// the edge that created it (for pseudo-costs) and the parent's basis.
struct PNode {
    fixes: Vec<(u32, f64, f64)>,
    bound: f64,
    /// `(var, up-branch?)`; `None` for the root.
    edge: Option<(u32, bool)>,
    warm: Option<Arc<Basis>>,
}

/// Per-worker tallies folded into the root search after the join.
struct WorkerOut {
    nodes: u64,
    fallbacks: u64,
    factor: FactorStats,
    lns_hits: u64,
    phases: PhaseBreakdown,
    /// The worker's whole span buffer, appended to the root's in worker
    /// order after the join (empty when tracing is off).
    trace: Vec<SpanEvent>,
}

fn run_work_stealing(
    search: &mut Search<'_>,
    view: &Model,
    root_bounds: &[(f64, f64)],
    root_warm: Option<&Basis>,
    callback: &mut dyn FnMut(&IncumbentEvent),
) -> TreeOutcome {
    let cfg = search.cfg;
    let n = cfg.threads;
    let exchange = Exchange::new(cfg, search.clock.ticks(), search.incumbent.clone());
    let deques: Vec<Mutex<VecDeque<PNode>>> = (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    deques[0]
        .lock()
        // lint: allow(panic-path) — the deque was created two lines up and no other thread exists yet; the lock cannot be poisoned
        .expect("fresh deque lock")
        .push_back(PNode {
            fixes: Vec::new(),
            bound: f64::NEG_INFINITY,
            edge: None,
            warm: root_warm.cloned().map(Arc::new),
        });
    exchange.in_flight.store(1, AtomicOrd::Release);
    let alive = AtomicUsize::new(n);

    let mut outs: Vec<WorkerOut> = Vec::new();
    thread::scope(|s| {
        let exchange = &exchange;
        let deques = &deques;
        let alive = &alive;
        let handles: Vec<_> = (0..n)
            .map(|id| {
                s.spawn(move || {
                    let out = ws_worker(id, n, cfg, view, root_bounds, exchange, deques);
                    alive.fetch_sub(1, AtomicOrd::Release);
                    out
                })
            })
            .collect();
        // The caller's thread streams incumbents to the user callback in
        // publish order while the workers run.
        while alive.load(AtomicOrd::Acquire) > 0 {
            for ev in exchange.drain_new() {
                callback(&ev);
            }
            thread::sleep(Duration::from_micros(200));
        }
        outs = handles
            .into_iter()
            // lint: allow(panic-path) — join fails only if the worker panicked; re-raising that panic on the driver thread is the intended propagation
            .map(|h| h.join().expect("tree worker panicked"))
            .collect();
    });
    for ev in exchange.drain_new() {
        callback(&ev);
    }

    // Fold the workers back into the root search context.
    let (best, events) = exchange.take_all();
    if let Some(b) = best {
        search.set_incumbent(Some(b));
    }
    search.events.extend(events);
    let mut lns_hits = 0;
    // `outs` joins in spawn (worker-id) order, so the trace merge order
    // is fixed even though the events' relative timing is not.
    for out in outs {
        search.nodes += out.nodes;
        search.lp_fallbacks += out.fallbacks;
        search.factor.merge(&out.factor);
        search.phases.merge(&out.phases);
        if let Some(buf) = search.trace.as_mut() {
            buf.events.extend(out.trace);
        }
        lns_hits += out.lns_hits;
    }
    // lint: allow(relaxed-ordering) — read after the thread::scope join, which is a full happens-before edge over every worker write; ordering is already guaranteed
    let steals = exchange.steals.load(AtomicOrd::Relaxed);
    // The aggregate exchange clock already includes the root phase.
    // lint: allow(relaxed-ordering) — same post-join read; the scope join already ordered every worker's tick charge
    let total = exchange.ticks.load(AtomicOrd::Relaxed);
    search.clock = crate::clock::DeterministicClock::from_ticks(total);

    let dropped = f64::from_bits(exchange.dropped_bits.load(AtomicOrd::Acquire));
    let bound = dropped.min(
        search
            .incumbent
            .as_ref()
            .map_or(f64::INFINITY, |s| s.objective()),
    );
    TreeOutcome {
        bound,
        stats: ParallelStats {
            threads: n,
            mode: ParallelMode::WorkStealing,
            epochs: 0,
            steals,
            heuristic_incumbents: lns_hits,
        },
    }
}

/// Pops from the worker's own deque (LIFO — plunge into recent subtrees)
/// or steals the oldest node of a neighbour (FIFO — take the biggest
/// untouched subtree).
fn pop_or_steal(
    id: usize,
    n: usize,
    deques: &[Mutex<VecDeque<PNode>>],
    exchange: &Exchange,
) -> Option<PNode> {
    // lint: allow(panic-path) — deque poisoning means another worker panicked mid-push; propagating is the correct teardown
    if let Some(node) = deques[id].lock().expect("deque lock").pop_back() {
        return Some(node);
    }
    for k in 1..n {
        let j = (id + k) % n;
        // lint: allow(panic-path) — deque poisoning means another worker panicked mid-push; propagating is the correct teardown
        if let Some(node) = deques[j].lock().expect("deque lock").pop_front() {
            // lint: allow(relaxed-ordering) — monotone statistics counter; the stolen node's payload travelled through the deque mutex, not this counter
            exchange.steals.fetch_add(1, AtomicOrd::Relaxed);
            return Some(node);
        }
    }
    None
}

#[allow(clippy::too_many_lines)]
fn ws_worker(
    id: usize,
    n: usize,
    cfg: &SolverConfig,
    view: &Model,
    root_bounds: &[(f64, f64)],
    exchange: &Exchange,
    deques: &[Mutex<VecDeque<PNode>>],
) -> WorkerOut {
    let mut search = Search::with_context(view, cfg, worker_seed(cfg.seed, id), Some(exchange));
    search.set_trace_worker(id as u32 + 1);
    search.set_phase(Phase::Tree);
    // The last worker races diversified LNS against the tree once an
    // incumbent exists (it helps expand the tree until then).
    let heuristic = cfg.enable_lns && id == n - 1 && view.binary_vars().next().is_some();
    let mut lns_hits = 0u64;
    let mut bounds_buf = root_bounds.to_vec();
    loop {
        if search.out_of_budget() {
            // Budget or node limit: tell everyone, then retire this
            // worker's queued nodes as unresolved bounds.
            exchange.stop.store(true, AtomicOrd::Release);
            // lint: allow(panic-path) — deque poisoning means another worker panicked mid-push; propagating is the correct teardown
            let mut q = deques[id].lock().expect("deque lock");
            while let Some(node) = q.pop_back() {
                exchange.drop_bound(node.bound);
                exchange.in_flight.fetch_sub(1, AtomicOrd::AcqRel);
            }
            break;
        }
        if heuristic && exchange.in_flight.load(AtomicOrd::Acquire) == 0 {
            break; // tree exhausted ⇒ optimum proven, nothing to polish
        }
        if heuristic && exchange.best_objective().is_finite() {
            let before = exchange.best_objective();
            // Adopt the freshest global incumbent as the LNS centre.
            let best = exchange
                .inner
                .lock()
                // lint: allow(panic-path) — a poisoned exchange means a worker already panicked; propagating the panic is the correct teardown
                .expect("exchange lock poisoned")
                .best
                .clone();
            search.set_incumbent(best);
            search.lns_round(root_bounds, &mut |_| {});
            // LNS rounds always consume clock; guard against zero-cost
            // loops exactly like the sequential polish loop.
            search.clock.charge(1_000);
            search.phases.add(Phase::Lns, 1_000, 0);
            exchange.charge(1_000);
            if exchange.best_objective() < before - tol::OBJ_AGREE {
                lns_hits += 1;
            }
            continue;
        }
        let Some(node) = pop_or_steal(id, n, deques, exchange) else {
            if exchange.in_flight.load(AtomicOrd::Acquire) == 0 {
                break; // globally exhausted
            }
            thread::yield_now();
            continue;
        };
        // Prune on pop against the *atomic* global cutoff — an incumbent
        // found by any worker prunes everyone immediately.
        if node.bound >= search.cutoff() {
            exchange.in_flight.fetch_sub(1, AtomicOrd::AcqRel);
            continue;
        }
        bounds_buf.copy_from_slice(root_bounds);
        for &(v, lo, hi) in &node.fixes {
            let (l, u) = bounds_buf[v as usize];
            bounds_buf[v as usize] = (l.max(lo), u.min(hi));
        }
        let edge = node.edge.map(|(v, up)| (VarId(v), up, node.bound));
        match search.expand_node(&bounds_buf, node.warm.as_deref(), edge, node.bound) {
            NodeExpansion::Infeasible | NodeExpansion::CutOff => {}
            NodeExpansion::NoInfo => exchange.drop_bound(f64::NEG_INFINITY),
            NodeExpansion::Dropped(bound) => exchange.drop_bound(bound),
            NodeExpansion::Integral { values, bound } => {
                search.try_accept(values, &mut |_| {});
                // Like the sequential subtree accounting, the integral
                // node's own bound caps the proved bound.
                exchange.drop_bound(bound);
            }
            NodeExpansion::Branch { var, bound, basis } => {
                let warm = basis.map(Arc::new);
                {
                    // lint: allow(panic-path) — deque poisoning means another worker panicked mid-push; propagating is the correct teardown
                    let mut q = deques[id].lock().expect("deque lock");
                    for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
                        let mut fixes = node.fixes.clone();
                        fixes.push((var.0, lo, hi));
                        q.push_back(PNode {
                            fixes,
                            bound,
                            edge: Some((var.0, hi > 0.5)),
                            warm: warm.clone(),
                        });
                    }
                }
                // Children registered before the parent retires, so
                // in-flight never dips to zero while work remains.
                exchange.in_flight.fetch_add(2, AtomicOrd::AcqRel);
            }
        }
        exchange.in_flight.fetch_sub(1, AtomicOrd::AcqRel);
    }
    WorkerOut {
        nodes: search.nodes,
        fallbacks: search.lp_fallbacks,
        factor: search.factor,
        lns_hits,
        phases: search.phases,
        trace: search.trace.take().map_or_else(Vec::new, |buf| buf.events),
    }
}

// ---------------------------------------------------------------------
// Deterministic driver
// ---------------------------------------------------------------------

/// Nodes dealt per worker per epoch. Small enough that pruning stays
/// fresh (the cutoff is frozen for the epoch), large enough to amortise
/// the barrier.
const DET_BATCH: usize = 4;
/// Nodes a worker may *expand* per epoch while plunging depth-first
/// through its dealt batch. Without the plunge every dealt node's
/// children would wait for the next barrier, so reaching an integral
/// leaf at depth `d` would cost `d` epochs (and `d × threads ×
/// DET_BATCH` node expansions tree-wide) — on deep binary models the
/// first incumbent would effectively never arrive. The quota bounds the
/// staleness of the frozen epoch cutoff instead of the dive depth.
const DET_NODE_QUOTA: u64 = 64;
/// Every this-many epochs, one worker runs an LNS round instead of
/// expanding nodes (once an incumbent exists).
const LNS_PERIOD: u64 = 4;

/// One node job dealt to a deterministic worker.
#[derive(Clone)]
struct DetJob {
    fixes: Vec<(u32, f64, f64)>,
    bound: f64,
    edge: Option<(u32, bool)>,
    warm: Option<Arc<Basis>>,
}

enum DetTask {
    Expand {
        jobs: Vec<DetJob>,
        /// Global incumbent objective frozen for the epoch.
        cutoff_obj: f64,
        /// Deterministic seconds left in the global budget.
        remaining: f64,
    },
    Lns {
        best: Arc<Solution>,
        remaining: f64,
    },
    Stop,
}

/// Per-node outcome a deterministic worker reports. Terminal variants
/// echo [`NodeExpansion`]; `Open` hands an unexpanded frontier node —
/// a child created during the worker's plunge, or a dealt node the
/// quota/budget left untouched — back to the coordinator's heap, with
/// its root-relative fix list so the coordinator needs no echo of the
/// dealt jobs.
enum DetNodeOut {
    NoInfo,
    Dropped(f64),
    Integral { values: Vec<f64>, bound: f64 },
    Open(DetJob),
}

/// One worker's reply for one epoch. Tallies are cumulative over the
/// worker's lifetime; the coordinator charges deltas.
struct DetOut {
    id: usize,
    results: Vec<DetNodeOut>,
    lns_events: Vec<IncumbentEvent>,
    ticks: u64,
    nodes: u64,
    fallbacks: u64,
    factor: FactorStats,
    /// Cumulative phase attribution (folded like `factor`).
    phases: PhaseBreakdown,
    /// Span events buffered since the last epoch (drained each reply, so
    /// the coordinator accumulates them per worker in deal order).
    trace: Vec<SpanEvent>,
}

/// Coordinator heap entry: min bound first, then *newest* node id —
/// the same plunging tie-break as the sequential [`Search`] heap.
struct DetOpen {
    bound: f64,
    id: u64,
    job: DetJob,
}

impl PartialEq for DetOpen {
    fn eq(&self, other: &Self) -> bool {
        self.bound.to_bits() == other.bound.to_bits() && self.id == other.id
    }
}
impl Eq for DetOpen {}
impl PartialOrd for DetOpen {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DetOpen {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.id.cmp(&other.id))
    }
}

fn det_worker(
    id: usize,
    cfg: &SolverConfig,
    view: &Model,
    root_bounds: &[(f64, f64)],
    rx: &mpsc::Receiver<DetTask>,
    tx: &mpsc::Sender<DetOut>,
) {
    let mut search = Search::with_context(view, cfg, worker_seed(cfg.seed, id), None);
    search.set_trace_worker(id as u32 + 1);
    search.set_phase(Phase::Tree);
    let mut bounds_buf = root_bounds.to_vec();
    let mut events_seen = 0usize;
    while let Ok(task) = rx.recv() {
        let mut results = Vec::new();
        let mut lns_events = Vec::new();
        match task {
            DetTask::Stop => break,
            DetTask::Expand {
                jobs,
                cutoff_obj,
                remaining,
            } => {
                search.set_cutoff_hint(cutoff_obj);
                search.set_task_budget(remaining);
                // Depth-first plunge over the dealt batch: a local LIFO
                // stack seeded with the jobs in reverse deal order (so
                // the first-dealt — best-bound — job dives first), each
                // branch pushing its down-child then up-child exactly
                // like the sequential heap's newest-first tie-break.
                // Expansion stops at the epoch quota or the budget;
                // whatever the stack still holds goes back as `Open`.
                let mut stack: Vec<DetJob> = jobs.into_iter().rev().collect();
                let mut expanded = 0u64;
                while let Some(job) = stack.pop() {
                    if expanded >= DET_NODE_QUOTA || search.out_of_budget() {
                        // Quota or budget spent: retire the rest of the
                        // frontier unexpanded, deterministically.
                        results.push(DetNodeOut::Open(job));
                        continue;
                    }
                    // Prune against the frozen epoch cutoff on pop, like
                    // the coordinator does when dealing.
                    if job.bound >= search.cutoff() {
                        continue;
                    }
                    expanded += 1;
                    bounds_buf.copy_from_slice(root_bounds);
                    for &(v, lo, hi) in &job.fixes {
                        let (l, u) = bounds_buf[v as usize];
                        bounds_buf[v as usize] = (l.max(lo), u.min(hi));
                    }
                    let edge = job.edge.map(|(v, up)| (VarId(v), up, job.bound));
                    match search.expand_node(&bounds_buf, job.warm.as_deref(), edge, job.bound) {
                        NodeExpansion::Infeasible | NodeExpansion::CutOff => {}
                        NodeExpansion::NoInfo => results.push(DetNodeOut::NoInfo),
                        NodeExpansion::Dropped(b) => results.push(DetNodeOut::Dropped(b)),
                        NodeExpansion::Integral { values, bound } => {
                            results.push(DetNodeOut::Integral { values, bound });
                        }
                        NodeExpansion::Branch { var, bound, basis } => {
                            let warm = basis.map(Arc::new);
                            for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
                                let mut fixes = job.fixes.clone();
                                fixes.push((var.0, lo, hi));
                                stack.push(DetJob {
                                    fixes,
                                    bound,
                                    edge: Some((var.0, hi > 0.5)),
                                    warm: warm.clone(),
                                });
                            }
                        }
                    }
                }
            }
            DetTask::Lns { best, remaining } => {
                search.set_cutoff_hint(f64::INFINITY);
                search.set_incumbent(Some(best));
                search.set_task_budget(remaining);
                search.lns_round(root_bounds, &mut |_| {});
                search.clock.charge(1_000);
                search.phases.add(Phase::Lns, 1_000, 0);
                // Report the round's local improvements; the coordinator
                // re-verifies them against the global incumbent.
                lns_events.extend(search.events[events_seen..].iter().cloned());
                events_seen = search.events.len();
            }
        }
        let out = DetOut {
            id,
            results,
            lns_events,
            ticks: search.clock.ticks(),
            nodes: search.nodes,
            fallbacks: search.lp_fallbacks,
            factor: search.factor,
            phases: search.phases,
            trace: search
                .trace
                .as_mut()
                .map_or_else(Vec::new, |buf| std::mem::take(&mut buf.events)),
        };
        if tx.send(out).is_err() {
            break;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_deterministic(
    search: &mut Search<'_>,
    view: &Model,
    root_bounds: &[(f64, f64)],
    root_warm: Option<&Basis>,
    callback: &mut dyn FnMut(&IncumbentEvent),
) -> TreeOutcome {
    let cfg = search.cfg;
    let n = cfg.threads;
    let has_binaries = view.binary_vars().next().is_some();
    let mut dropped = f64::INFINITY;
    let mut epochs = 0u64;
    let mut lns_hits = 0u64;

    thread::scope(|s| {
        let mut txs = Vec::with_capacity(n);
        let (rtx, rrx) = mpsc::channel::<DetOut>();
        for id in 0..n {
            let (tx, rx) = mpsc::channel::<DetTask>();
            txs.push(tx);
            let rtx = rtx.clone();
            s.spawn(move || det_worker(id, cfg, view, root_bounds, &rx, &rtx));
        }
        drop(rtx);

        let mut heap = BinaryHeap::new();
        heap.push(DetOpen {
            bound: f64::NEG_INFINITY,
            id: 0,
            job: DetJob {
                fixes: Vec::new(),
                bound: f64::NEG_INFINITY,
                edge: None,
                warm: root_warm.cloned().map(Arc::new),
            },
        });
        let mut next_id = 1u64;
        let mut prev_ticks = vec![0u64; n];
        let mut prev_nodes = vec![0u64; n];
        let mut last_fallbacks = vec![0u64; n];
        let mut last_factor = vec![FactorStats::default(); n];
        let mut last_phases = vec![PhaseBreakdown::default(); n];
        let mut worker_trace: Vec<Vec<SpanEvent>> = vec![Vec::new(); n];

        loop {
            if search.out_of_budget() {
                // Remaining open nodes bound the tree, like the
                // sequential budget stop.
                for open in heap.drain() {
                    dropped = dropped.min(open.bound);
                }
                break;
            }
            // Freeze the epoch's cutoff: every worker prunes against the
            // same incumbent, whichever worker finds what this epoch.
            let cutoff_obj = search
                .incumbent
                .as_ref()
                .map_or(f64::INFINITY, |s| s.objective());
            let cutoff = search.cutoff();
            let mut jobs = Vec::new();
            while jobs.len() < n * DET_BATCH {
                let Some(top) = heap.pop() else { break };
                if top.bound >= cutoff {
                    continue; // pruned under the epoch cutoff
                }
                jobs.push(top.job);
            }
            if jobs.is_empty() {
                break; // tree exhausted (or fully pruned)
            }
            let lns_due = cfg.enable_lns
                && has_binaries
                && n >= 2
                && epochs % LNS_PERIOD == LNS_PERIOD - 1
                && search.incumbent.is_some();
            let tree_workers = if lns_due { n - 1 } else { n };
            let remaining = (cfg.det_time_limit - search.clock.seconds()).max(0.0);
            let mut batches: Vec<Vec<DetJob>> = (0..tree_workers).map(|_| Vec::new()).collect();
            for (j, job) in jobs.into_iter().enumerate() {
                batches[j % tree_workers].push(job);
            }
            let mut expected = 0usize;
            for (w, batch) in batches.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                txs[w]
                    .send(DetTask::Expand {
                        jobs: batch,
                        cutoff_obj,
                        remaining,
                    })
                    // lint: allow(panic-path) — the receiver lives until the coordinator sends Stop; a closed channel means the worker panicked and the panic should propagate
                    .expect("deterministic worker hung up");
                expected += 1;
            }
            if lns_due {
                // lint: allow(panic-path) — lns_due is only set after an incumbent is accepted; the Option is Some by construction
                let best = search.incumbent.clone().expect("lns_due implies incumbent");
                txs[n - 1]
                    .send(DetTask::Lns { best, remaining })
                    // lint: allow(panic-path) — the receiver lives until the coordinator sends Stop; a closed channel means the worker panicked and the panic should propagate
                    .expect("deterministic worker hung up");
                expected += 1;
            }
            // Epoch barrier: wait for every dealt task, then fold the
            // replies in fixed worker order — the merge order (and with
            // it node ids, acceptance order, clock totals) never depends
            // on thread scheduling.
            let mut slots: Vec<Option<DetOut>> = (0..n).map(|_| None).collect();
            for _ in 0..expected {
                // lint: allow(panic-path) — every dealt task produces exactly one reply; a dead sender means the worker panicked and the panic should propagate
                let out = rrx.recv().expect("deterministic worker died");
                let w = out.id;
                slots[w] = Some(out);
            }
            for w in 0..n {
                let Some(out) = slots[w].take() else { continue };
                search.clock.charge(out.ticks.saturating_sub(prev_ticks[w]));
                prev_ticks[w] = out.ticks;
                search.nodes += out.nodes.saturating_sub(prev_nodes[w]);
                prev_nodes[w] = out.nodes;
                last_fallbacks[w] = out.fallbacks;
                last_factor[w] = out.factor;
                last_phases[w] = out.phases;
                worker_trace[w].extend(out.trace);
                for res in out.results {
                    match res {
                        DetNodeOut::NoInfo => dropped = f64::NEG_INFINITY,
                        DetNodeOut::Dropped(b) => dropped = dropped.min(b),
                        DetNodeOut::Integral { values, bound } => {
                            search.try_accept(values, callback);
                            dropped = dropped.min(bound);
                        }
                        DetNodeOut::Open(job) => {
                            heap.push(DetOpen {
                                bound: job.bound,
                                id: next_id,
                                job,
                            });
                            next_id += 1;
                        }
                    }
                }
                for ev in out.lns_events {
                    // Re-verify against the *global* incumbent and stamp
                    // with the aggregate clock.
                    if search.try_accept(ev.solution.values().to_vec(), callback) {
                        lns_hits += 1;
                    }
                }
            }
            epochs += 1;
            // One progress row per epoch, from coordinator state only —
            // every input is deterministic at a fixed thread count, so
            // traced runs stay byte-identical.
            search.emit_progress(
                heap.len() as u64,
                heap.peek().map_or(f64::INFINITY, |o| o.bound),
            );
        }
        for tx in &txs {
            let _ = tx.send(DetTask::Stop);
        }
        for w in 0..n {
            search.lp_fallbacks += last_fallbacks[w];
            search.factor.merge(&last_factor[w]);
            search.phases.merge(&last_phases[w]);
            if let Some(buf) = search.trace.as_mut() {
                buf.events.append(&mut worker_trace[w]);
            }
        }
    });

    let bound = dropped.min(
        search
            .incumbent
            .as_ref()
            .map_or(f64::INFINITY, |s| s.objective()),
    );
    TreeOutcome {
        bound,
        stats: ParallelStats {
            threads: n,
            mode: ParallelMode::Deterministic,
            epochs,
            steals: 0,
            heuristic_incumbents: lns_hits,
        },
    }
}

// ---------------------------------------------------------------------
// Compile-time Send/Sync audit
// ---------------------------------------------------------------------

/// `static_assertions`-style helpers: adding a non-`Send` field (an `Rc`,
/// a raw pointer) to any type the parallel driver moves or shares across
/// threads becomes a compile error here, not a runtime surprise.
const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}

const _: () = {
    // Moved into worker threads.
    assert_send::<crate::backend::LpSession>();
    assert_send::<Box<dyn crate::backend::LpBackend>>();
    assert_send::<crate::basis::Basis>();
    assert_send::<crate::solution::Solution>();
    assert_send::<crate::model::Model>();
    assert_send::<crate::solver::Solver>();
    assert_send::<crate::solver::SolverConfig>();
    assert_send::<crate::solver::SolveResult>();
    assert_send::<crate::simplex::LpConfig>();
    assert_send::<PNode>();
    assert_send::<DetTask>();
    assert_send::<DetOut>();
    assert_send::<crate::trace::SpanEvent>();
    assert_send::<crate::trace::TraceHandle>();
    // Shared by reference across worker threads.
    assert_sync::<crate::model::Model>();
    assert_sync::<crate::solver::SolverConfig>();
    assert_sync::<Exchange>();
    assert_sync::<crate::trace::TraceHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_min_handles_negative_floats() {
        let a = AtomicU64::new(f64::INFINITY.to_bits());
        atomic_min_f64(&a, 3.5);
        atomic_min_f64(&a, -2.0);
        atomic_min_f64(&a, 1.0); // larger: must not regress
        assert_eq!(f64::from_bits(a.load(AtomicOrd::Relaxed)), -2.0);
    }

    #[test]
    fn worker_seeds_diversify() {
        let s0 = worker_seed(42, 0);
        let s1 = worker_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, 42);
        // Deterministic in the inputs.
        assert_eq!(worker_seed(42, 3), worker_seed(42, 3));
    }
}
