//! Cutting planes over binary models: knapsack **cover cuts** and
//! conflict-graph **clique cuts**, separated at the branch-and-bound root
//! and appended to the live relaxation through
//! [`LpSession::add_rows`](crate::LpSession::add_rows).
//!
//! Both families are *globally valid*: they cut off fractional vertices
//! of the LP relaxation but never an integer-feasible point, so rows
//! added at the root stay correct throughout the whole search tree.
//!
//! * **Cover cuts** — a binary knapsack row `Σ a_j x_j ≤ b` (all
//!   `a_j > 0`) admits, for every *minimal cover* `C`
//!   (`Σ_{C} a_j > b`, minimal under removal), the inequality
//!   `Σ_{C} x_j ≤ |C| − 1`; the separator greedily builds a cover around
//!   the fractional point, minimises it, and *extends* it with every
//!   column at least as heavy as the cover's heaviest member (the classic
//!   extended cover, valid for minimal covers).
//! * **Clique cuts** — set-packing rows (`Σ x_j ≤ 1`, including the `≤`
//!   direction of partition equalities) define a conflict graph; any
//!   clique `K` in that graph yields `Σ_{K} x_j ≤ 1`. The separator
//!   greedily grows cliques around high-valued fractional variables,
//!   merging conflicts from *different* rows into inequalities no single
//!   row implies. The cliques presolve extracts
//!   ([`PresolvedModel::cliques`](crate::presolve::PresolvedModel)) seed
//!   the graph on reduced models.
//!
//! A violated cut is only ever *newly* violated: the LP optimum satisfies
//! every row already in the session, so re-separating after a round can
//! not regenerate an added cut.

use crate::expr::{Comparison, ConstraintSense, LinExpr, VarId};
use crate::model::{Model, VarType};
use std::collections::{BTreeSet, HashSet};

/// Violation below which a candidate cut is not worth adding.
const CUT_TOL: f64 = crate::tol::FEAS;
/// Fractional-value floor for clique-growth candidates.
const FRAC_TOL: f64 = crate::tol::INT_FEAS;

/// Which separator produced a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// Extended knapsack cover cut from a binary `≤` row.
    Cover,
    /// Clique cut from the packing-row conflict graph.
    Clique,
}

/// One separated, globally valid cutting plane (always a `≤` row).
#[derive(Debug, Clone)]
pub struct Cut {
    /// Diagnostic row name (`cover…` / `clique…`).
    pub name: String,
    /// Left-hand side terms (unit coefficients for both families).
    pub terms: Vec<(VarId, f64)>,
    /// Right-hand side.
    pub rhs: f64,
    /// Violation at the point it was separated against.
    pub violation: f64,
    /// Producing family.
    pub kind: CutKind,
}

impl Cut {
    /// The cut as a session row.
    #[must_use]
    pub fn into_row(self) -> (String, Comparison) {
        let cmp = LinExpr::from_terms(self.terms).leq(self.rhs);
        (self.name, cmp)
    }
}

/// Cumulative separation counters for one [`CutSeparator`], surfaced for
/// observability (trace spans, bench logs). Purely observational: reading
/// or ignoring them never changes which cuts are produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeparationStats {
    /// Separation rounds run ([`CutSeparator::separate`] calls).
    pub rounds: u64,
    /// Violated candidates found before ranking/dedup truncation.
    pub candidates: u64,
    /// Cover cuts actually emitted.
    pub cover_cuts: u64,
    /// Clique cuts actually emitted.
    pub clique_cuts: u64,
}

/// One column of a (complemented) knapsack row: weight is always
/// positive; `complemented` marks a column whose original coefficient was
/// negative, entering the knapsack as `x̄ = 1 − x`. Complementation is
/// what lets the cover separator engage **mixed-sign** binary `≤` rows —
/// in particular the gated capacity rows `Σ aⱼxⱼ − c·y ≤ 0` of the
/// set-partitioning formulation, where a cover containing `ȳ` yields the
/// disaggregated `x ≤ y` strengthening the aggregated linking rows lack.
#[derive(Clone, Copy)]
struct KnapItem {
    col: u32,
    weight: f64,
    complemented: bool,
}

/// A binary `≤` row in complemented (all-positive) knapsack form.
struct KnapRow {
    items: Vec<KnapItem>,
    /// Complemented right-hand side `b + Σ_{aⱼ<0} |aⱼ|` (always > 0).
    rhs: f64,
}

/// Stateful separator for one model: built once at the root (knapsack
/// rows + conflict graph), then queried with successive fractional
/// points. Tracks emitted supports so no cut is produced twice.
pub struct CutSeparator {
    /// Binary `≤` rows in complemented knapsack form.
    knap_rows: Vec<KnapRow>,
    /// Conflict-graph adjacency per column (binary columns only).
    ///
    /// **Membership-only by contract**: these sets are probed with
    /// `insert`/`contains`/`is_empty` and never iterated — every
    /// traversal that feeds cut emission walks the sorted `in_graph` /
    /// candidate vectors instead, so the hash order can never leak into
    /// results. The workspace `hash-iteration` lint enforces this; an
    /// iteration added here must switch the field to `BTreeSet` first.
    adj: Vec<HashSet<u32>>,
    /// Columns with any conflict, for the clique growth candidate sweep.
    in_graph: Vec<u32>,
    /// Supports already emitted (family tag + sign-encoded columns).
    /// Ordered set: dedup keys, but safe to iterate (e.g. when dumping
    /// separator state) without a determinism hazard.
    seen: BTreeSet<Vec<u32>>,
    /// Monotone name counter.
    emitted: usize,
    /// Observational separation counters.
    stats: SeparationStats,
}

impl CutSeparator {
    /// Builds the separator for `model`, seeding the conflict graph with
    /// `cliques` (e.g. the packing cliques presolve exports) in addition
    /// to the packing rows found in the model itself.
    #[must_use]
    pub fn new(model: &Model, cliques: &[Vec<VarId>]) -> Self {
        let n = model.num_vars();
        let binary: Vec<bool> = model
            .variables()
            .iter()
            .map(|v| v.ty == VarType::Binary)
            .collect();
        let mut knap_rows: Vec<KnapRow> = Vec::new();
        let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n];
        let add_clique = |members: &[u32], adj: &mut Vec<HashSet<u32>>| {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    if u != v {
                        adj[u as usize].insert(v);
                        adj[v as usize].insert(u);
                    }
                }
            }
        };
        for con in model.constraints() {
            if con.terms.len() < 2 || !con.terms.iter().all(|&(v, _)| binary[v.index()]) {
                continue;
            }
            // Binary `≤` rows feed the cover separator in complemented
            // form: negative-coefficient columns enter as `1 − x`, the
            // right-hand side absorbs their magnitude.
            if con.sense == ConstraintSense::Le {
                let items: Vec<KnapItem> = con
                    .terms
                    .iter()
                    .filter(|&&(_, a)| a != 0.0)
                    .map(|&(v, a)| KnapItem {
                        col: v.0,
                        weight: a.abs(),
                        complemented: a < 0.0,
                    })
                    .collect();
                let rhs = con.rhs
                    + con
                        .terms
                        .iter()
                        .filter(|&&(_, a)| a < 0.0)
                        .map(|&(_, a)| -a)
                        .sum::<f64>();
                let total: f64 = items.iter().map(|i| i.weight).sum();
                if rhs > CUT_TOL && total > rhs + CUT_TOL {
                    knap_rows.push(KnapRow { items, rhs });
                }
            }
            // Packing rows (and the ≤ side of partition equalities) are
            // conflict-graph cliques.
            let packing = matches!(con.sense, ConstraintSense::Le | ConstraintSense::Eq)
                && con.rhs <= 1.0 + CUT_TOL
                && con.terms.iter().all(|&(_, a)| a >= 1.0 - CUT_TOL);
            if packing {
                let members: Vec<u32> = con.terms.iter().map(|&(v, _)| v.0).collect();
                add_clique(&members, &mut adj);
            }
        }
        for clique in cliques {
            let members: Vec<u32> = clique
                .iter()
                .filter(|v| v.index() < n && binary[v.index()])
                .map(|v| v.0)
                .collect();
            add_clique(&members, &mut adj);
        }
        // Pairwise knapsack conflicts: in a positive binary row
        // `Σ a_j x_j ≤ b`, two columns with `a_u + a_v > b` can never both
        // be 1, so they are conflict-graph edges — the cross-row edges
        // that let clique growth merge capacity conflicts with packing
        // rows (set-partitioning's capacity rows produce exactly these).
        // Descending-coefficient order makes each column's conflict set a
        // prefix, so a two-pointer sweep enumerates only real edges; a
        // global cap bounds pathological rows.
        let mut edge_budget = 50_000usize;
        for row in &knap_rows {
            if edge_budget == 0 {
                break;
            }
            // Only original (non-complemented) columns make clique edges:
            // `a_u + a_v > rhs'` means both at 1 overflows the row even
            // with every negative column helping.
            let mut order: Vec<(u32, f64)> = row
                .items
                .iter()
                .filter(|i| !i.complemented)
                .map(|i| (i.col, i.weight))
                .collect();
            order.sort_by(|p, q| q.1.total_cmp(&p.1).then(p.0.cmp(&q.0)));
            let mut t = order.len();
            for i in 0..order.len() {
                // Conflicts of item i: the heaviest items j (j > i) with
                // a_i + a_j > rhs; as a_i shrinks the prefix shrinks too.
                while t > i + 1 && order[i].1 + order[t - 1].1 <= row.rhs + CUT_TOL {
                    t -= 1;
                }
                if t <= i + 1 {
                    // Coefficients only shrink from here: no pair left.
                    break;
                }
                for &(v, _) in &order[i + 1..t] {
                    let u = order[i].0;
                    if adj[u as usize].insert(v) {
                        adj[v as usize].insert(u);
                        edge_budget = edge_budget.saturating_sub(1);
                    }
                }
                if edge_budget == 0 {
                    break;
                }
            }
        }
        let in_graph: Vec<u32> = (0..n as u32)
            .filter(|&j| !adj[j as usize].is_empty())
            .collect();
        CutSeparator {
            knap_rows,
            adj,
            in_graph,
            seen: BTreeSet::new(),
            emitted: 0,
            stats: SeparationStats::default(),
        }
    }

    /// The cumulative separation counters so far.
    #[must_use]
    pub fn stats(&self) -> SeparationStats {
        self.stats
    }

    /// Whether any separation is possible at all on this model.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.knap_rows.is_empty() && self.in_graph.is_empty()
    }

    /// Separates up to `max_cuts` cuts violated by the fractional point
    /// `x`, most violated first. Cuts whose support was emitted before
    /// are suppressed, so successive rounds only ever return new rows.
    #[must_use]
    pub fn separate(&mut self, x: &[f64], max_cuts: usize) -> Vec<Cut> {
        let mut cuts = Vec::new();
        self.separate_covers(x, &mut cuts);
        self.separate_cliques(x, &mut cuts);
        self.stats.rounds += 1;
        self.stats.candidates += cuts.len() as u64;
        cuts.sort_by(|a, b| b.violation.total_cmp(&a.violation));
        cuts.truncate(max_cuts);
        // Only now commit the survivors' supports, so capped-out cuts can
        // return in a later round.
        let mut out = Vec::with_capacity(cuts.len());
        for mut cut in cuts {
            // Family tag + sign-encoded columns, so a cover over `1 − x`
            // never collides with a clique or a cover over `x`.
            let mut key: Vec<u32> = vec![match cut.kind {
                CutKind::Cover => 0,
                CutKind::Clique => 1,
            }];
            let mut cols: Vec<u32> = cut
                .terms
                .iter()
                .map(|&(v, c)| v.0 * 2 + u32::from(c < 0.0))
                .collect();
            cols.sort_unstable();
            key.extend(cols);
            if !self.seen.insert(key) {
                continue;
            }
            let tag = self.emitted;
            self.emitted += 1;
            cut.name = match cut.kind {
                CutKind::Cover => {
                    self.stats.cover_cuts += 1;
                    format!("cover{tag}")
                }
                CutKind::Clique => {
                    self.stats.clique_cuts += 1;
                    format!("clique{tag}")
                }
            };
            out.push(cut);
        }
        out
    }

    /// Greedy minimal-cover separation with the classic extension, over
    /// the complemented (all-positive) row form: a complemented member
    /// contributes `1 − x` to the cover inequality, i.e. a `−x` term and
    /// a unit off the right-hand side.
    fn separate_covers(&self, x: &[f64], out: &mut Vec<Cut>) {
        // ỹ: the complemented value of an item at the point `x`.
        let val = |it: &KnapItem| {
            let v = x[it.col as usize];
            if it.complemented {
                1.0 - v
            } else {
                v
            }
        };
        for row in &self.knap_rows {
            let items = &row.items;
            // Greedy cover: take items by descending complemented value
            // (ties towards heavy items) until the weights overflow the
            // capacity.
            let mut order: Vec<usize> = (0..items.len()).collect();
            order.sort_by(|&p, &q| {
                let kp = (1.0 - val(&items[p])) / items[p].weight;
                let kq = (1.0 - val(&items[q])) / items[q].weight;
                kp.total_cmp(&kq).then(items[p].col.cmp(&items[q].col))
            });
            let mut cover: Vec<usize> = Vec::new();
            let mut weight = 0.0;
            for &p in &order {
                if weight > row.rhs + CUT_TOL {
                    break;
                }
                cover.push(p);
                weight += items[p].weight;
            }
            if weight <= row.rhs + CUT_TOL {
                continue; // the whole row cannot overflow: no cover
            }
            // Minimise: drop members whose removal keeps the overflow,
            // so the extension below stays valid.
            let mut i = 0;
            while i < cover.len() {
                let a = items[cover[i]].weight;
                if weight - a > row.rhs + CUT_TOL {
                    weight -= a;
                    cover.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            // Extended cover: every column at least as heavy as the
            // cover's heaviest member joins with coefficient one.
            let a_max = cover
                .iter()
                .map(|&p| items[p].weight)
                .fold(0.0f64, f64::max);
            // Membership-only probe set (contains below); the emission
            // order comes from the enumerate over `items`, never from
            // this set's internal order.
            let in_cover: HashSet<usize> = cover.iter().copied().collect();
            let mut support: Vec<usize> = cover.clone();
            for (p, it) in items.iter().enumerate() {
                if !in_cover.contains(&p) && it.weight >= a_max - CUT_TOL {
                    support.push(p);
                }
            }
            // Σ_{support} ỹ ≤ |C| − 1, expanded back to original
            // variables: complemented members flip sign and shift rhs.
            let lhs: f64 = support.iter().map(|&p| val(&items[p])).sum();
            let violation = lhs - (cover.len() as f64 - 1.0);
            if violation > CUT_TOL {
                let mut terms = Vec::with_capacity(support.len());
                let mut rhs_cut = cover.len() as f64 - 1.0;
                for &p in &support {
                    let it = &items[p];
                    if it.complemented {
                        terms.push((VarId(it.col), -1.0));
                        rhs_cut -= 1.0;
                    } else {
                        terms.push((VarId(it.col), 1.0));
                    }
                }
                terms.sort_by_key(|&(v, _)| v);
                out.push(Cut {
                    name: String::new(),
                    terms,
                    rhs: rhs_cut,
                    violation,
                    kind: CutKind::Cover,
                });
            }
        }
    }

    /// Greedy clique growth around every fractional seed.
    fn separate_cliques(&self, x: &[f64], out: &mut Vec<Cut>) {
        // Candidates: conflict-graph members with meaningful value,
        // descending, so the greedy extension favours violation.
        let mut cand: Vec<u32> = self
            .in_graph
            .iter()
            .copied()
            .filter(|&j| x[j as usize] > FRAC_TOL)
            .collect();
        if cand.len() < 2 {
            return;
        }
        cand.sort_by(|&p, &q| x[q as usize].total_cmp(&x[p as usize]).then(p.cmp(&q)));
        let mut local: BTreeSet<Vec<u32>> = BTreeSet::new();
        for seed_at in 0..cand.len() {
            let seed = cand[seed_at];
            let mut clique = vec![seed];
            let mut lhs = x[seed as usize];
            for &v in &cand {
                if v == seed {
                    continue;
                }
                if clique.iter().all(|&u| self.adj[u as usize].contains(&v)) {
                    clique.push(v);
                    lhs += x[v as usize];
                }
            }
            let violation = lhs - 1.0;
            if clique.len() >= 2 && violation > CUT_TOL {
                clique.sort_unstable();
                if local.insert(clique.clone()) {
                    out.push(Cut {
                        name: String::new(),
                        terms: clique.iter().map(|&j| (VarId(j), 1.0)).collect(),
                        rhs: 1.0,
                        violation,
                        kind: CutKind::Clique,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_cut_separates_fractional_knapsack_point() {
        // 3x + 4y + 2z ≤ 6: {x, y} is a minimal cover (7 > 6).
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_constraint("w", m.expr([(x, 3.0), (y, 4.0), (z, 2.0)]).leq(6.0));
        m.set_objective(m.expr([(x, -10.0), (y, -13.0), (z, -7.0)]));
        let mut sep = CutSeparator::new(&m, &[]);
        assert!(!sep.is_empty());
        // LP-style point: x = 1, y = 0.75, z = 0 violates x + y ≤ 1.
        let cuts = sep.separate(&[1.0, 0.75, 0.0], 8);
        assert!(!cuts.is_empty());
        let cover = &cuts[0];
        assert_eq!(cover.kind, CutKind::Cover);
        assert!(cover.violation > 0.5);
        // Validity on every integer-feasible point of the knapsack.
        for bits in 0..8u32 {
            let pt = [
                f64::from(bits & 1),
                f64::from((bits >> 1) & 1),
                f64::from((bits >> 2) & 1),
            ];
            if m.is_feasible(&pt, 1e-9) {
                let lhs: f64 = cover.terms.iter().map(|&(v, c)| c * pt[v.index()]).sum();
                assert!(lhs <= cover.rhs + 1e-9, "cut off integer point {pt:?}");
            }
        }
    }

    #[test]
    fn clique_cut_merges_conflicts_across_rows() {
        // Pairwise packing rows a+b ≤ 1, b+c ≤ 1, a+c ≤ 1: the triangle
        // {a, b, c} is a clique no single row states; x = ½ everywhere
        // violates a + b + c ≤ 1 by ½.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("p1", m.expr([(a, 1.0), (b, 1.0)]).leq(1.0));
        m.add_constraint("p2", m.expr([(b, 1.0), (c, 1.0)]).leq(1.0));
        m.add_constraint("p3", m.expr([(a, 1.0), (c, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(a, -1.0), (b, -1.0), (c, -1.0)]));
        let mut sep = CutSeparator::new(&m, &[]);
        let cuts = sep.separate(&[0.5, 0.5, 0.5], 8);
        assert!(!cuts.is_empty());
        let clique = &cuts[0];
        assert_eq!(clique.kind, CutKind::Clique);
        assert_eq!(clique.terms.len(), 3);
        assert!((clique.violation - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pairwise_knapsack_conflicts_build_clique_cuts() {
        // 6x + 5y + 4z ≤ 8: every pair overflows, so {x, y, z} is a
        // clique purely from knapsack conflicts — no packing row states
        // it. The fractional point (0.5, 0.4, 0.3) violates
        // x + y + z ≤ 1 by 0.2.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_constraint("cap", m.expr([(x, 6.0), (y, 5.0), (z, 4.0)]).leq(8.0));
        m.set_objective(m.expr([(x, -3.0), (y, -2.0), (z, -1.0)]));
        let mut sep = CutSeparator::new(&m, &[]);
        let cuts = sep.separate(&[0.5, 0.4, 0.3], 8);
        let clique = cuts
            .iter()
            .find(|c| c.kind == CutKind::Clique && c.terms.len() == 3)
            .expect("triangle clique from knapsack conflicts");
        // Validity: exactly the single-item points are feasible.
        for bits in 0..8u32 {
            let pt = [
                f64::from(bits & 1),
                f64::from((bits >> 1) & 1),
                f64::from((bits >> 2) & 1),
            ];
            if m.is_feasible(&pt, 1e-9) {
                let lhs: f64 = clique.terms.iter().map(|&(v, c)| c * pt[v.index()]).sum();
                assert!(lhs <= clique.rhs + 1e-9, "cut off {pt:?}");
            }
        }
    }

    #[test]
    fn emitted_supports_are_never_repeated() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("p1", m.expr([(a, 1.0), (b, 1.0)]).leq(1.0));
        m.add_constraint("p2", m.expr([(b, 1.0), (c, 1.0)]).leq(1.0));
        m.add_constraint("p3", m.expr([(a, 1.0), (c, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(a, -1.0)]));
        let mut sep = CutSeparator::new(&m, &[]);
        let first = sep.separate(&[0.5, 0.5, 0.5], 8);
        assert!(!first.is_empty());
        let again = sep.separate(&[0.5, 0.5, 0.5], 8);
        assert!(again.is_empty(), "same point must not re-emit {again:?}");
    }

    #[test]
    fn integral_point_separates_nothing() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("w", m.expr([(x, 3.0), (y, 4.0)]).leq(6.0));
        m.add_constraint("p", m.expr([(x, 1.0), (y, 1.0)]).leq(1.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        let mut sep = CutSeparator::new(&m, &[]);
        for pt in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]] {
            assert!(
                sep.separate(&pt, 8).is_empty(),
                "integer-feasible {pt:?} must separate nothing"
            );
        }
    }
}
