//! Linear expressions over model variables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Identifier of a decision variable inside a [`Model`](crate::Model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintSense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for ConstraintSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintSense::Le => "<=",
            ConstraintSense::Ge => ">=",
            ConstraintSense::Eq => "=",
        })
    }
}

/// A sparse linear expression `Σ cᵥ·v + constant`.
///
/// Expressions are built from `(VarId, coefficient)` terms; duplicate
/// variables are merged by [`LinExpr::normalize`], which all consumers call.
///
/// ```
/// use croxmap_ilp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 1.0) + LinExpr::term(x, 3.0);
/// let e = e.normalize();
/// assert_eq!(e.coefficient(x), 5.0);
/// assert_eq!(e.coefficient(y), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A single-term expression `coeff · var`.
    #[must_use]
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// A constant expression.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// Builds an expression from `(var, coeff)` pairs.
    #[must_use]
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant: 0.0,
        }
    }

    /// Appends a term in place.
    pub fn push(&mut self, var: VarId, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// Adds to the constant offset in place.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// The constant offset.
    #[must_use]
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The (possibly unmerged) term list.
    #[must_use]
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Number of stored terms (before merging).
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression has no variable terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Merges duplicate variables, drops zero coefficients and sorts terms
    /// by variable id.
    #[must_use]
    pub fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        LinExpr {
            terms: merged,
            constant: self.constant,
        }
    }

    /// Total coefficient of `var` (summing duplicates).
    #[must_use]
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms
            .iter()
            .filter(|&&(v, _)| v == var)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Evaluates the expression on an assignment vector indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable index is out of range.
    #[must_use]
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Builds the comparison `self ≤ rhs`.
    #[must_use]
    pub fn leq(self, rhs: f64) -> Comparison {
        Comparison {
            expr: self,
            sense: ConstraintSense::Le,
            rhs,
        }
    }

    /// Builds the comparison `self ≥ rhs`.
    #[must_use]
    pub fn geq(self, rhs: f64) -> Comparison {
        Comparison {
            expr: self,
            sense: ConstraintSense::Ge,
            rhs,
        }
    }

    /// Builds the comparison `self = rhs`.
    #[must_use]
    pub fn eq(self, rhs: f64) -> Comparison {
        Comparison {
            expr: self,
            sense: ConstraintSense::Eq,
            rhs,
        }
    }
}

impl Add for LinExpr {
    type Output = LinExpr;

    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;

    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        LinExpr::from_terms(iter)
    }
}

/// A comparison `expr (≤ | ≥ | =) rhs`, ready to be added to a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: ConstraintSense,
    /// Right-hand side constant.
    pub rhs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let e = LinExpr::from_terms([(v(3), 1.0), (v(1), 2.0), (v(3), -1.0), (v(0), 4.0)]);
        let e = e.normalize();
        assert_eq!(e.terms(), &[(v(0), 4.0), (v(1), 2.0)]);
    }

    #[test]
    fn evaluate_includes_constant() {
        let mut e = LinExpr::from_terms([(v(0), 2.0), (v(1), -1.0)]);
        e.add_constant(5.0);
        assert_eq!(e.evaluate(&[3.0, 4.0]), 2.0 * 3.0 - 4.0 + 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let e = (LinExpr::term(v(0), 1.0) + LinExpr::term(v(1), 2.0)) * 3.0;
        let e = e.normalize();
        assert_eq!(e.coefficient(v(0)), 3.0);
        assert_eq!(e.coefficient(v(1)), 6.0);
    }

    #[test]
    fn comparisons_carry_sense() {
        let c = LinExpr::term(v(0), 1.0).geq(2.0);
        assert_eq!(c.sense, ConstraintSense::Ge);
        assert_eq!(c.rhs, 2.0);
    }

    #[test]
    fn from_iterator_collects() {
        let e: LinExpr = [(v(0), 1.0), (v(1), 1.0)].into_iter().collect();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn display_of_sense() {
        assert_eq!(ConstraintSense::Le.to_string(), "<=");
        assert_eq!(ConstraintSense::Ge.to_string(), ">=");
        assert_eq!(ConstraintSense::Eq.to_string(), "=");
    }
}
