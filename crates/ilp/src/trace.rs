//! Deterministic solver observability: tick-stamped span events, phase
//! attribution and pluggable [`TraceSink`]s.
//!
//! Everything in this module is metered in **deterministic ticks** (see
//! [`DeterministicClock`]) — never wall time —
//! so traces are as reproducible as the solves they observe. The design
//! splits into three layers:
//!
//! * **Span events** ([`SpanEvent`], [`SpanKind`]): every unit of solver
//!   work — a presolve pass, the root LP, a cut round, a dive, a node
//!   expansion, a basis refactorisation, an LNS round — is recorded as
//!   one flat, tick-stamped event. Events are buffered per worker (plain
//!   `Vec` pushes on the hot path, no locking, no clock interaction) and
//!   merged in **fixed worker order** when the solve ends, so
//!   [`ParallelMode::Deterministic`](crate::ParallelMode) traces are
//!   byte-identical run-to-run at a fixed thread count.
//! * **Phase breakdown** ([`PhaseBreakdown`], [`Phase`]): every
//!   deterministic tick the solver charges is attributed to the phase
//!   that spent it (presolve / root LP / cuts / dives / tree / LNS),
//!   so the per-phase tick totals sum to the run's `det_time` — the
//!   split rides on every [`SolveResult`](crate::SolveResult), traced
//!   or not.
//! * **Sinks** ([`TraceSink`]): a ring buffer ([`RingSink`]), a JSONL
//!   writer ([`JsonlSink`]) and a SCIP/HiGHS-style periodic progress
//!   table ([`ProgressLog`]). Installed through
//!   [`SolverConfig::with_trace`](crate::SolverConfig::with_trace) as a
//!   shared [`TraceHandle`]; with no sink installed the solver records
//!   nothing and its results stay bit-identical to an untraced build.
//!
//! The std-only constraint is deliberate: like the `crates/compat` stubs,
//! this subsystem must build without the `tracing` ecosystem, so the
//! event model is a plain struct and the JSONL writer is hand-rolled.
//!
//! # Lock-order contract
//!
//! The shared `sink` (`Mutex<dyn TraceSink>` inside [`TraceHandle`]) is
//! the only lock this module touches, and per the workspace lock-order
//! contract (`docs/lock_order.md`, proven by `croxmap-lint`'s
//! `lock-order` pass) it is acquired **only while holding no other
//! lock**: sink emission happens after worker buffers are drained, never
//! under `parallel.rs`'s deque or exchange guards. Keep it that way —
//! a sink callback that reached back into the exchange would add a
//! `sink → inner` edge to the committed graph and invite a cycle.

use crate::clock::DeterministicClock;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// The span taxonomy: which unit of solver work an event covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One root presolve run (`count` = reduction rounds).
    PresolvePass,
    /// The first root relaxation solve (`count` = LP iterations,
    /// `value` = root objective).
    RootLp,
    /// One root cutting-plane round: separate + `add_rows` + re-solve
    /// (`count` = cuts appended, `value` = root objective after).
    CutRound,
    /// One root dive — batch rounding or assignment (`count` = 1 when an
    /// incumbent was found, `value` = its objective).
    Dive,
    /// One branch-and-bound node expansion (`count` = LP iterations,
    /// `value` = the node's LP bound).
    NodeExpand,
    /// Basis refactorisations performed inside one LP solve
    /// (`count` = refactorisations, `ticks` = their metered work).
    Refactor,
    /// One large-neighbourhood-search round (`count` = 1 when it
    /// improved the incumbent, `value` = the objective after).
    LnsRound,
}

impl SpanKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::PresolvePass,
        SpanKind::RootLp,
        SpanKind::CutRound,
        SpanKind::Dive,
        SpanKind::NodeExpand,
        SpanKind::Refactor,
        SpanKind::LnsRound,
    ];

    /// Stable snake_case name (the JSONL `kind` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PresolvePass => "presolve_pass",
            SpanKind::RootLp => "root_lp",
            SpanKind::CutRound => "cut_round",
            SpanKind::Dive => "dive",
            SpanKind::NodeExpand => "node_expand",
            SpanKind::Refactor => "refactor",
            SpanKind::LnsRound => "lns_round",
        }
    }

    /// Parses a [`SpanKind::name`] back to the kind.
    #[must_use]
    pub fn parse(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The solver phases every deterministic tick is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Root presolve reductions.
    Presolve,
    /// The first root relaxation solve.
    RootLp,
    /// Root cutting-plane rounds (separation, row growth, re-solves).
    Cuts,
    /// Root dives for a first incumbent.
    Dive,
    /// The branch-and-bound tree (sequential or parallel).
    Tree,
    /// Large-neighbourhood-search rounds (sequential polish or racing
    /// workers).
    Lns,
    /// Ticks charged outside any attributed phase (driver overhead).
    Other,
}

impl Phase {
    /// Number of phases (the breakdown array length).
    pub const COUNT: usize = 7;

    /// Every phase, in attribution order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Presolve,
        Phase::RootLp,
        Phase::Cuts,
        Phase::Dive,
        Phase::Tree,
        Phase::Lns,
        Phase::Other,
    ];

    /// Stable snake_case name (the JSONL / bench-row field prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Presolve => "presolve",
            Phase::RootLp => "root_lp",
            Phase::Cuts => "cuts",
            Phase::Dive => "dive",
            Phase::Tree => "tree",
            Phase::Lns => "lns",
            Phase::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Presolve => 0,
            Phase::RootLp => 1,
            Phase::Cuts => 2,
            Phase::Dive => 3,
            Phase::Tree => 4,
            Phase::Lns => 5,
            Phase::Other => 6,
        }
    }
}

/// Deterministic ticks and operation counts split by [`Phase`]. Carried
/// on every [`SolveResult`](crate::SolveResult); after
/// [`PhaseBreakdown::finalize`] the phase ticks sum exactly to the run's
/// total (`Other` absorbs unattributed driver overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    ticks: [u64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// Attributes `ticks` of work and `count` operations to `phase`.
    pub fn add(&mut self, phase: Phase, ticks: u64, count: u64) {
        let i = phase.index();
        self.ticks[i] = self.ticks[i].saturating_add(ticks);
        self.counts[i] = self.counts[i].saturating_add(count);
    }

    /// Ticks attributed to `phase`.
    #[must_use]
    pub fn ticks(&self, phase: Phase) -> u64 {
        self.ticks[phase.index()]
    }

    /// Deterministic seconds attributed to `phase`.
    #[must_use]
    pub fn seconds(&self, phase: Phase) -> f64 {
        DeterministicClock::ticks_to_seconds(self.ticks(phase))
    }

    /// Operations counted in `phase` (LP solves, rounds, …).
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of all phase ticks, `Other` included.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.ticks.iter().fold(0u64, |a, &t| a.saturating_add(t))
    }

    /// Sum of the ticks attributed to a real phase (everything except
    /// `Other`).
    #[must_use]
    pub fn attributed_ticks(&self) -> u64 {
        self.total_ticks().saturating_sub(self.ticks(Phase::Other))
    }

    /// Accumulates another breakdown (parallel workers fold into the
    /// root's).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for i in 0..Phase::COUNT {
            self.ticks[i] = self.ticks[i].saturating_add(other.ticks[i]);
            self.counts[i] = self.counts[i].saturating_add(other.counts[i]);
        }
    }

    /// Charges the gap between the run's clock total and the attributed
    /// ticks to `Other`, so the phase ticks sum to `total_ticks` exactly.
    pub fn finalize(&mut self, clock_total: u64) {
        let attributed = self.attributed_ticks();
        self.ticks[Phase::Other.index()] = clock_total.saturating_sub(attributed);
    }
}

/// One tick-stamped span: a closed unit of solver work.
///
/// `start_ticks` is the emitting worker's *local* deterministic clock at
/// the span's start; `worker` is `0` for the root/sequential context and
/// `1..=n` for parallel tree workers; `seq` increments per worker, so
/// `(worker, seq)` orders the merged stream totally and
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// What unit of work this span covers.
    pub kind: SpanKind,
    /// Emitting worker (`0` = root/sequential context).
    pub worker: u32,
    /// Per-worker emission index.
    pub seq: u64,
    /// Worker-local deterministic clock at span start.
    pub start_ticks: u64,
    /// Deterministic work metered inside the span.
    pub ticks: u64,
    /// Kind-specific count (see [`SpanKind`]).
    pub count: u64,
    /// Kind-specific value (objective / bound); `NaN` when not
    /// applicable.
    pub value: f64,
}

/// Writes `v` as a JSON number, or `null` when not finite (JSON has no
/// `inf`/`NaN` literals).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl SpanEvent {
    /// The event as one JSONL line (no trailing newline):
    /// `{"type":"span","kind":…,"worker":…,"seq":…,"start_ticks":…,"ticks":…,"count":…,"value":…}`.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"type\":\"span\",\"kind\":\"{}\",\"worker\":{},\"seq\":{},\"start_ticks\":{},\"ticks\":{},\"count\":{},\"value\":",
            self.kind.name(),
            self.worker,
            self.seq,
            self.start_ticks,
            self.ticks,
            self.count,
        );
        push_json_f64(&mut s, self.value);
        s.push('}');
        s
    }
}

/// One row of the periodic progress table: the global search state at a
/// deterministic timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressRow {
    /// Deterministic seconds elapsed.
    pub det_seconds: f64,
    /// Nodes expanded so far.
    pub nodes: u64,
    /// Open nodes still queued.
    pub open: u64,
    /// Incumbent objective, if any.
    pub incumbent: Option<f64>,
    /// Best bound of the open frontier (`-inf` before the root solves).
    pub bound: f64,
}

impl ProgressRow {
    /// Relative incumbent/bound gap in percent, when both sides exist.
    #[must_use]
    pub fn gap_pct(&self) -> Option<f64> {
        let inc = self.incumbent?;
        if !self.bound.is_finite() {
            return None;
        }
        let denom = inc.abs().max(crate::tol::ZERO);
        Some(100.0 * (inc - self.bound).abs() / denom)
    }

    /// The row as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{\"type\":\"progress\",\"det_seconds\":");
        push_json_f64(&mut s, self.det_seconds);
        s.push_str(&format!(",\"nodes\":{},\"open\":{}", self.nodes, self.open));
        s.push_str(",\"incumbent\":");
        push_json_f64(&mut s, self.incumbent.unwrap_or(f64::NAN));
        s.push_str(",\"bound\":");
        push_json_f64(&mut s, self.bound);
        s.push('}');
        s
    }
}

/// Renders a [`PhaseBreakdown`] as one JSONL line (no trailing newline):
/// `{"type":"phases","presolve_ticks":…,"presolve_count":…,…,"total_ticks":…}`.
#[must_use]
pub fn phases_json_line(phases: &PhaseBreakdown) -> String {
    let mut s = String::from("{\"type\":\"phases\"");
    for p in Phase::ALL {
        s.push_str(&format!(
            ",\"{}_ticks\":{},\"{}_count\":{}",
            p.name(),
            phases.ticks(p),
            p.name(),
            phases.count(p)
        ));
    }
    s.push_str(&format!(",\"total_ticks\":{}}}", phases.total_ticks()));
    s
}

/// Receives the trace of one solve. `record` gets every span event, in
/// the deterministic merged order; `progress` gets periodic table rows
/// *live* during the search; `finish` gets the final phase breakdown.
///
/// `Send` is a supertrait so a shared sink can be driven from the
/// parallel coordinator thread.
pub trait TraceSink: Send {
    /// One span event (called in deterministic merged order at the end
    /// of the solve).
    fn record(&mut self, event: &SpanEvent);

    /// One periodic progress row (called live during the search).
    fn progress(&mut self, row: &ProgressRow) {
        let _ = row;
    }

    /// The solve finished with this phase breakdown.
    fn finish(&mut self, phases: &PhaseBreakdown) {
        let _ = phases;
    }
}

/// A bounded in-memory sink: keeps the most recent `capacity` span
/// events plus the final phase breakdown.
pub struct RingSink {
    capacity: usize,
    events: VecDeque<SpanEvent>,
    dropped: u64,
    phases: Option<PhaseBreakdown>,
}

impl RingSink {
    /// A ring over the most recent `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            phases: None,
        }
    }

    /// The buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<SpanEvent> {
        &self.events
    }

    /// Events evicted by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last finished solve's phase breakdown, if any.
    #[must_use]
    pub fn phases(&self) -> Option<&PhaseBreakdown> {
        self.phases.as_ref()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &SpanEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }

    fn finish(&mut self, phases: &PhaseBreakdown) {
        self.phases = Some(*phases);
    }
}

/// Streams the trace as JSON Lines: one `span` object per event, one
/// `progress` object per table row, one final `phases` object. Write
/// errors are swallowed (tracing must never fail a solve); check
/// [`JsonlSink::write_errors`] if delivery matters.
pub struct JsonlSink<W: Write> {
    out: W,
    write_errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL sink over any writer (a file, a `Vec<u8>`, …).
    #[must_use]
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            write_errors: 0,
        }
    }

    /// Borrows the underlying writer (e.g. to inspect a buffer).
    #[must_use]
    pub fn get_ref(&self) -> &W {
        &self.out
    }

    /// Unwraps the underlying writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Lines that failed to write.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    fn line(&mut self, line: &str) {
        if writeln!(self.out, "{line}").is_err() {
            self.write_errors += 1;
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &SpanEvent) {
        self.line(&event.to_json_line());
    }

    fn progress(&mut self, row: &ProgressRow) {
        self.line(&row.to_json_line());
    }

    fn finish(&mut self, phases: &PhaseBreakdown) {
        self.line(&phases_json_line(phases));
        let _ = self.out.flush();
    }
}

/// Renders the periodic progress table in the SCIP/HiGHS style:
///
/// ```text
///      nodes     open        incumbent            bound     gap%   det-sec
///        256       37         42.00000         39.50000     5.95      0.41
/// ```
///
/// plus a per-phase summary when the solve finishes. Span events are
/// counted but not printed (pair with a [`JsonlSink`] for the full
/// stream).
pub struct ProgressLog<W: Write> {
    out: W,
    rows: u64,
    spans: u64,
}

/// Progress-table rows between repeated headers.
const PROGRESS_HEADER_EVERY: u64 = 16;

impl<W: Write> ProgressLog<W> {
    /// A progress log over any writer (e.g. `std::io::stderr()`).
    #[must_use]
    pub fn new(out: W) -> Self {
        ProgressLog {
            out,
            rows: 0,
            spans: 0,
        }
    }
}

impl<W: Write + Send> TraceSink for ProgressLog<W> {
    fn record(&mut self, _event: &SpanEvent) {
        self.spans += 1;
    }

    fn progress(&mut self, row: &ProgressRow) {
        if self.rows.is_multiple_of(PROGRESS_HEADER_EVERY) {
            let _ = writeln!(
                self.out,
                "{:>10} {:>8} {:>16} {:>16} {:>8} {:>9}",
                "nodes", "open", "incumbent", "bound", "gap%", "det-sec"
            );
        }
        self.rows += 1;
        let inc = row
            .incumbent
            .map_or_else(|| format!("{:>16}", "-"), |o| format!("{o:>16.5}"));
        let bound = if row.bound.is_finite() {
            format!("{:>16.5}", row.bound)
        } else {
            format!("{:>16}", "-")
        };
        let gap = row
            .gap_pct()
            .map_or_else(|| format!("{:>8}", "-"), |g| format!("{g:>8.2}"));
        let _ = writeln!(
            self.out,
            "{:>10} {:>8} {inc} {bound} {gap} {:>9.2}",
            row.nodes, row.open, row.det_seconds
        );
    }

    fn finish(&mut self, phases: &PhaseBreakdown) {
        let _ = writeln!(
            self.out,
            "phase breakdown ({} spans, {:.3} det-sec total):",
            self.spans,
            DeterministicClock::ticks_to_seconds(phases.total_ticks())
        );
        for p in Phase::ALL {
            if phases.ticks(p) == 0 && phases.count(p) == 0 {
                continue;
            }
            let _ = writeln!(
                self.out,
                "  {:>9}  {:>12.4} det-sec  {:>8} ops",
                p.name(),
                phases.seconds(p),
                phases.count(p)
            );
        }
        let _ = self.out.flush();
    }
}

/// A cloneable, thread-safe handle to one shared [`TraceSink`], as stored
/// in [`SolverConfig`](crate::SolverConfig). The solver locks the sink
/// briefly per delivery; per-worker span buffers keep the hot path free
/// of this lock entirely.
///
/// Delivery recovers from lock poisoning instead of panicking: a sink
/// that panicked once already propagated that panic on its own thread,
/// and observability must not compound the crash by taking down the
/// threads that merely try to report afterwards.
#[derive(Clone)]
pub struct TraceHandle {
    sink: Arc<Mutex<dyn TraceSink>>,
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

impl TraceHandle {
    /// Wraps an owned sink.
    #[must_use]
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        TraceHandle {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Wraps a sink the caller keeps shared access to (e.g. to inspect a
    /// [`RingSink`] after the solve).
    #[must_use]
    pub fn shared(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        TraceHandle { sink }
    }

    /// Delivers one progress row.
    pub fn progress(&self, row: &ProgressRow) {
        self.sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .progress(row);
    }

    /// Delivers the merged span stream, in order.
    pub fn record_all(&self, events: &[SpanEvent]) {
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for ev in events {
            sink.record(ev);
        }
    }

    /// Delivers the final phase breakdown.
    pub fn finish(&self, phases: &PhaseBreakdown) {
        self.sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .finish(phases);
    }
}

/// Per-worker span buffer: cheap `Vec` pushes on the hot path, merged in
/// fixed worker order into the sink when the solve ends.
pub(crate) struct TraceBuf {
    worker: u32,
    seq: u64,
    pub(crate) events: Vec<SpanEvent>,
}

impl TraceBuf {
    pub(crate) fn new(worker: u32) -> Self {
        TraceBuf {
            worker,
            seq: 0,
            events: Vec::new(),
        }
    }

    pub(crate) fn set_worker(&mut self, worker: u32) {
        self.worker = worker;
    }

    pub(crate) fn emit(
        &mut self,
        kind: SpanKind,
        start_ticks: u64,
        ticks: u64,
        count: u64,
        value: f64,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(SpanEvent {
            kind,
            worker: self.worker,
            seq,
            start_ticks,
            ticks,
            count,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
    }

    #[test]
    fn phase_breakdown_finalize_sums_to_total() {
        let mut p = PhaseBreakdown::default();
        p.add(Phase::RootLp, 100, 1);
        p.add(Phase::Tree, 250, 7);
        p.finalize(400);
        assert_eq!(p.ticks(Phase::Other), 50);
        assert_eq!(p.total_ticks(), 400);
        assert_eq!(p.attributed_ticks(), 350);
        assert_eq!(p.count(Phase::Tree), 7);
    }

    #[test]
    fn ring_sink_bounds_memory() {
        let mut ring = RingSink::new(2);
        for seq in 0..5u64 {
            ring.record(&SpanEvent {
                kind: SpanKind::NodeExpand,
                worker: 0,
                seq,
                start_ticks: seq,
                ticks: 1,
                count: 1,
                value: 0.0,
            });
        }
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.events()[0].seq, 3);
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let ev = SpanEvent {
            kind: SpanKind::CutRound,
            worker: 0,
            seq: 3,
            start_ticks: 10,
            ticks: 90,
            count: 4,
            value: f64::NAN,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"type\":\"span\",\"kind\":\"cut_round\",\"worker\":0,\"seq\":3,\
             \"start_ticks\":10,\"ticks\":90,\"count\":4,\"value\":null}"
        );
        let row = ProgressRow {
            det_seconds: 0.5,
            nodes: 128,
            open: 9,
            incumbent: None,
            bound: f64::NEG_INFINITY,
        };
        assert_eq!(
            row.to_json_line(),
            "{\"type\":\"progress\",\"det_seconds\":0.5,\"nodes\":128,\"open\":9,\
             \"incumbent\":null,\"bound\":null}"
        );
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev);
        sink.finish(&PhaseBreakdown::default());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("{\"type\":\"phases\""));
    }

    #[test]
    fn progress_log_renders_table_and_summary() {
        let mut log = ProgressLog::new(Vec::new());
        log.progress(&ProgressRow {
            det_seconds: 0.41,
            nodes: 256,
            open: 37,
            incumbent: Some(42.0),
            bound: 39.5,
        });
        let mut phases = PhaseBreakdown::default();
        phases.add(Phase::Tree, 410_000_000, 256);
        log.finish(&phases);
        let text = String::from_utf8(log.out).unwrap();
        assert!(text.contains("nodes"), "header missing: {text}");
        assert!(text.contains("256"));
        assert!(text.contains("phase breakdown"));
        assert!(text.contains("tree"));
    }

    #[test]
    fn trace_buf_orders_events_per_worker() {
        let mut buf = TraceBuf::new(2);
        buf.emit(SpanKind::NodeExpand, 0, 5, 1, 1.0);
        buf.emit(SpanKind::Refactor, 5, 2, 1, f64::NAN);
        assert_eq!(buf.events.len(), 2);
        assert_eq!(buf.events[0].seq, 0);
        assert_eq!(buf.events[1].seq, 1);
        assert!(buf.events.iter().all(|e| e.worker == 2));
    }
}
