//! Sparse revised simplex with bounded-variable dual reoptimisation.
//!
//! This is the fast path behind [`crate::simplex::solve_relaxation_warm`].
//! Instead of the dense `B⁻¹A` tableau of the fallback engine, it keeps:
//!
//! * the constraint matrix `A` once, in CSC form (shared via
//!   [`Model::csc`]),
//! * the basis in factorised form ([`crate::factor`]): a sparse LU with
//!   product-form eta updates by default (`O(nnz)`-flavoured FTRAN/BTRAN
//!   solves, one eta per pivot, periodic refactorisation), or the
//!   explicit dense `m × m` inverse of the original engine behind
//!   [`LpEngine::DenseInverse`] (the correctness oracle),
//! * reduced costs priced through sparse columns (`O(nnz)` per pivot).
//!
//! The dual simplex selects its leaving row with **Devex
//! reference-framework pricing** (violation² over an evolving row weight;
//! the default), exact **dual steepest-edge** weights
//! ([`PricingRule::SteepestEdge`]: `violation² / ‖e_r B⁻¹‖²`, maintained
//! by the Forrest–Goldfarb recurrence at the cost of one extra FTRAN per
//! pivot, degrading to the Devex framework when weight drift is
//! detected), or plain Dantzig largest-violation — with Bland-style
//! lowest-index selection under stalls in every mode. It then runs a
//! **bound-flipping dual ratio test**: boxed candidates whose dual ratio
//! is passed by the step are flipped to their other bound — one FTRAN
//! folds all flips into `β` — which lets one iteration absorb many
//! would-be degenerate pivots.
//!
//! Per-iteration work is kept proportional to what the iteration touches,
//! not to the problem size: the BTRAN/FTRAN results carry their non-zero
//! patterns out of the factorisation (see `*_tracked` in
//! [`crate::factor`]), the dual row is priced **row-wise over `ρ`'s
//! support** against a CSR companion view of the matrix (sparse PRICE)
//! instead of a dense sweep over all columns, and the β/weight/reduced-
//! cost updates and scratch re-zeroing all walk those patterns. One
//! solve's result pattern seeds the next dependent solve's DFS (the DSE
//! FTRAN reuses the BTRAN's pattern directly).
//!
//! The engine always starts **dual feasible** and drives out primal
//! infeasibility with the dual simplex:
//!
//! * **cold start** — the all-slack basis with every structural column on
//!   its cost-preferred bound is dual feasible by construction, so phase 1
//!   is never needed;
//! * **warm start** — a parent node's optimal [`Basis`] stays dual
//!   feasible after any bound change (branch-and-bound never touches the
//!   objective or the matrix), so a child re-optimises in a handful of
//!   dual pivots.
//!
//! Warm starts come in two flavours. A [`LpContext`] keeps the engine of
//! the previous solve alive; when the caller's warm basis is exactly the
//! context's current basis (the common case on branch-and-bound plunges
//! and diving loops, where consecutive solves differ by one bound), the
//! context applies the bound deltas directly to `β` with a single FTRAN —
//! no factorisation at all. Otherwise the basis is reinstalled from the
//! snapshot with one refactorisation (sparse LU by default, `O(m³)` only
//! on the dense oracle path), still far cheaper than a cold two-phase
//! tableau solve.
//!
//! Any situation the engine cannot handle — a dual-infeasible start (e.g.
//! an improving direction with an infinite bound), a singular warm basis,
//! numerical trouble, or a final solution that fails verification — makes
//! it bail out, and the caller falls back to the robust dense two-phase
//! primal simplex.

use crate::basis::{Basis, VarStatus};
use crate::expr::ConstraintSense;
use crate::factor::{DenseInverse, FactorOpts, Factorization, LuFactors};
use crate::model::Model;
use crate::simplex::{LpConfig, LpEngine, LpResult, LpStatus, PricingRule, TOL};
use crate::sparse::{CscMatrix, RowMajor};
use crate::tol;
use std::sync::Arc;

/// Primal feasibility tolerance for basic values.
const PFEAS: f64 = tol::PRIMAL_FEAS;
/// Dual feasibility tolerance when accepting a warm basis.
const DFEAS: f64 = tol::DUAL_FEAS;
/// Post-solve verification tolerance against the original constraints.
const VERIFY_TOL: f64 = tol::VERIFY;
/// Consecutive non-improving iterations before anti-cycling kicks in.
const STALL_LIMIT: u32 = 64;
/// Devex weights above this trigger a reference-framework reset.
const DEVEX_RESET: f64 = 1e8;
/// Lower clamp on dual steepest-edge weights (guards the score division
/// and the recurrence against cancellation-driven negatives).
const DSE_FLOOR: f64 = tol::DSE_FLOOR;
/// Drift gate for the steepest-edge recurrence: when the maintained
/// weight of the leaving row and its exact norm `‖ρ‖²` disagree by more
/// than this factor, the weights are abandoned for the rest of the solve
/// (the Devex framework takes over).
const DSE_DRIFT: f64 = 16.0;
/// Remaining-slope floor for accepting another bound flip in the dual
/// ratio test.
const FLIP_SLOPE_TOL: f64 = tol::FLIP_SLOPE;
/// Relative scale of the anti-degeneracy cost perturbation applied on
/// cold starts (see [`Engine::apply_perturbation`]). Large enough to
/// break exact reduced-cost ties in the dual ratio test, small enough
/// that the perturbed optimum is (in practice) also an optimum of the
/// true costs — which [`Engine::strip_perturbation`] verifies exactly
/// before any result is reported.
const PERTURB_SCALE: f64 = tol::PERTURB;

/// SplitMix64: cheap, high-quality deterministic hash for the per-column
/// perturbation stream.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic uniform in `[0, 1)` for column `j` under `seed`.
fn perturb_unit(seed: u64, j: usize) -> f64 {
    let h = splitmix64(seed ^ (j as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Outcome of one dual-simplex run.
enum RunStatus {
    Optimal,
    Infeasible,
    IterLimit,
    /// Numerical trouble (tiny pivot / inconsistent row): caller must fall
    /// back to a colder, more robust path.
    Unstable,
}

/// Bounded-variable revised simplex working set.
///
/// Owns everything it needs (the CSC matrix is shared via `Arc`), so a
/// [`LpContext`] can keep it alive between solves.
struct Engine {
    a: Arc<CscMatrix>,
    /// Row-major companion of `a` for sparse PRICE (pricing the dual row
    /// against the columns adjacent to its support).
    rows: RowMajor,
    m: usize,
    /// Structural column count.
    n: usize,
    /// Structural + logical column count.
    n_total: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase cost per column (structural objective; logicals are free).
    cost: Vec<f64>,
    /// Non-zero entries in the structural cost (for objective-change
    /// detection on the hot path).
    cost_nnz: usize,
    /// The unperturbed structural costs while an anti-degeneracy cost
    /// perturbation is active; `None` once stripped (or never applied).
    /// Restoring from this copy (rather than subtracting the perturbation)
    /// keeps the true costs bit-exact.
    base_cost: Option<Vec<f64>>,
    rhs: Vec<f64>,
    status: Vec<VarStatus>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Inverse map: column -> row, or `usize::MAX` when nonbasic.
    in_row: Vec<usize>,
    /// Basis factorisation (sparse LU + eta file, or dense inverse).
    factor: Factorization,
    /// Engine/pricing options this engine was built with; a hot reuse
    /// with different options must miss and rebuild.
    kind: LpEngine,
    opts: FactorOpts,
    pricing: PricingRule,
    bound_flips: bool,
    /// Devex reference-framework weight per row.
    devex: Vec<f64>,
    /// Running maximum of the Devex weights — the reference-framework
    /// reset trigger, maintained incrementally so the weight update can
    /// stay on the pivot column's pattern. (It may briefly overestimate
    /// after a leaving-row weight shrinks, triggering a reset at worst
    /// one framework early — a policy choice, not a correctness issue.)
    devex_max: f64,
    /// Dual steepest-edge weight per row (`γᵢ ≈ ‖eᵢB⁻¹‖²`); only
    /// maintained under [`PricingRule::SteepestEdge`].
    dse: Vec<f64>,
    /// `false` once steepest-edge weight drift was detected: scoring and
    /// maintenance degrade to the Devex framework until the next
    /// install/cold start restores exact weights.
    dse_ok: bool,
    /// Values of basic variables per row.
    beta: Vec<f64>,
    /// Reduced costs per column (zero on basic columns).
    d: Vec<f64>,
    /// Scratch: tableau row `α = e_r B⁻¹ A` of the leaving row.
    alpha: Vec<f64>,
    /// `true` while `alpha` holds a stale dense sweep. The dense PRICE
    /// branch overwrites every entry anyway, so back-to-back dense
    /// iterations skip the re-zeroing sweep; the sparse branch (which
    /// accumulates with `+=`) clears the vector first when this is set.
    alpha_dirty: bool,
    /// Scratch: pivot column `w = B⁻¹ A_q`.
    w: Vec<f64>,
    /// Scratch: `ρ = e_r B⁻¹` (row space), also reused for BTRAN rhs.
    rho: Vec<f64>,
    /// Scratch: accumulated bound-change right-hand side (kept zeroed
    /// between uses).
    flip_rhs: Vec<f64>,
    /// Scratch: dual ratio-test candidates `(ratio, column, sign-normalised
    /// alpha)`.
    cands: Vec<(f64, usize, f64)>,
    /// Scratch: columns flipped by the long-step ratio test.
    flips: Vec<usize>,
    /// Scratch: sparse right-hand-side pattern handed to the
    /// factorisation's hyper-sparse solves.
    pat: Vec<usize>,
    /// Scratch: result pattern of the leaving row's BTRAN (`ρ`'s
    /// support) — drives sparse PRICE and seeds the DSE FTRAN.
    rpat: Vec<usize>,
    /// Scratch: result pattern of the pivot column's FTRAN (`w`'s
    /// support) — drives the β/weight updates and re-zeroing.
    wpat: Vec<usize>,
    /// Scratch: result pattern of the DSE FTRAN (`τ`'s support).
    tpat: Vec<usize>,
    /// Scratch: columns touched by sparse PRICE (`α`'s support).
    apat: Vec<usize>,
    /// Column marks + stamp deduplicating sparse PRICE touches.
    amark: Vec<u32>,
    astamp: u32,
    /// Hot reuses since the last factorisation (numerical hygiene).
    age: u32,
    iterations: u64,
    work: u64,
}

/// Normalises one structural bound pair: free variables are pinned at a
/// pseudo lower bound of zero (croxmap models never produce them; this
/// mirrors the dense engine).
fn norm_bounds(l: f64, u: f64) -> (f64, f64) {
    if !l.is_finite() && !u.is_finite() {
        (0.0, u)
    } else {
        (l, u)
    }
}

impl Engine {
    fn new(model: &Model, bounds: &[(f64, f64)], config: &LpConfig) -> Self {
        let a = model.csc();
        let m = model.num_constraints();
        let n = model.num_vars();
        let n_total = n + m;
        let mut lower = vec![0.0f64; n_total];
        let mut upper = vec![f64::INFINITY; n_total];
        for j in 0..n {
            (lower[j], upper[j]) = norm_bounds(bounds[j].0, bounds[j].1);
        }
        let mut rhs = vec![0.0f64; m];
        for (i, con) in model.constraints().iter().enumerate() {
            rhs[i] = con.rhs;
            let s = n + i;
            match con.sense {
                ConstraintSense::Le => {
                    lower[s] = 0.0;
                    upper[s] = f64::INFINITY;
                }
                ConstraintSense::Ge => {
                    lower[s] = f64::NEG_INFINITY;
                    upper[s] = 0.0;
                }
                ConstraintSense::Eq => {
                    lower[s] = 0.0;
                    upper[s] = 0.0;
                }
            }
        }
        let mut cost = vec![0.0f64; n_total];
        for &(v, c) in model.objective() {
            cost[v.index()] = c;
        }
        let cost_nnz = cost.iter().filter(|&&c| c != 0.0).count();
        let factor = match config.engine {
            LpEngine::SparseLu => {
                let mut lu = Box::new(LuFactors::identity(m));
                lu.set_ordering(config.factor_opts().ordering);
                Factorization::Lu(lu)
            }
            // The tableau-only engine never reaches this code path (it is
            // gated in `solve_relaxation_in`); map it to the dense oracle
            // so a stray construction still behaves.
            LpEngine::DenseInverse | LpEngine::DenseTableau => {
                Factorization::Dense(DenseInverse::identity(m))
            }
        };
        let rows = a.to_row_major();
        Engine {
            a,
            rows,
            m,
            n,
            n_total,
            lower,
            upper,
            cost,
            cost_nnz,
            base_cost: None,
            rhs,
            status: vec![VarStatus::AtLower; n_total],
            basis: vec![0; m],
            in_row: vec![usize::MAX; n_total],
            factor,
            kind: config.engine,
            opts: config.factor_opts(),
            pricing: config.pricing,
            bound_flips: config.bound_flips,
            devex: vec![1.0; m],
            devex_max: 1.0,
            dse: vec![1.0; m],
            dse_ok: true,
            beta: vec![0.0; m],
            d: vec![0.0; n_total],
            alpha: vec![0.0; n_total],
            alpha_dirty: false,
            w: vec![0.0; m],
            rho: vec![0.0; m],
            flip_rhs: vec![0.0; m],
            cands: Vec::new(),
            flips: Vec::new(),
            pat: Vec::new(),
            rpat: Vec::new(),
            wpat: Vec::new(),
            tpat: Vec::new(),
            apat: Vec::new(),
            amark: vec![0; n_total],
            astamp: 0,
            age: 0,
            iterations: 0,
            work: 0,
        }
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Basic => unreachable!("basic column has no bound value"),
        }
    }

    /// Returns `true` if this engine's live state is exactly the snapshot
    /// `warm` for the same constraint matrix *and* objective, under the
    /// same engine options. The cost check matters: the hot path reuses
    /// the engine's reduced costs, so a caller that mutated the objective
    /// between solves must not land here (it falls through to the install
    /// path, which reprices).
    fn matches(&self, model: &Model, warm: &Basis, config: &LpConfig) -> bool {
        self.kind == config.engine
            && self.opts == config.factor_opts()
            && self.pricing == config.pricing
            && self.bound_flips == config.bound_flips
            && Arc::ptr_eq(&self.a, &model.csc())
            && warm.cols == self.basis
            && warm.status == self.status
            && self.cost_matches(model)
    }

    /// Checks that the engine's structural cost vector still equals the
    /// model's objective (terms are normalised: merged, zeros dropped).
    fn cost_matches(&self, model: &Model) -> bool {
        model
            .objective()
            .iter()
            .all(|&(v, c)| self.cost[v.index()].to_bits() == c.to_bits())
            && self.cost_nnz == model.objective().len()
    }

    /// Hot warm start: the basis is already installed and factorised; only
    /// variable bounds changed. Folds every `Δx · A_j` into one right-hand
    /// side and applies a single FTRAN (`β -= B⁻¹ Σ Δx_j A_j`), leaving
    /// reduced costs untouched (dual feasibility is unaffected by bound
    /// *values*). Returns `false` when a bound change forced a nonbasic
    /// column onto its other side and the stored reduced cost is dual
    /// infeasible there — the caller must then reinstall (and reprice)
    /// instead.
    fn retarget_bounds(&mut self, bounds: &[(f64, f64)]) -> bool {
        let mut flips_ok = true;
        let mut any = false;
        for j in 0..self.n {
            let (nl, nu) = norm_bounds(bounds[j].0, bounds[j].1);
            if nl.to_bits() == self.lower[j].to_bits() && nu.to_bits() == self.upper[j].to_bits() {
                continue;
            }
            let was_fixed = self.upper[j] - self.lower[j] <= TOL;
            let old = match self.status[j] {
                VarStatus::Basic => {
                    // Basic columns carry no bound value; the dual simplex
                    // simply sees any new violation through `violation`.
                    self.lower[j] = nl;
                    self.upper[j] = nu;
                    continue;
                }
                VarStatus::AtLower => self.lower[j],
                VarStatus::AtUpper => self.upper[j],
            };
            self.lower[j] = nl;
            self.upper[j] = nu;
            // Fixed columns are exempt from every dual-feasibility check
            // (they can never enter), so a column widening back out of
            // fixedness may carry a stale, infeasible reduced cost — only
            // a reprice can vouch for it.
            if was_fixed && nu - nl > TOL {
                flips_ok &= match self.status[j] {
                    VarStatus::AtLower => self.d[j] >= -DFEAS,
                    VarStatus::AtUpper => self.d[j] <= DFEAS,
                    VarStatus::Basic => unreachable!(),
                };
            }
            // Keep the nonbasic column on a finite side; a side switch is
            // only dual feasible if the reduced cost sign allows it.
            if self.status[j] == VarStatus::AtLower && !nl.is_finite() {
                self.status[j] = VarStatus::AtUpper;
                flips_ok &= self.d[j] <= DFEAS;
            } else if self.status[j] == VarStatus::AtUpper && !nu.is_finite() {
                self.status[j] = VarStatus::AtLower;
                flips_ok &= self.d[j] >= -DFEAS;
            }
            let new = self.nonbasic_value(j);
            let dx = new - old;
            if dx != 0.0 {
                self.a.axpy_col(&mut self.flip_rhs, dx, j);
                any = true;
                self.work += self.a.col_nnz(j).max(1) as u64;
            }
        }
        if any {
            // β -= B⁻¹ Σ Δx_j A_j: one solve for the whole bound batch.
            self.factor.ftran(&mut self.flip_rhs);
            for (bi, dv) in self.beta.iter_mut().zip(self.flip_rhs.iter()) {
                *bi -= dv;
            }
            self.flip_rhs.fill(0.0);
            self.work += self.m as u64 + self.factor.take_work();
        }
        self.age += 1;
        flips_ok
    }

    /// Grows the live engine in place after `model` gained rows
    /// `old_m..` — the incremental-row (cutting plane) path behind
    /// [`LpSession::add_rows`](crate::LpSession::add_rows). The new
    /// logical slacks enter the basis in the new rows, so the basis
    /// stays square and **dual feasibility is untouched**: the duals of
    /// the new rows are zero (slack costs are zero), every existing
    /// reduced cost keeps its value, and the only thing the next solve
    /// has to repair is the primal infeasibility of whichever appended
    /// rows the current point violates — exactly the cut reoptimisation
    /// the dual simplex is made for.
    ///
    /// The factorisation absorbs the growth without starting over: one
    /// sparse BTRAN per new row computes the bordered-growth multipliers
    /// `μ = B⁻ᵀ n` (see [`crate::factor`]), and the update-file policy
    /// decides when the border is folded into a fresh LU — the forced
    /// refactorisation fallback. Returns `false` only when that fallback
    /// refactorisation itself fails (numerically singular grown basis).
    fn add_rows(&mut self, model: &Model, old_m: usize) -> bool {
        let new_m = model.num_constraints();
        debug_assert_eq!(self.m, old_m);
        debug_assert!(new_m > old_m);
        let k = new_m - old_m;
        // Border multipliers against the *pre-growth* factors.
        let mut borders = Vec::with_capacity(k);
        for con in &model.constraints()[old_m..] {
            self.rho.fill(0.0);
            self.pat.clear();
            for &(v, c) in &con.terms {
                let r = self.in_row[v.index()];
                if r != usize::MAX {
                    self.rho[r] = c;
                    self.pat.push(r);
                }
            }
            if self.pat.is_empty() {
                borders.push(Vec::new());
                self.dse.push(1.0);
                continue;
            }
            self.factor.btran_sparse(&mut self.rho, &self.pat);
            let mu: Vec<(usize, f64)> = self
                .rho
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            self.work += (con.terms.len() + mu.len()) as u64 + self.factor.take_work();
            // Steepest-edge weight of the new basic slack's row: with the
            // bordered basis, `e_newᵀ B'⁻¹ = (−μᵀ, 1)`, so its squared
            // norm is `1 + ‖μ‖²` exactly — the old rows' weights are
            // untouched by the growth.
            let g: f64 = 1.0 + mu.iter().map(|&(_, v)| v * v).sum::<f64>();
            self.dse.push(g.max(DSE_FLOOR));
            borders.push(mu);
        }
        self.rho.fill(0.0);
        // Column space grows by k logicals (indices n+old_m..), row space
        // by k — both strictly appended, so no existing index moves.
        self.a = model.csc();
        self.m = new_m;
        self.n_total += k;
        for (i, con) in model.constraints()[old_m..].iter().enumerate() {
            let row = old_m + i;
            let (sl, su) = match con.sense {
                ConstraintSense::Le => (0.0, f64::INFINITY),
                ConstraintSense::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintSense::Eq => (0.0, 0.0),
            };
            self.lower.push(sl);
            self.upper.push(su);
            self.cost.push(0.0);
            if let Some(base) = &mut self.base_cost {
                base.push(0.0);
            }
            self.d.push(0.0);
            self.alpha.push(0.0);
            self.status.push(VarStatus::Basic);
            self.in_row.push(row);
            self.basis.push(self.n + row);
            self.rhs.push(con.rhs);
            self.devex.push(1.0);
            // β for the new basic slack: the row's residual at the
            // current point. A violated cut lands outside the slack
            // bounds and becomes the dual simplex's next leaving row.
            let mut s_val = con.rhs;
            for &(v, c) in &con.terms {
                let j = v.index();
                let x = match self.status[j] {
                    VarStatus::Basic => self.beta[self.in_row[j]],
                    _ => self.nonbasic_value(j),
                };
                s_val -= c * x;
            }
            self.beta.push(s_val);
            self.work += con.terms.len() as u64 + 1;
        }
        self.w.resize(new_m, 0.0);
        self.rho.resize(new_m, 0.0);
        self.flip_rhs.resize(new_m, 0.0);
        self.amark.resize(self.n_total, 0);
        self.rows = self.a.to_row_major();
        self.work += self.a.nnz() as u64;
        self.factor.grow(borders);
        self.work += self.factor.take_work();
        // Forced-refactorisation fallback: the border counts towards the
        // update file, so a growth the policy deems too fat is folded
        // into a fresh LU immediately.
        if self.factor.needs_refactor(&self.opts) {
            if !self.refactorize() {
                return false;
            }
            self.refresh_beta();
        }
        true
    }

    /// Objective-delta retarget: reloads the structural costs from the
    /// model and reprices. Returns `false` when the current basis is dual
    /// infeasible for the new objective — the caller must then restart
    /// cold (the dual simplex cannot run from a dual-infeasible point).
    fn retarget_objective(&mut self, model: &Model) -> bool {
        debug_assert!(self.base_cost.is_none(), "no perturbation between solves");
        for c in &mut self.cost[..self.n] {
            *c = 0.0;
        }
        for &(v, c) in model.objective() {
            self.cost[v.index()] = c;
        }
        self.cost_nnz = self.cost[..self.n].iter().filter(|&&c| c != 0.0).count();
        self.work += self.n as u64;
        self.reprice()
    }

    /// Applies the anti-degeneracy cost perturbation: every structural
    /// cost gains a tiny positive, seed-derived amount, breaking the
    /// reduced-cost ties that make set-partitioning cold solves stall on
    /// degenerate dual pivots (and bail out to the dense tableau). The
    /// original costs are kept aside for an exact restore.
    fn apply_perturbation(&mut self, seed: u64) {
        if self.base_cost.is_some() {
            return;
        }
        self.base_cost = Some(self.cost.clone());
        for j in 0..self.n {
            let eps = PERTURB_SCALE * (1.0 + self.cost[j].abs()) * (0.5 + perturb_unit(seed, j));
            self.cost[j] += eps;
        }
        self.work += self.n as u64;
    }

    /// Removes an active cost perturbation and re-verifies the basis
    /// against the true costs. Returns `false` when the perturbed-optimal
    /// basis is dual infeasible for the true objective — the caller must
    /// then restart unperturbed; `true` means the current basis is exactly
    /// optimal for the unperturbed problem (primal feasibility is
    /// untouched by cost changes).
    fn strip_perturbation(&mut self) -> bool {
        let Some(base) = self.base_cost.take() else {
            return true;
        };
        self.cost = base;
        self.reprice()
    }

    /// All-slack dual-feasible start. Returns `false` when no dual-feasible
    /// nonbasic point exists (improving direction with an infinite bound).
    fn cold_start(&mut self) -> bool {
        for j in 0..self.n {
            let c = self.cost[j];
            self.status[j] = if c > TOL {
                if !self.lower[j].is_finite() {
                    return false;
                }
                VarStatus::AtLower
            } else if c < -TOL {
                if !self.upper[j].is_finite() {
                    return false;
                }
                VarStatus::AtUpper
            } else if self.lower[j].is_finite() {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
        }
        for i in 0..self.m {
            let s = self.n + i;
            self.basis[i] = s;
            self.status[s] = VarStatus::Basic;
            self.in_row[s] = i;
        }
        self.factor.reset_identity();
        self.devex.fill(1.0);
        self.devex_max = 1.0;
        // With B = I every row of B⁻¹ is a unit vector, so the all-ones
        // steepest-edge weights are *exact* — no solves needed.
        self.dse.fill(1.0);
        self.dse_ok = true;
        // β = b − N x_N; with B = I (slacks) no solve is needed.
        self.beta.copy_from_slice(&self.rhs);
        let mut acc = std::mem::take(&mut self.beta);
        for j in 0..self.n {
            let x = self.nonbasic_value(j);
            self.a.axpy_col(&mut acc, -x, j);
        }
        self.beta = acc;
        // Slack costs are zero, so y = 0 and d = c.
        self.d.copy_from_slice(&self.cost);
        self.age = 0;
        self.work += (self.a.nnz() + self.n_total) as u64 + self.factor.take_work();
        true
    }

    /// Installs a basis snapshot: refactorises the basis, reprices, and
    /// checks dual feasibility. Returns `false` if the snapshot is
    /// unusable.
    fn install(&mut self, warm: &Basis) -> bool {
        if !warm.is_consistent(self.m, self.n_total) {
            return false;
        }
        self.status.copy_from_slice(&warm.status);
        self.basis.copy_from_slice(&warm.cols);
        for j in 0..self.n_total {
            self.in_row[j] = usize::MAX;
        }
        for (i, &c) in self.basis.iter().enumerate() {
            self.in_row[c] = i;
        }
        // Nonbasic statuses must sit on finite bounds.
        for j in 0..self.n_total {
            match self.status[j] {
                VarStatus::Basic => {}
                VarStatus::AtLower if !self.lower[j].is_finite() => {
                    if self.upper[j].is_finite() {
                        self.status[j] = VarStatus::AtUpper;
                    } else {
                        self.lower[j] = 0.0;
                    }
                }
                VarStatus::AtUpper if !self.upper[j].is_finite() => {
                    if self.lower[j].is_finite() {
                        self.status[j] = VarStatus::AtLower;
                    } else {
                        self.lower[j] = 0.0;
                        self.status[j] = VarStatus::AtLower;
                    }
                }
                _ => {}
            }
        }
        if !self.refactorize() {
            return false;
        }
        self.devex.fill(1.0);
        self.devex_max = 1.0;
        if self.pricing == PricingRule::SteepestEdge {
            self.init_dse_exact();
        }
        if !self.reprice() {
            return false;
        }
        self.refresh_beta();
        true
    }

    /// Recomputes the steepest-edge weights exactly from the installed
    /// basis: `γᵢ = ‖eᵢB⁻¹‖²` via one hyper-sparse unit BTRAN per row.
    /// Affordable at install cadence precisely because the BTRANs are
    /// hyper-sparse; the dual loop then only pays the recurrence.
    fn init_dse_exact(&mut self) {
        self.rho.fill(0.0);
        for i in 0..self.m {
            let tracked = self
                .factor
                .btran_unit_tracked(i, &mut self.rho, &mut self.rpat);
            let mut g = 0.0;
            if tracked {
                for &k in &self.rpat {
                    let v = self.rho[k];
                    g += v * v;
                    self.rho[k] = 0.0;
                }
                self.work += self.rpat.len() as u64 + 1;
            } else {
                for v in &mut self.rho {
                    g += *v * *v;
                    *v = 0.0;
                }
                self.work += self.m as u64;
            }
            self.dse[i] = g.max(DSE_FLOOR);
        }
        self.dse_ok = true;
        self.work += self.factor.take_work();
    }

    /// Whether the Devex framework is the active leaving-row weighting —
    /// either as the configured rule or as the fallback for drifted
    /// steepest-edge weights.
    fn devex_active(&self) -> bool {
        match self.pricing {
            PricingRule::Devex => true,
            PricingRule::SteepestEdge => !self.dse_ok,
            PricingRule::Dantzig => false,
        }
    }

    /// Forrest–Goldfarb steepest-edge recurrence for one pivot: row `r`
    /// leaves with pivot element `wr = α_r`, `rho` holds `ρ = e_r B⁻¹`
    /// (pattern `rpat` when `rho_tracked`) and `w` holds `α = B⁻¹A_q`
    /// (pattern `wpat` when `w_tracked`). With `τ = B⁻¹ρ` (the one extra
    /// FTRAN this rule costs, seeded by ρ's tracked pattern):
    ///
    /// ```text
    ///   γ_r' = γ_r / α_r²
    ///   γ_i' = γ_i − 2(α_i/α_r)τ_i + (α_i/α_r)²γ_r     (i ≠ r)
    /// ```
    ///
    /// The exact `γ_r = ‖ρ‖²` is free here and is used both in the
    /// recurrence and as a drift detector against the maintained weight;
    /// on drift the weights are abandoned (Devex framework takes over
    /// until the next install). `rho` is consumed either way — it leaves
    /// this method all-zero.
    fn update_dse_weights(&mut self, r: usize, wr: f64, rho_tracked: bool, w_tracked: bool) {
        // Exact squared norm of the leaving row of B⁻¹.
        let mut gr_exact = 0.0;
        if rho_tracked {
            for &i in &self.rpat {
                let v = self.rho[i];
                gr_exact += v * v;
            }
            self.work += self.rpat.len() as u64;
        } else {
            for &v in &self.rho {
                gr_exact += v * v;
            }
            self.work += self.m as u64;
        }
        let est = self.dse[r];
        if gr_exact <= 0.0
            || gr_exact.is_nan()
            || est > gr_exact * DSE_DRIFT
            || gr_exact > est * DSE_DRIFT
        {
            // Drifted recurrence: degrade to the Devex framework for the
            // rest of this solve (fresh reference basis).
            self.dse_ok = false;
            self.devex.fill(1.0);
            self.devex_max = 1.0;
            if rho_tracked {
                for &i in &self.rpat {
                    self.rho[i] = 0.0;
                }
            } else {
                self.rho.fill(0.0);
            }
            self.work += 2 * self.m as u64;
            return;
        }
        // τ = B⁻¹ρ, computed in place (ρ has no further use this
        // iteration); the BTRAN's result pattern seeds the FTRAN's DFS.
        let tau_tracked = if rho_tracked {
            self.factor
                .ftran_sparse_tracked(&mut self.rho, &self.rpat, &mut self.tpat)
        } else {
            self.factor.ftran(&mut self.rho);
            false
        };
        self.work += self.factor.take_work();
        let ar_inv = 1.0 / wr;
        if w_tracked {
            for &i in &self.wpat {
                let wi = self.w[i];
                if i == r || wi == 0.0 {
                    continue;
                }
                let ratio = wi * ar_inv;
                let g = self.dse[i] + ratio * (ratio * gr_exact - 2.0 * self.rho[i]);
                self.dse[i] = g.max(DSE_FLOOR);
            }
            self.work += self.wpat.len() as u64;
        } else {
            for i in 0..self.m {
                let wi = self.w[i];
                if i == r || wi == 0.0 {
                    continue;
                }
                let ratio = wi * ar_inv;
                let g = self.dse[i] + ratio * (ratio * gr_exact - 2.0 * self.rho[i]);
                self.dse[i] = g.max(DSE_FLOOR);
            }
            self.work += self.m as u64;
        }
        self.dse[r] = (gr_exact * ar_inv * ar_inv).max(DSE_FLOOR);
        // Consume τ: restore the all-zero scratch invariant.
        if tau_tracked {
            for &i in &self.tpat {
                self.rho[i] = 0.0;
            }
            self.work += self.tpat.len() as u64;
        } else {
            self.rho.fill(0.0);
            self.work += self.m as u64;
        }
    }

    /// Recomputes reduced costs `d = c − c_B B⁻¹ A` and gates on dual
    /// feasibility. Returns `false` when the basis is dual infeasible.
    fn reprice(&mut self) -> bool {
        // y = B⁻ᵀ c_B via one BTRAN on the basic-cost vector; the
        // non-zero basic costs are its pattern, so the hyper-sparse
        // kernel can restrict itself to their reach.
        self.rho.fill(0.0);
        self.pat.clear();
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = self.cost[b];
            if cb != 0.0 {
                self.rho[r] = cb;
                self.pat.push(r);
            }
        }
        if !self.pat.is_empty() {
            self.factor.btran_sparse(&mut self.rho, &self.pat);
        }
        let mut feasible = true;
        for j in 0..self.n_total {
            if self.status[j] == VarStatus::Basic {
                self.d[j] = 0.0;
                continue;
            }
            self.d[j] = if j < self.n {
                self.cost[j] - self.a.dot_col(&self.rho, j)
            } else {
                -self.rho[j - self.n]
            };
            if self.upper[j] - self.lower[j] <= TOL {
                continue; // fixed columns cannot move; their sign is moot
            }
            let ok = match self.status[j] {
                VarStatus::AtLower => self.d[j] >= -DFEAS,
                VarStatus::AtUpper => self.d[j] <= DFEAS,
                VarStatus::Basic => unreachable!(),
            };
            if !ok {
                feasible = false;
                break;
            }
        }
        // The dual loop keeps `rho` all-zero between uses; restore the
        // invariant after borrowing it for the dual prices — on the
        // infeasible exit too, since the caller restarts through paths
        // that assume clean scratch.
        self.rho.fill(0.0);
        self.work += (2 * self.m + self.a.nnz() + self.n_total) as u64 + self.factor.take_work();
        feasible
    }

    /// Restores the all-zero invariant on the pricing scratch (`rho` and
    /// `alpha`) after an iteration that aborted between PRICE and the
    /// end-of-iteration cleanup. Zeroes over the tracked patterns when
    /// the solves were hyper-sparse, densely otherwise.
    fn clear_price_scratch(&mut self, rho_tracked: bool, price_sparse: bool) {
        if rho_tracked {
            for &i in &self.rpat {
                self.rho[i] = 0.0;
            }
            self.work += self.rpat.len() as u64;
        } else {
            self.rho.fill(0.0);
            self.work += self.m as u64;
        }
        if price_sparse {
            for &j in &self.apat {
                self.alpha[j] = 0.0;
            }
            self.work += self.apat.len() as u64;
        }
        // Dense sweeps stay parked under `alpha_dirty` (set when the
        // sweep ran); whoever needs clean α clears it lazily.
    }

    /// Recomputes `β = B⁻¹ (b − N x_N)` from scratch.
    fn refresh_beta(&mut self) {
        self.rho.copy_from_slice(&self.rhs);
        for j in 0..self.n_total {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let x = self.nonbasic_value(j);
            if x == 0.0 {
                continue;
            }
            if j < self.n {
                self.a.axpy_col(&mut self.rho, -x, j);
            } else {
                self.rho[j - self.n] -= x;
            }
        }
        self.factor.ftran(&mut self.rho);
        self.beta.copy_from_slice(&self.rho);
        // The dual loop keeps `rho` all-zero between uses; restore the
        // invariant after borrowing it as dense scratch.
        self.rho.fill(0.0);
        self.work += (2 * self.m + self.a.nnz()) as u64 + self.factor.take_work();
    }

    /// Rebuilds the factorisation from the current basis columns.
    fn refactorize(&mut self) -> bool {
        let ok = self.factor.factorize(&self.basis, &self.a, self.n);
        self.work += self.factor.take_work();
        if ok {
            self.age = 0;
        }
        ok
    }

    /// Violation of row `i`'s basic variable: `(amount, below_lower)`.
    fn violation(&self, i: usize) -> (f64, bool) {
        let b = self.basis[i];
        if self.beta[i] < self.lower[b] - PFEAS {
            (self.lower[b] - self.beta[i], true)
        } else if self.beta[i] > self.upper[b] + PFEAS {
            (self.beta[i] - self.upper[b], false)
        } else {
            (0.0, false)
        }
    }

    /// Dual simplex main loop. Dual feasibility is an invariant; the loop
    /// ends when primal feasibility is reached (optimal), a violated row
    /// admits no entering column (infeasible), or a budget/stability limit
    /// trips.
    #[allow(clippy::too_many_lines)]
    fn dual_simplex(&mut self, max_iterations: u64, work_limit: u64) -> RunStatus {
        let mut stall = 0u32;
        let mut was_bland = false;
        let mut last_infeasibility = f64::INFINITY;
        // The iteration kernels keep `rho`, `w` and `alpha` all-zero
        // between uses, scattering and re-zeroing over the tracked solve
        // patterns instead of sweeping dense vectors. Every path into
        // here maintains the invariant (constructors and resizes start
        // zeroed; `reprice`/`refresh_beta`/`init_dse_exact` restore it;
        // the dirty mid-iteration exits below clean up before returning),
        // so entry costs nothing — just assert it in debug builds.
        debug_assert!(self.rho.iter().all(|&v| v == 0.0), "rho scratch dirty");
        debug_assert!(self.w.iter().all(|&v| v == 0.0), "w scratch dirty");
        debug_assert!(
            self.alpha_dirty || self.alpha.iter().all(|&v| v == 0.0),
            "alpha scratch dirty without its flag"
        );
        loop {
            // --- Leaving row: Devex-weighted (or plain largest) violation;
            // under stall, the violated row with the smallest basic column
            // index (Bland-like). ---
            let bland = stall > STALL_LIMIT;
            // Devex reference-framework lifecycle: the weights approximate
            // steepest-edge norms *relative to the basis at the last
            // reset*. They deliberately survive refactorisations (the
            // basis is unchanged by a refactorisation, so the framework is
            // still valid), but a Bland-guard episode pivots without
            // regard for the weights — reset the framework on entry so
            // the degenerate thrash does not distort it, and again on
            // exit so Devex resumes from a fresh reference basis. (Exact
            // steepest-edge weights need no reset: their recurrence runs
            // through Bland episodes unchanged.)
            if bland != was_bland {
                was_bland = bland;
                if self.devex_active() {
                    self.devex.fill(1.0);
                    self.devex_max = 1.0;
                    self.work += self.m as u64;
                }
            }
            let mut leave: Option<(usize, f64)> = None; // (row, score)
            let mut total_infeasibility = 0.0;
            for i in 0..self.m {
                let (v, _) = self.violation(i);
                if v <= 0.0 {
                    continue;
                }
                total_infeasibility += v;
                let score = match self.pricing {
                    PricingRule::Devex => v * v / self.devex[i],
                    PricingRule::Dantzig => v,
                    PricingRule::SteepestEdge => {
                        if self.dse_ok {
                            v * v / self.dse[i]
                        } else {
                            v * v / self.devex[i]
                        }
                    }
                };
                let better = if bland {
                    leave.is_none_or(|(r, _)| self.basis[i] < self.basis[r])
                } else {
                    leave.is_none_or(|(_, s)| score > s)
                };
                if better {
                    leave = Some((i, score));
                }
            }
            self.work += self.m as u64;
            let Some((r, _)) = leave else {
                return RunStatus::Optimal;
            };
            // Budget checks live here, after the leaving-row scan: the
            // scratch invariant still holds (no tracked solve has run this
            // iteration), so bailing out needs no cleanup. `work` counts
            // any carried-over ticks from failed warm/perturbed attempts,
            // making `work_limit` a cap on the *whole* solve.
            if self.iterations >= max_iterations || self.work >= work_limit {
                return RunStatus::IterLimit;
            }
            if total_infeasibility < last_infeasibility - tol::OBJ_AGREE {
                stall = 0;
                last_infeasibility = total_infeasibility;
            } else {
                stall += 1;
            }

            let bcol = self.basis[r];
            let (_, below) = self.violation(r);
            let delta0 = if below {
                self.beta[r] - self.lower[bcol] // < 0
            } else {
                self.beta[r] - self.upper[bcol] // > 0
            };

            // --- Entering column: dual ratio test over eligible nonbasics.
            // α is the leaving row of the tableau: ρ = e_r B⁻¹ via a
            // pattern-tracked BTRAN (`rho` is all-zero on entry), then
            // priced row-wise over ρ's support (sparse PRICE) — only the
            // columns adjacent to ρ's non-zero rows can price non-zero.
            let rho_tracked = self
                .factor
                .btran_unit_tracked(r, &mut self.rho, &mut self.rpat);
            self.work += self.factor.take_work();
            // Sparse PRICE only pays when ρ's adjacency is genuinely
            // sparser than one dense sweep: on small dense bases (a
            // handful of rows touching every column) the row walk visits
            // the whole matrix anyway and the dense sweep is cheaper.
            let price_sparse = rho_tracked && {
                let support: usize = self.rpat.iter().map(|&i| self.rows.row_nnz(i) + 1).sum();
                2 * support <= self.a.nnz() + self.n_total
            };
            self.cands.clear();
            if price_sparse {
                if self.alpha_dirty {
                    // A previous dense sweep left α populated; the
                    // accumulation below needs a clean slate.
                    self.alpha.fill(0.0);
                    self.alpha_dirty = false;
                    self.work += self.n_total as u64;
                }
                self.astamp = self.astamp.wrapping_add(1);
                if self.astamp == 0 {
                    self.amark.fill(0);
                    self.astamp = 1;
                }
                self.apat.clear();
                let mut visited = 0u64;
                for &i in &self.rpat {
                    let ri = self.rho[i];
                    if ri == 0.0 {
                        continue;
                    }
                    // Row i's logical column prices to ρᵢ directly.
                    self.alpha[self.n + i] = ri;
                    self.apat.push(self.n + i);
                    let (cols, vals) = self.rows.row(i);
                    for (&j, &v) in cols.iter().zip(vals) {
                        self.alpha[j] += ri * v;
                        if self.amark[j] != self.astamp {
                            self.amark[j] = self.astamp;
                            self.apat.push(j);
                        }
                    }
                    visited += cols.len() as u64 + 1;
                }
                // Canonical (ascending column) candidate order, so the
                // ratio-test tie-breaks are independent of ρ's pattern
                // order.
                self.apat.sort_unstable();
                for &j in &self.apat {
                    if self.status[j] == VarStatus::Basic || self.upper[j] - self.lower[j] <= TOL {
                        continue; // basic, or fixed: can never enter
                    }
                    let aj = self.alpha[j];
                    // Sign-normalised entry: positive = "x_j must rise".
                    let ap = if delta0 > 0.0 { aj } else { -aj };
                    let eligible = match self.status[j] {
                        VarStatus::AtLower => ap > TOL,
                        VarStatus::AtUpper => ap < -TOL,
                        VarStatus::Basic => unreachable!(),
                    };
                    if eligible {
                        self.cands.push((self.d[j] / ap, j, ap));
                    }
                }
                self.work += visited + 2 * self.apat.len() as u64;
            } else {
                // Dense ρ (or the dense oracle): the classic column sweep.
                for j in 0..self.n_total {
                    if self.status[j] == VarStatus::Basic {
                        self.alpha[j] = 0.0;
                        continue;
                    }
                    let aj = if j < self.n {
                        self.a.dot_col(&self.rho, j)
                    } else {
                        self.rho[j - self.n]
                    };
                    self.alpha[j] = aj;
                    if self.upper[j] - self.lower[j] <= TOL {
                        continue; // fixed: can never enter
                    }
                    let ap = if delta0 > 0.0 { aj } else { -aj };
                    let eligible = match self.status[j] {
                        VarStatus::AtLower => ap > TOL,
                        VarStatus::AtUpper => ap < -TOL,
                        VarStatus::Basic => unreachable!(),
                    };
                    if eligible {
                        self.cands.push((self.d[j] / ap, j, ap));
                    }
                }
                self.work += (self.a.nnz() + self.n_total) as u64;
                self.alpha_dirty = true;
            }
            if self.cands.is_empty() {
                // The violated row proves the bound system inconsistent.
                // ρ and α are live at this point: restore the all-zero
                // scratch invariant before handing the engine back.
                self.clear_price_scratch(rho_tracked, price_sparse);
                return RunStatus::Infeasible;
            }

            // --- Entering selection. The bound-flipping (long-step) ratio
            // test walks candidates by ascending ratio: while the leaving
            // row's infeasibility can absorb a boxed candidate's full
            // bound span, flip it instead of entering it; the first
            // candidate that exhausts the slope (or is unboxed) enters.
            // Under the Bland guard the plain min-ratio test runs. ---
            self.flips.clear();
            let q = if self.bound_flips && !bland && self.cands.len() > 1 {
                self.cands
                    .sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                let mut slope = delta0.abs();
                let mut chosen = None;
                for (idx, &(_, j, ap)) in self.cands.iter().enumerate() {
                    let span = self.upper[j] - self.lower[j];
                    if idx + 1 == self.cands.len() || !span.is_finite() {
                        chosen = Some(j);
                        break;
                    }
                    let next = slope - ap.abs() * span;
                    if next > FLIP_SLOPE_TOL {
                        self.flips.push(j);
                        slope = next;
                    } else {
                        chosen = Some(j);
                        break;
                    }
                }
                // lint: allow(panic-path) — the walk's final iteration unconditionally sets `chosen` (both branch arms do); reaching here with None is impossible
                chosen.expect("candidate walk always selects an entering column")
            } else {
                let mut best: Option<(f64, usize)> = None;
                for &(ratio, j, _) in &self.cands {
                    if best.is_none_or(|(br, _)| ratio < br - tol::ZERO) {
                        best = Some((ratio, j));
                    }
                }
                // lint: allow(panic-path) — this arm is only entered when `self.cands` is non-empty, so the fold found at least one candidate
                best.expect("candidates are non-empty").1
            };

            // Apply the flips: statuses switch sides and one FTRAN folds
            // every Δx into β (their reduced costs are corrected by the
            // dual update below, which runs over all nonbasic columns).
            if !self.flips.is_empty() {
                let mut nnz_work = 0u64;
                for k in 0..self.flips.len() {
                    let j = self.flips[k];
                    let old = self.nonbasic_value(j);
                    self.status[j] = match self.status[j] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        VarStatus::Basic => unreachable!("flip candidates are nonbasic"),
                    };
                    let dx = self.nonbasic_value(j) - old;
                    if dx != 0.0 {
                        if j < self.n {
                            self.a.axpy_col(&mut self.flip_rhs, dx, j);
                            nnz_work += self.a.col_nnz(j) as u64;
                        } else {
                            self.flip_rhs[j - self.n] += dx;
                            nnz_work += 1;
                        }
                    }
                }
                self.factor.ftran(&mut self.flip_rhs);
                for (bi, dv) in self.beta.iter_mut().zip(self.flip_rhs.iter()) {
                    *bi -= dv;
                }
                self.flip_rhs.fill(0.0);
                self.work += nnz_work + self.m as u64 + self.factor.take_work();
            }

            // --- Pivot. w = B⁻¹ A_q gives the primal update column; the
            // entering column's row pattern seeds the hyper-sparse FTRAN
            // and the result pattern drives every consumer below (`w` is
            // all-zero on entry).
            let w_tracked = if q < self.n {
                self.a.axpy_col(&mut self.w, 1.0, q);
                self.factor
                    .ftran_sparse_tracked(&mut self.w, self.a.col(q).0, &mut self.wpat)
            } else {
                let slack_row = [q - self.n];
                self.w[slack_row[0]] = 1.0;
                self.factor
                    .ftran_sparse_tracked(&mut self.w, &slack_row, &mut self.wpat)
            };
            self.work += self.factor.take_work();
            let wr = self.w[r];
            if wr.abs() < tol::PIVOT_MIN {
                // ρ, α and w are live: restore the all-zero scratch
                // invariant before handing the engine back.
                self.clear_price_scratch(rho_tracked, price_sparse);
                if w_tracked {
                    for &i in &self.wpat {
                        self.w[i] = 0.0;
                    }
                    self.work += self.wpat.len() as u64;
                } else {
                    self.w.fill(0.0);
                    self.work += self.m as u64;
                }
                return RunStatus::Unstable;
            }

            // Dual price update keeps d consistent without repricing;
            // α is zero outside its support, so its pattern suffices.
            let theta_d = self.d[q] / self.alpha[q];
            if theta_d != 0.0 {
                if price_sparse {
                    for &j in &self.apat {
                        if self.status[j] != VarStatus::Basic {
                            self.d[j] -= theta_d * self.alpha[j];
                        }
                    }
                    self.work += self.apat.len() as u64;
                } else {
                    for j in 0..self.n_total {
                        if self.status[j] != VarStatus::Basic {
                            self.d[j] -= theta_d * self.alpha[j];
                        }
                    }
                    self.work += self.n_total as u64;
                }
            }
            self.d[q] = 0.0;
            self.d[bcol] = -theta_d;

            // Primal step from the post-flip violation: entering moves by
            // t, basics move against w (over w's support).
            let delta = if below {
                self.beta[r] - self.lower[bcol]
            } else {
                self.beta[r] - self.upper[bcol]
            };
            let t = delta / wr;
            let x_q = self.nonbasic_value(q);
            if w_tracked {
                for &i in &self.wpat {
                    self.beta[i] -= t * self.w[i];
                }
                self.work += self.wpat.len() as u64;
            } else {
                for (bi, &wi) in self.beta.iter_mut().zip(self.w.iter()) {
                    *bi -= t * wi;
                }
                self.work += self.m as u64;
            }
            self.beta[r] = x_q + t;

            // Steepest-edge weight recurrence (consumes ρ as the RHS of
            // its extra FTRAN), falling back to the Devex framework when
            // the weights have drifted.
            let mut rho_consumed = false;
            if self.pricing == PricingRule::SteepestEdge && self.dse_ok {
                self.update_dse_weights(r, wr, rho_tracked, w_tracked);
                rho_consumed = true;
            }

            // Devex weight maintenance within the reference framework
            // (only w's support can raise a weight; the reset trigger is
            // the incrementally maintained running maximum).
            if self.devex_active() {
                let wr2 = wr * wr;
                let gr = self.devex[r].max(1.0);
                if w_tracked {
                    for &i in &self.wpat {
                        let wi = self.w[i];
                        if i != r && wi != 0.0 {
                            let cand = (wi * wi / wr2) * gr;
                            if cand > self.devex[i] {
                                self.devex[i] = cand;
                                if cand > self.devex_max {
                                    self.devex_max = cand;
                                }
                            }
                        }
                    }
                    self.work += self.wpat.len() as u64;
                } else {
                    for (i, wi) in self.w.iter().enumerate() {
                        if i != r && *wi != 0.0 {
                            let cand = (wi * wi / wr2) * gr;
                            if cand > self.devex[i] {
                                self.devex[i] = cand;
                                if cand > self.devex_max {
                                    self.devex_max = cand;
                                }
                            }
                        }
                    }
                    self.work += self.m as u64;
                }
                self.devex[r] = (gr / wr2).max(1.0);
                if self.devex[r] > self.devex_max {
                    self.devex_max = self.devex[r];
                }
                if self.devex_max > DEVEX_RESET {
                    self.devex.fill(1.0); // new reference framework
                    self.devex_max = 1.0;
                    self.work += self.m as u64;
                }
            }

            // Basis bookkeeping before the representation update: a
            // declined Forrest–Tomlin update refactorises from the *new*
            // basis columns, so they must be committed first.
            self.status[bcol] = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.in_row[bcol] = usize::MAX;
            self.status[q] = VarStatus::Basic;
            self.in_row[q] = r;
            self.basis[r] = q;
            self.iterations += 1;

            // Representation update: in-place Forrest–Tomlin spike / one
            // eta (LU), or a rank-one sweep (dense oracle). An update the
            // representation cannot absorb (a numerically degenerate
            // Forrest–Tomlin diagonal) forces an immediate
            // refactorisation, exactly like the update-file policy.
            let absorbed = self.factor.update(r, &self.w, &self.opts);
            self.work += self.factor.take_work();

            // Restore the all-zero scratch invariants over the patterns
            // the iteration actually touched.
            if w_tracked {
                for &i in &self.wpat {
                    self.w[i] = 0.0;
                }
                self.work += self.wpat.len() as u64;
            } else {
                self.w.fill(0.0);
                self.work += self.m as u64;
            }
            if !rho_consumed {
                if rho_tracked {
                    for &i in &self.rpat {
                        self.rho[i] = 0.0;
                    }
                    self.work += self.rpat.len() as u64;
                } else {
                    self.rho.fill(0.0);
                    self.work += self.m as u64;
                }
            }
            if price_sparse {
                for &j in &self.apat {
                    self.alpha[j] = 0.0;
                }
                self.work += self.apat.len() as u64;
            }
            // Dense sweeps leave α populated (`alpha_dirty`): the next
            // dense sweep overwrites it wholesale, and a sparse one
            // clears it first — re-zeroing here would charge m-sized
            // work the old dense kernel never paid.

            // Periodic refactorisation folds the update file back into a
            // fresh LU and recomputes β against it. (The Devex weights
            // survive on purpose: refactorisation changes the numbers,
            // not the basis, so the reference framework stays valid.)
            if !absorbed || self.factor.needs_refactor(&self.opts) {
                if !self.refactorize() {
                    return RunStatus::Unstable;
                }
                self.refresh_beta();
            }
        }
    }

    /// Structural variable values at the current basis, clamped to bounds.
    fn extract_values(&self) -> Vec<f64> {
        (0..self.n)
            .map(|j| {
                let x = match self.status[j] {
                    VarStatus::AtLower => self.lower[j],
                    VarStatus::AtUpper => self.upper[j],
                    VarStatus::Basic => self.beta[self.in_row[j]],
                };
                x.clamp(self.lower[j], self.upper[j])
            })
            .collect()
    }

    /// Cheap exactness gate: the solution the engine reports must satisfy
    /// the original rows. Guards against silent numerical drift in the
    /// factorised basis.
    fn verify(&self, model: &Model, values: &[f64]) -> bool {
        model
            .constraints()
            .iter()
            .all(|c| c.is_satisfied(values, VERIFY_TOL))
    }

    fn snapshot(&self) -> Basis {
        Basis {
            cols: self.basis.clone(),
            status: self.status.clone(),
        }
    }
}

/// A reusable revised-simplex context.
///
/// Keeps the engine of the most recent *optimal* solve alive so that the
/// next solve can warm-start without refactorising when its warm basis is
/// the context's live basis — the common case in diving loops and
/// branch-and-bound plunges, where consecutive LPs differ by one or a few
/// bound changes.
#[derive(Default)]
pub(crate) struct LpContext {
    engine: Option<Engine>,
}

impl LpContext {
    /// Attempts a revised-simplex solve; `Err(spent_ticks)` means "use the
    /// dense fallback", with the deterministic work already burnt by the
    /// failed attempts so the caller can charge it anyway. On optimal
    /// solves the second tuple element carries the basis snapshot for
    /// warm-starting related solves.
    pub(crate) fn solve(
        &mut self,
        model: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        warm: Option<&Basis>,
    ) -> Result<(LpResult, Option<Basis>), u64> {
        let mut carried_work = 0u64;
        // Factorisation statistics of failed attempts, merged into the
        // eventual result so the bench log (and its growth_peak guard)
        // sees every update the solve actually performed.
        let mut carried_stats = crate::factor::FactorStats::default();

        // Hot path: the previous engine is exactly the requested basis.
        enum Hot {
            Miss,
            Done(Option<(LpResult, Option<Basis>)>, u64),
        }
        let hot = if let (Some(basis), Some(engine)) = (warm, self.engine.as_mut()) {
            if engine.age < config.refactor_interval && engine.matches(model, basis, config) {
                engine.iterations = 0;
                engine.work = 0;
                let outcome = if engine.retarget_bounds(bounds) {
                    run(engine, model, config)
                } else {
                    // A bound change flipped a nonbasic column onto a dual
                    // infeasible side: must reinstall and reprice.
                    None
                };
                let spent = engine.work;
                if outcome.is_none() {
                    // The attempt will be discarded below: salvage its
                    // factorisation counters alongside the spent work.
                    // (An infeasible outcome's counters were already
                    // drained into the result by `run` and are salvaged
                    // from there when it is discarded.)
                    carried_stats.merge(&engine.factor.take_stats());
                }
                Hot::Done(outcome, spent)
            } else {
                Hot::Miss
            }
        } else {
            Hot::Miss
        };
        match hot {
            Hot::Done(Some(out), spent) => {
                if out.0.status == LpStatus::Infeasible {
                    // A drifted factorisation (eta updates + retarget
                    // deltas) can fabricate infeasibility, and
                    // branch-and-bound prunes on it permanently. Confirm
                    // with a freshly factorised install of the same
                    // snapshot below, salvaging the discarded attempt's
                    // counters from the result `run` packaged them into.
                    carried_work = spent;
                    carried_stats.merge(&out.0.factor);
                    self.engine = None;
                } else {
                    if out.0.status != LpStatus::Optimal {
                        self.engine = None;
                    }
                    return Ok(out);
                }
            }
            Hot::Done(None, spent) => {
                // Numerical drift (or an infeasible flip): discard and
                // restart below, carrying the spent work so deterministic
                // budgets stay honest.
                carried_work = spent;
                self.engine = None;
            }
            Hot::Miss => {}
        }

        // Warm path: reinstall the snapshot with a refactorisation.
        if let Some(basis) = warm {
            let mut engine = Engine::new(model, bounds, config);
            engine.work += carried_work;
            if engine.install(basis) {
                if let Some(mut out) = run(&mut engine, model, config) {
                    out.0.factor.merge(&carried_stats);
                    self.keep_if_optimal(engine, out.0.status);
                    return Ok(out);
                }
            }
            // Unusable or unstable warm basis: retry cold before giving
            // up, carrying the spent work so budgets stay honest.
            carried_work = engine.work;
            carried_stats.merge(&engine.factor.take_stats());
        }

        // Cold path: all-slack dual-feasible start, with the
        // anti-degeneracy cost perturbation on the first attempt. If the
        // perturbed run fails (numerical trouble, or the perturbation
        // cannot be stripped exactly), one unperturbed retry runs before
        // the dense fallback, carrying the spent work.
        let mut perturb = config.perturb;
        loop {
            let mut engine = Engine::new(model, bounds, config);
            engine.work += carried_work;
            if perturb {
                engine.apply_perturbation(config.perturb_seed);
            }
            if !engine.cold_start() {
                // Perturbed costs can flip a free column's preferred bound
                // onto an infinite side; the unperturbed retry decides.
                carried_work = engine.work;
                carried_stats.merge(&engine.factor.take_stats());
                if perturb {
                    perturb = false;
                    continue;
                }
                self.engine = None;
                return Err(carried_work);
            }
            match run(&mut engine, model, config) {
                Some(mut ok) => {
                    ok.0.factor.merge(&carried_stats);
                    self.keep_if_optimal(engine, ok.0.status);
                    return Ok(ok);
                }
                None => {
                    carried_work = engine.work;
                    carried_stats.merge(&engine.factor.take_stats());
                    if perturb {
                        perturb = false;
                        continue;
                    }
                    self.engine = None;
                    return Err(carried_work);
                }
            }
        }
    }

    fn keep_if_optimal(&mut self, engine: Engine, status: LpStatus) {
        self.engine = if status == LpStatus::Optimal {
            Some(engine)
        } else {
            None
        };
    }

    /// Incremental row addition: `model` is the session's view *after*
    /// appending rows `old_m..` (grow-only — same columns, same
    /// objective, same leading rows). When the live engine's state is
    /// exactly `warm` for the pre-growth problem, the engine absorbs the
    /// new rows in place (new slacks basic, bordered factor growth) and
    /// the grown snapshot is returned; otherwise the context is cleared
    /// and the caller's next warm solve reinstalls with a full
    /// refactorisation at the grown dimensions. The second tuple element
    /// is the deterministic work spent either way.
    pub(crate) fn add_rows(
        &mut self,
        model: &Model,
        old_m: usize,
        warm: &Basis,
    ) -> (Option<Basis>, u64) {
        let Some(engine) = self.engine.as_mut() else {
            return (None, 0);
        };
        let usable = engine.m == old_m
            && engine.n == model.num_vars()
            && warm.cols == engine.basis
            && warm.status == engine.status
            && engine.cost_matches(model);
        if !usable {
            self.engine = None;
            return (None, 0);
        }
        engine.work = 0;
        if engine.add_rows(model, old_m) {
            let spent = engine.work;
            (Some(engine.snapshot()), spent)
        } else {
            let spent = engine.work;
            self.engine = None;
            (None, spent)
        }
    }

    /// Objective-delta retarget on the live engine. Returns whether the
    /// warm state survived (dual-feasible reprice) plus the work spent;
    /// on failure the context is cleared and the next solve runs cold.
    pub(crate) fn set_objective(&mut self, model: &Model) -> (bool, u64) {
        let Some(engine) = self.engine.as_mut() else {
            return (false, 0);
        };
        engine.work = 0;
        if engine.retarget_objective(model) {
            (true, engine.work)
        } else {
            let spent = engine.work;
            self.engine = None;
            (false, spent)
        }
    }
}

/// One-shot convenience over [`LpContext::solve`] (no state reuse).
#[cfg(test)]
pub(crate) fn solve(
    model: &Model,
    bounds: &[(f64, f64)],
    config: &LpConfig,
    warm: Option<&Basis>,
) -> Option<(LpResult, Option<Basis>)> {
    LpContext::default().solve(model, bounds, config, warm).ok()
}

/// Runs the dual simplex and packages the outcome; `None` requests the
/// caller to fall back (numerical trouble or failed verification).
fn run(engine: &mut Engine, model: &Model, config: &LpConfig) -> Option<(LpResult, Option<Basis>)> {
    match engine.dual_simplex(config.max_iterations, config.work_limit) {
        RunStatus::Optimal => {
            // An active cost perturbation must come off before anything is
            // reported: restoring the true costs and repricing proves the
            // basis optimal for the *unperturbed* objective. Failure sends
            // the caller back for an unperturbed restart.
            if !engine.strip_perturbation() {
                return None;
            }
            let values = engine.extract_values();
            if !engine.verify(model, &values) {
                return None;
            }
            let objective = model.objective_value(&values);
            let result = LpResult {
                status: LpStatus::Optimal,
                objective,
                values,
                iterations: engine.iterations,
                work_ticks: engine.work,
                dense_fallback: false,
                factor: engine.factor.take_stats(),
            };
            let basis = engine.snapshot();
            Some((result, Some(basis)))
        }
        RunStatus::Infeasible => Some((
            LpResult {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: engine.iterations,
                work_ticks: engine.work,
                dense_fallback: false,
                factor: engine.factor.take_stats(),
            },
            None,
        )),
        RunStatus::IterLimit => {
            let values = engine.extract_values();
            let objective = model.objective_value(&values);
            Some((
                LpResult {
                    status: LpStatus::IterLimit,
                    objective,
                    values,
                    iterations: engine.iterations,
                    work_ticks: engine.work,
                    dense_fallback: false,
                    factor: engine.factor.take_stats(),
                },
                None,
            ))
        }
        RunStatus::Unstable => None,
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercises the deprecated shims as oracles
mod tests {
    use super::*;
    use crate::factor::UpdateRule;
    use crate::simplex::solve_relaxation_warm;
    use crate::Model;

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    fn two_var_model() -> Model {
        // min -(x + y) s.t. x + 2y <= 4, 3x + y <= 6; optimum (1.6, 1.2).
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("c1", m.expr([(x, 1.0), (y, 2.0)]).leq(4.0));
        m.add_constraint("c2", m.expr([(x, 3.0), (y, 1.0)]).leq(6.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        m
    }

    #[test]
    fn cold_revised_matches_known_optimum() {
        let m = two_var_model();
        let bounds = vec![(0.0, 10.0), (0.0, 10.0)];
        let (res, basis) = solve(&m, &bounds, &cfg(), None).expect("revised path");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!(
            (res.objective + 14.0 / 5.0).abs() < 1e-6,
            "{}",
            res.objective
        );
        assert!(basis.expect("basis on optimal").is_consistent(2, 4));
    }

    #[test]
    fn cold_solve_agrees_across_engines() {
        let m = two_var_model();
        let bounds = vec![(0.0, 10.0), (0.0, 10.0)];
        for engine in [LpEngine::SparseLu, LpEngine::DenseInverse] {
            let config = LpConfig {
                engine,
                ..LpConfig::default()
            };
            let (res, _) = solve(&m, &bounds, &config, None).expect("revised path");
            assert_eq!(res.status, LpStatus::Optimal);
            assert!(
                (res.objective + 14.0 / 5.0).abs() < 1e-6,
                "{engine:?}: {}",
                res.objective
            );
        }
    }

    #[test]
    fn warm_start_reoptimises_after_bound_change() {
        let m = two_var_model();
        let root = vec![(0.0, 10.0), (0.0, 10.0)];
        let (_, basis) = solve(&m, &root, &cfg(), None).expect("root solve");
        let basis = basis.expect("optimal basis");
        // Tighten x to [0, 1]: warm solve must agree with a cold solve.
        let child = vec![(0.0, 1.0), (0.0, 10.0)];
        let (warm_res, _) = solve(&m, &child, &cfg(), Some(&basis)).expect("warm path");
        let (cold_res, _) = solve(&m, &child, &cfg(), None).expect("cold path");
        assert_eq!(warm_res.status, LpStatus::Optimal);
        assert!((warm_res.objective - cold_res.objective).abs() < 1e-6);
    }

    #[test]
    fn hot_context_skips_refactorisation() {
        let m = two_var_model();
        let root = vec![(0.0, 10.0), (0.0, 10.0)];
        let mut ctx = LpContext::default();
        let (root_res, basis) = ctx.solve(&m, &root, &cfg(), None).expect("root");
        assert_eq!(root_res.status, LpStatus::Optimal);
        let basis = basis.expect("basis");
        // The context still holds the engine for `basis`: the child solve
        // must take the in-place path, which skips the install-path
        // refactorisation and reprice — compare against a fresh context's
        // warm solve.
        let child = vec![(0.0, 1.0), (0.0, 10.0)];
        let (hot, _) = ctx.solve(&m, &child, &cfg(), Some(&basis)).expect("hot");
        let (refac, _) = solve(&m, &child, &cfg(), Some(&basis)).expect("refactor");
        assert_eq!(hot.status, LpStatus::Optimal);
        assert!((hot.objective - refac.objective).abs() < 1e-6);
        assert!(
            hot.work_ticks < refac.work_ticks,
            "{} vs {}",
            hot.work_ticks,
            refac.work_ticks
        );
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("need2", m.expr([(x, 1.0), (y, 1.0)]).geq(2.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let root = vec![(0.0, 1.0), (0.0, 1.0)];
        let out = solve_relaxation_warm(&m, &root, &cfg(), None);
        let basis = out.basis.expect("root optimal");
        // Fixing x = 0 makes the cover impossible.
        let child = vec![(0.0, 0.0), (0.0, 1.0)];
        let warm = solve_relaxation_warm(&m, &child, &cfg(), Some(&basis));
        assert_eq!(warm.result.status, LpStatus::Infeasible);
    }

    #[test]
    fn equality_rows_solved_without_phase_one() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0)]).eq(3.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let (res, _) = solve(&m, &[(0.0, 2.0), (0.0, 2.0)], &cfg(), None).expect("revised");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bails_on_unbounded_direction() {
        // y has negative cost and no upper bound: no dual-feasible start.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", m.expr([(x, 1.0), (y, -1.0)]).leq(1.0));
        m.set_objective(m.expr([(y, -1.0)]));
        let bounds = vec![(0.0, f64::INFINITY); 2];
        assert!(solve(&m, &bounds, &cfg(), None).is_none());
    }

    #[test]
    fn dantzig_pricing_without_flips_still_optimal() {
        let m = two_var_model();
        let bounds = vec![(0.0, 10.0), (0.0, 10.0)];
        let config = LpConfig {
            pricing: PricingRule::Dantzig,
            bound_flips: false,
            ..LpConfig::default()
        };
        let (res, _) = solve(&m, &bounds, &config, None).expect("revised path");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.objective + 14.0 / 5.0).abs() < 1e-6);
    }

    /// A cover-style LP whose dual solve needs a handful of pivots —
    /// enough for `refactor_interval: 2` to force refactorisations in the
    /// middle of the pivot sequence.
    fn chain_model(n: usize) -> (Model, Vec<(f64, f64)>) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        for e in 0..n {
            m.add_constraint(
                format!("e{e}"),
                m.expr([(vars[e], 1.0), (vars[(e + 1) % n], 1.0)]).geq(1.0),
            );
        }
        m.set_objective(
            m.expr(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
            ),
        );
        let bounds = vec![(0.0, 1.0); n];
        (m, bounds)
    }

    /// Devex-lifecycle regression: a mid-solve refactorisation (forced by
    /// a tiny refactor interval) must leave the pivot sequence fully
    /// deterministic — two identical solves agree on iteration count and
    /// bit-identical objectives/values — and must agree with the
    /// loose-interval solve on the optimum. Guards the audited policy
    /// that Devex weights survive refactorisation (basis unchanged) while
    /// the Bland guard resets the reference framework on entry/exit.
    #[test]
    fn mid_solve_refactorisation_keeps_pivot_sequence_deterministic() {
        let (m, bounds) = chain_model(9);
        let tight = LpConfig {
            refactor_interval: 2,
            ..LpConfig::default()
        };
        let (r1, _) = solve(&m, &bounds, &tight, None).expect("revised path");
        let (r2, _) = solve(&m, &bounds, &tight, None).expect("revised path");
        assert_eq!(r1.status, LpStatus::Optimal);
        assert!(r1.iterations >= 3, "want a mid-solve refactorisation");
        assert_eq!(r1.iterations, r2.iterations, "pivot sequence diverged");
        assert_eq!(r1.objective.to_bits(), r2.objective.to_bits());
        for (a, b) in r1.values.iter().zip(&r2.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The refactorisation cadence must not change the answer either.
        let (loose, _) = solve(&m, &bounds, &LpConfig::default(), None).expect("revised path");
        assert!((r1.objective - loose.objective).abs() < 1e-9);
    }

    #[test]
    fn update_rules_agree_on_optimum() {
        let (m, bounds) = chain_model(12);
        let mut objectives = Vec::new();
        for update in [UpdateRule::ForrestTomlin, UpdateRule::ProductForm] {
            let config = LpConfig {
                update,
                // Keep the update files alive across many pivots so the
                // rules actually diverge in representation.
                refactor_interval: 64,
                ..LpConfig::default()
            };
            let (res, _) = solve(&m, &bounds, &config, None).expect("revised path");
            assert_eq!(res.status, LpStatus::Optimal, "{update:?}");
            objectives.push(res.objective);
        }
        assert!(
            (objectives[0] - objectives[1]).abs() < 1e-9,
            "{objectives:?}"
        );
    }

    #[test]
    fn tight_refactor_interval_still_optimal() {
        // Force a refactorisation after every pivot: results must match.
        let m = two_var_model();
        let bounds = vec![(0.0, 10.0), (0.0, 10.0)];
        let config = LpConfig {
            refactor_interval: 1,
            ..LpConfig::default()
        };
        let (res, _) = solve(&m, &bounds, &config, None).expect("revised path");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.objective + 14.0 / 5.0).abs() < 1e-6);
    }

    /// Ring cover: every element covered by two adjacent sets — small
    /// integer data, heavy degeneracy, lots of dual pivots under bound
    /// fixing (the bench harness family).
    fn ring_cover_model(n: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        for e in 0..n {
            m.add_constraint(
                format!("e{e}"),
                m.expr([(vars[e], 1.0), (vars[(e + 1) % n], 1.0)]).geq(1.0),
            );
        }
        m.set_objective(m.expr(vars.iter().map(|&v| (v, 1.0))));
        m
    }

    /// The Forrest–Goldfarb recurrence maintains `γᵢ = ‖eᵢB⁻¹‖²`
    /// incrementally; after random pivot sequences (warm re-solves under
    /// random bound fixes) the maintained weights must still match a
    /// from-scratch recompute — under both factorisation update rules,
    /// since the recurrence consumes ρ and τ straight from the update
    /// files. `init_dse_exact` *is* the from-scratch recompute (one unit
    /// BTRAN per row), so the comparison pins the recurrence against it.
    #[test]
    fn steepest_edge_weights_match_exact_recompute_under_both_update_rules() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for update in [UpdateRule::ForrestTomlin, UpdateRule::ProductForm] {
            let mut checked = 0u64;
            for seed in 0..8u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let n = 10 + 2 * (seed as usize);
                let model = ring_cover_model(n);
                let config = LpConfig {
                    pricing: PricingRule::SteepestEdge,
                    update,
                    ..LpConfig::default()
                };
                let mut bounds: Vec<(f64, f64)> = vec![(0.0, 1.0); n];
                let mut ctx = LpContext::default();
                let (root, mut basis) = ctx.solve(&model, &bounds, &config, None).expect("root");
                assert_eq!(root.status, LpStatus::Optimal);
                for _ in 0..2 * n {
                    let j = rng.gen_range(0..n);
                    let fix = f64::from(rng.gen_range(0..=1i32));
                    let old = bounds[j];
                    bounds[j] = (fix, fix);
                    let out = ctx.solve(&model, &bounds, &config, basis.as_ref());
                    match out {
                        Ok((res, b)) if res.status == LpStatus::Optimal => {
                            basis = b;
                            let eng = ctx.engine.as_mut().expect("engine kept on optimal");
                            if eng.pricing == PricingRule::SteepestEdge && eng.dse_ok {
                                let maintained = eng.dse.clone();
                                eng.init_dse_exact();
                                for (i, (&got, &want)) in
                                    maintained.iter().zip(&eng.dse).enumerate()
                                {
                                    assert!(
                                        (got - want).abs()
                                            <= 1e-6 * (1.0 + got.abs().max(want.abs())),
                                        "{update:?} seed {seed} row {i}: \
                                         maintained {got} vs exact {want}"
                                    );
                                    checked += 1;
                                }
                            }
                        }
                        _ => bounds[j] = old, // infeasible fix: undo and go on
                    }
                }
            }
            assert!(
                checked > 500,
                "{update:?}: too few weights checked: {checked}"
            );
        }
    }
}
