//! Sparse revised simplex with bounded-variable dual reoptimisation.
//!
//! This is the fast path behind [`crate::simplex::solve_relaxation_warm`].
//! Instead of the dense `B⁻¹A` tableau of the fallback engine, it keeps:
//!
//! * the constraint matrix `A` once, in CSC form (shared via
//!   [`Model::csc`]),
//! * an explicit dense basis inverse `B⁻¹` (`m × m`), updated in `O(m²)`
//!   per pivot,
//! * reduced costs priced through sparse columns (`O(nnz)` per pivot).
//!
//! The engine always starts **dual feasible** and drives out primal
//! infeasibility with the dual simplex:
//!
//! * **cold start** — the all-slack basis with every structural column on
//!   its cost-preferred bound is dual feasible by construction, so phase 1
//!   is never needed;
//! * **warm start** — a parent node's optimal [`Basis`] stays dual
//!   feasible after any bound change (branch-and-bound never touches the
//!   objective or the matrix), so a child re-optimises in a handful of
//!   dual pivots.
//!
//! Warm starts come in two flavours. A [`LpContext`] keeps the engine of
//! the previous solve alive; when the caller's warm basis is exactly the
//! context's current basis (the common case on branch-and-bound plunges
//! and diving loops, where consecutive solves differ by one bound), the
//! context applies the bound deltas directly to `β` in `O(m·nnz)` — no
//! factorisation at all. Otherwise the basis is reinstalled from the
//! snapshot with one `O(m³)` refactorisation, still far cheaper than a
//! cold two-phase tableau solve.
//!
//! Any situation the engine cannot handle — a dual-infeasible start (e.g.
//! an improving direction with an infinite bound), a singular warm basis,
//! numerical trouble, or a final solution that fails verification — makes
//! it bail out, and the caller falls back to the robust dense two-phase
//! primal simplex.

use crate::basis::{Basis, VarStatus};
use crate::expr::ConstraintSense;
use crate::model::Model;
use crate::simplex::{LpConfig, LpResult, LpStatus, TOL};
use crate::sparse::CscMatrix;
use std::sync::Arc;

/// Primal feasibility tolerance for basic values.
const PFEAS: f64 = 1e-7;
/// Dual feasibility tolerance when accepting a warm basis.
const DFEAS: f64 = 1e-6;
/// Post-solve verification tolerance against the original constraints.
const VERIFY_TOL: f64 = 1e-5;
/// Consecutive non-improving iterations before anti-cycling kicks in.
const STALL_LIMIT: u32 = 64;
/// Hot in-place reuses before a hygiene refactorisation is forced.
const REFACTOR_EVERY: u32 = 64;

/// Outcome of one dual-simplex run.
enum RunStatus {
    Optimal,
    Infeasible,
    IterLimit,
    /// Numerical trouble (tiny pivot / inconsistent row): caller must fall
    /// back to a colder, more robust path.
    Unstable,
}

/// Bounded-variable revised simplex working set.
///
/// Owns everything it needs (the CSC matrix is shared via `Arc`), so a
/// [`LpContext`] can keep it alive between solves.
struct Engine {
    a: Arc<CscMatrix>,
    m: usize,
    /// Structural column count.
    n: usize,
    /// Structural + logical column count.
    n_total: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase cost per column (structural objective; logicals are free).
    cost: Vec<f64>,
    /// Non-zero entries in the structural cost (for objective-change
    /// detection on the hot path).
    cost_nnz: usize,
    rhs: Vec<f64>,
    status: Vec<VarStatus>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Inverse map: column -> row, or `usize::MAX` when nonbasic.
    in_row: Vec<usize>,
    /// Dense row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Values of basic variables per row.
    beta: Vec<f64>,
    /// Reduced costs per column (zero on basic columns).
    d: Vec<f64>,
    /// Scratch: tableau row `α = e_r B⁻¹ A` of the leaving row.
    alpha: Vec<f64>,
    /// Scratch: pivot column `w = B⁻¹ A_q`.
    w: Vec<f64>,
    /// Hot reuses since the last factorisation (numerical hygiene).
    age: u32,
    iterations: u64,
    work: u64,
}

/// Normalises one structural bound pair: free variables are pinned at a
/// pseudo lower bound of zero (croxmap models never produce them; this
/// mirrors the dense engine).
fn norm_bounds(l: f64, u: f64) -> (f64, f64) {
    if !l.is_finite() && !u.is_finite() {
        (0.0, u)
    } else {
        (l, u)
    }
}

impl Engine {
    fn new(model: &Model, bounds: &[(f64, f64)]) -> Self {
        let a = model.csc();
        let m = model.num_constraints();
        let n = model.num_vars();
        let n_total = n + m;
        let mut lower = vec![0.0f64; n_total];
        let mut upper = vec![f64::INFINITY; n_total];
        for j in 0..n {
            (lower[j], upper[j]) = norm_bounds(bounds[j].0, bounds[j].1);
        }
        let mut rhs = vec![0.0f64; m];
        for (i, con) in model.constraints().iter().enumerate() {
            rhs[i] = con.rhs;
            let s = n + i;
            match con.sense {
                ConstraintSense::Le => {
                    lower[s] = 0.0;
                    upper[s] = f64::INFINITY;
                }
                ConstraintSense::Ge => {
                    lower[s] = f64::NEG_INFINITY;
                    upper[s] = 0.0;
                }
                ConstraintSense::Eq => {
                    lower[s] = 0.0;
                    upper[s] = 0.0;
                }
            }
        }
        let mut cost = vec![0.0f64; n_total];
        for &(v, c) in model.objective() {
            cost[v.index()] = c;
        }
        let cost_nnz = cost.iter().filter(|&&c| c != 0.0).count();
        Engine {
            a,
            m,
            n,
            n_total,
            lower,
            upper,
            cost,
            cost_nnz,
            rhs,
            status: vec![VarStatus::AtLower; n_total],
            basis: vec![0; m],
            in_row: vec![usize::MAX; n_total],
            binv: vec![0.0; m * m],
            beta: vec![0.0; m],
            d: vec![0.0; n_total],
            alpha: vec![0.0; n_total],
            w: vec![0.0; m],
            age: 0,
            iterations: 0,
            work: 0,
        }
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Basic => unreachable!("basic column has no bound value"),
        }
    }

    /// Returns `true` if this engine's live state is exactly the snapshot
    /// `warm` for the same constraint matrix *and* objective. The cost
    /// check matters: the hot path reuses the engine's reduced costs, so a
    /// caller that mutated the objective between solves must not land here
    /// (it falls through to the install path, which reprices).
    fn matches(&self, model: &Model, warm: &Basis) -> bool {
        Arc::ptr_eq(&self.a, &model.csc())
            && warm.cols == self.basis
            && warm.status == self.status
            && self.cost_matches(model)
    }

    /// Checks that the engine's structural cost vector still equals the
    /// model's objective (terms are normalised: merged, zeros dropped).
    fn cost_matches(&self, model: &Model) -> bool {
        model
            .objective()
            .iter()
            .all(|&(v, c)| self.cost[v.index()] == c)
            && self.cost_nnz == model.objective().len()
    }

    /// Hot warm start: the basis is already installed and factorised; only
    /// variable bounds changed. Applies `β -= Δx · B⁻¹ A_j` per changed
    /// nonbasic column, leaving reduced costs untouched (dual feasibility
    /// is unaffected by bound *values*). Returns `false` when a bound
    /// change forced a nonbasic column onto its other side and the stored
    /// reduced cost is dual infeasible there — the caller must then
    /// reinstall (and reprice) instead.
    fn retarget_bounds(&mut self, bounds: &[(f64, f64)]) -> bool {
        let mut flips_ok = true;
        for j in 0..self.n {
            let (nl, nu) = norm_bounds(bounds[j].0, bounds[j].1);
            if nl == self.lower[j] && nu == self.upper[j] {
                continue;
            }
            let was_fixed = self.upper[j] - self.lower[j] <= TOL;
            let old = match self.status[j] {
                VarStatus::Basic => {
                    // Basic columns carry no bound value; the dual simplex
                    // simply sees any new violation through `violation`.
                    self.lower[j] = nl;
                    self.upper[j] = nu;
                    continue;
                }
                VarStatus::AtLower => self.lower[j],
                VarStatus::AtUpper => self.upper[j],
            };
            self.lower[j] = nl;
            self.upper[j] = nu;
            // Fixed columns are exempt from every dual-feasibility check
            // (they can never enter), so a column widening back out of
            // fixedness may carry a stale, infeasible reduced cost — only
            // a reprice can vouch for it.
            if was_fixed && nu - nl > TOL {
                flips_ok &= match self.status[j] {
                    VarStatus::AtLower => self.d[j] >= -DFEAS,
                    VarStatus::AtUpper => self.d[j] <= DFEAS,
                    VarStatus::Basic => unreachable!(),
                };
            }
            // Keep the nonbasic column on a finite side; a side switch is
            // only dual feasible if the reduced cost sign allows it.
            if self.status[j] == VarStatus::AtLower && !nl.is_finite() {
                self.status[j] = VarStatus::AtUpper;
                flips_ok &= self.d[j] <= DFEAS;
            } else if self.status[j] == VarStatus::AtUpper && !nu.is_finite() {
                self.status[j] = VarStatus::AtLower;
                flips_ok &= self.d[j] >= -DFEAS;
            }
            let new = self.nonbasic_value(j);
            let dx = new - old;
            if dx != 0.0 {
                // β -= Δx · B⁻¹ A_j, priced through the sparse column.
                let (rows, vals) = self.a.col(j);
                for (i, bi) in self.beta.iter_mut().enumerate() {
                    let row = &self.binv[i * self.m..(i + 1) * self.m];
                    let wij: f64 = rows.iter().zip(vals).map(|(&k, &v)| row[k] * v).sum();
                    *bi -= dx * wij;
                }
                self.work += (self.m * self.a.col_nnz(j).max(1)) as u64;
            }
        }
        self.age += 1;
        flips_ok
    }

    /// All-slack dual-feasible start. Returns `false` when no dual-feasible
    /// nonbasic point exists (improving direction with an infinite bound).
    fn cold_start(&mut self) -> bool {
        for j in 0..self.n {
            let c = self.cost[j];
            self.status[j] = if c > TOL {
                if !self.lower[j].is_finite() {
                    return false;
                }
                VarStatus::AtLower
            } else if c < -TOL {
                if !self.upper[j].is_finite() {
                    return false;
                }
                VarStatus::AtUpper
            } else if self.lower[j].is_finite() {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
        }
        for i in 0..self.m {
            let s = self.n + i;
            self.basis[i] = s;
            self.status[s] = VarStatus::Basic;
            self.in_row[s] = i;
            self.binv[i * self.m + i] = 1.0;
        }
        // β = b − N x_N; with B = I (slacks) no solve is needed.
        self.beta.copy_from_slice(&self.rhs);
        let mut acc = std::mem::take(&mut self.beta);
        for j in 0..self.n {
            let x = self.nonbasic_value(j);
            self.a.axpy_col(&mut acc, -x, j);
        }
        self.beta = acc;
        // Slack costs are zero, so y = 0 and d = c.
        self.d.copy_from_slice(&self.cost);
        self.age = 0;
        self.work += (self.a.nnz() + self.n_total) as u64;
        true
    }

    /// Installs a basis snapshot: refactorises `B⁻¹`, reprices, and checks
    /// dual feasibility. Returns `false` if the snapshot is unusable.
    fn install(&mut self, warm: &Basis) -> bool {
        if !warm.is_consistent(self.m, self.n_total) {
            return false;
        }
        self.status.copy_from_slice(&warm.status);
        self.basis.copy_from_slice(&warm.cols);
        for j in 0..self.n_total {
            self.in_row[j] = usize::MAX;
        }
        for (i, &c) in self.basis.iter().enumerate() {
            self.in_row[c] = i;
        }
        // Nonbasic statuses must sit on finite bounds.
        for j in 0..self.n_total {
            match self.status[j] {
                VarStatus::Basic => {}
                VarStatus::AtLower if !self.lower[j].is_finite() => {
                    if self.upper[j].is_finite() {
                        self.status[j] = VarStatus::AtUpper;
                    } else {
                        self.lower[j] = 0.0;
                    }
                }
                VarStatus::AtUpper if !self.upper[j].is_finite() => {
                    if self.lower[j].is_finite() {
                        self.status[j] = VarStatus::AtLower;
                    } else {
                        self.lower[j] = 0.0;
                        self.status[j] = VarStatus::AtLower;
                    }
                }
                _ => {}
            }
        }
        if !self.refactorize() {
            return false;
        }
        if !self.reprice() {
            return false;
        }
        self.refresh_beta();
        true
    }

    /// Recomputes reduced costs `d = c − c_B B⁻¹ A` and gates on dual
    /// feasibility. Returns `false` when the basis is dual infeasible.
    fn reprice(&mut self) -> bool {
        let mut y = vec![0.0f64; self.m];
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = self.cost[b];
            if cb != 0.0 {
                let row = &self.binv[r * self.m..(r + 1) * self.m];
                for (yi, &v) in y.iter_mut().zip(row) {
                    *yi += cb * v;
                }
            }
        }
        for j in 0..self.n_total {
            if self.status[j] == VarStatus::Basic {
                self.d[j] = 0.0;
                continue;
            }
            self.d[j] = if j < self.n {
                self.cost[j] - self.a.dot_col(&y, j)
            } else {
                -y[j - self.n]
            };
            if self.upper[j] - self.lower[j] <= TOL {
                continue; // fixed columns cannot move; their sign is moot
            }
            let ok = match self.status[j] {
                VarStatus::AtLower => self.d[j] >= -DFEAS,
                VarStatus::AtUpper => self.d[j] <= DFEAS,
                VarStatus::Basic => unreachable!(),
            };
            if !ok {
                return false;
            }
        }
        self.work += (self.m * self.m + self.a.nnz()) as u64;
        true
    }

    /// Recomputes `β = B⁻¹ (b − N x_N)` from scratch.
    fn refresh_beta(&mut self) {
        let mut acc = self.rhs.clone();
        for j in 0..self.n_total {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let x = self.nonbasic_value(j);
            if x == 0.0 {
                continue;
            }
            if j < self.n {
                self.a.axpy_col(&mut acc, -x, j);
            } else {
                acc[j - self.n] -= x;
            }
        }
        for i in 0..self.m {
            let row = &self.binv[i * self.m..(i + 1) * self.m];
            self.beta[i] = row.iter().zip(&acc).map(|(&v, &r)| v * r).sum();
        }
        self.work += (self.m * self.m + self.a.nnz()) as u64;
    }

    /// Gauss–Jordan inversion of the basis matrix with partial pivoting.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        let mut b = vec![0.0f64; m * m];
        for (r, &c) in self.basis.iter().enumerate() {
            if c < self.n {
                let (rows, vals) = self.a.col(c);
                for (&i, &v) in rows.iter().zip(vals) {
                    b[i * m + r] = v;
                }
            } else {
                b[(c - self.n) * m + r] = 1.0;
            }
        }
        for v in &mut self.binv {
            *v = 0.0;
        }
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        for k in 0..m {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut p = k;
            let mut best = b[k * m + k].abs();
            for i in k + 1..m {
                let v = b[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-10 {
                return false; // singular (or hopelessly ill-conditioned)
            }
            if p != k {
                for j in 0..m {
                    b.swap(k * m + j, p * m + j);
                    self.binv.swap(k * m + j, p * m + j);
                }
            }
            let inv = 1.0 / b[k * m + k];
            for j in 0..m {
                b[k * m + j] *= inv;
                self.binv[k * m + j] *= inv;
            }
            for i in 0..m {
                if i == k {
                    continue;
                }
                let f = b[i * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        let bv = b[k * m + j];
                        let nv = self.binv[k * m + j];
                        b[i * m + j] -= f * bv;
                        self.binv[i * m + j] -= f * nv;
                    }
                }
            }
        }
        self.age = 0;
        self.work += (m * m * m) as u64;
        true
    }

    /// Violation of row `i`'s basic variable: `(amount, below_lower)`.
    fn violation(&self, i: usize) -> (f64, bool) {
        let b = self.basis[i];
        if self.beta[i] < self.lower[b] - PFEAS {
            (self.lower[b] - self.beta[i], true)
        } else if self.beta[i] > self.upper[b] + PFEAS {
            (self.beta[i] - self.upper[b], false)
        } else {
            (0.0, false)
        }
    }

    /// Dual simplex main loop. Dual feasibility is an invariant; the loop
    /// ends when primal feasibility is reached (optimal), a violated row
    /// admits no entering column (infeasible), or a budget/stability limit
    /// trips.
    #[allow(clippy::too_many_lines)]
    fn dual_simplex(&mut self, max_iterations: u64) -> RunStatus {
        let mut stall = 0u32;
        let mut last_infeasibility = f64::INFINITY;
        loop {
            // --- Leaving row: largest violation; under stall, the violated
            // row with the smallest basic column index (Bland-like). ---
            let bland = stall > STALL_LIMIT;
            let mut leave: Option<(usize, f64)> = None; // (row, score)
            let mut total_infeasibility = 0.0;
            for i in 0..self.m {
                let (v, _) = self.violation(i);
                if v <= 0.0 {
                    continue;
                }
                total_infeasibility += v;
                let better = if bland {
                    leave.is_none_or(|(r, _)| self.basis[i] < self.basis[r])
                } else {
                    leave.is_none_or(|(_, s)| v > s)
                };
                if better {
                    leave = Some((i, v));
                }
            }
            self.work += self.m as u64;
            let Some((r, _)) = leave else {
                return RunStatus::Optimal;
            };
            if self.iterations >= max_iterations {
                return RunStatus::IterLimit;
            }
            if total_infeasibility < last_infeasibility - 1e-9 {
                stall = 0;
                last_infeasibility = total_infeasibility;
            } else {
                stall += 1;
            }

            let bcol = self.basis[r];
            let (_, below) = self.violation(r);
            let delta = if below {
                self.beta[r] - self.lower[bcol] // < 0
            } else {
                self.beta[r] - self.upper[bcol] // > 0
            };

            // --- Entering column: min dual ratio over eligible nonbasics.
            // α is the leaving row of the tableau, priced sparsely. ---
            let rho = &self.binv[r * self.m..(r + 1) * self.m];
            let mut enter: Option<(usize, f64)> = None; // (col, ratio)
            for j in 0..self.n_total {
                if self.status[j] == VarStatus::Basic {
                    self.alpha[j] = 0.0;
                    continue;
                }
                let aj = if j < self.n {
                    self.a.dot_col(rho, j)
                } else {
                    rho[j - self.n]
                };
                self.alpha[j] = aj;
                if self.upper[j] - self.lower[j] <= TOL {
                    continue; // fixed: can never enter
                }
                // Sign-normalised entry: positive means "x_j must rise".
                let ap = if delta > 0.0 { aj } else { -aj };
                let eligible = match self.status[j] {
                    VarStatus::AtLower => ap > TOL,
                    VarStatus::AtUpper => ap < -TOL,
                    VarStatus::Basic => unreachable!(),
                };
                if !eligible {
                    continue;
                }
                let ratio = self.d[j] / ap;
                if enter.is_none_or(|(_, best)| ratio < best - 1e-12) {
                    enter = Some((j, ratio));
                }
            }
            self.work += (self.a.nnz() + self.n_total) as u64;
            let Some((q, _)) = enter else {
                // The violated row proves the bound system inconsistent.
                return RunStatus::Infeasible;
            };

            // --- Pivot. w = B⁻¹ A_q gives the primal update column. ---
            let mut w = std::mem::take(&mut self.w);
            if q < self.n {
                let (rows, vals) = self.a.col(q);
                for (i, wi) in w.iter_mut().enumerate() {
                    let row = &self.binv[i * self.m..(i + 1) * self.m];
                    *wi = rows.iter().zip(vals).map(|(&k, &v)| row[k] * v).sum();
                }
            } else {
                let k = q - self.n;
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi = self.binv[i * self.m + k];
                }
            }
            let wr = w[r];
            if wr.abs() < 1e-9 {
                self.w = w;
                return RunStatus::Unstable;
            }

            // Dual price update keeps d consistent without repricing.
            let theta_d = self.d[q] / self.alpha[q];
            if theta_d != 0.0 {
                for j in 0..self.n_total {
                    if self.status[j] != VarStatus::Basic {
                        self.d[j] -= theta_d * self.alpha[j];
                    }
                }
            }
            self.d[q] = 0.0;
            self.d[bcol] = -theta_d;

            // Primal step: entering moves by t, basics move against w.
            let t = delta / wr;
            let x_q = self.nonbasic_value(q);
            for (bi, &wi) in self.beta.iter_mut().zip(w.iter()) {
                *bi -= t * wi;
            }
            self.beta[r] = x_q + t;

            // Rank-one basis inverse update.
            let inv = 1.0 / wr;
            for j in 0..self.m {
                self.binv[r * self.m + j] *= inv;
            }
            for i in 0..self.m {
                if i == r {
                    continue;
                }
                let f = w[i];
                if f != 0.0 {
                    for j in 0..self.m {
                        let v = self.binv[r * self.m + j];
                        self.binv[i * self.m + j] -= f * v;
                    }
                }
            }
            self.w = w;

            self.status[bcol] = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.in_row[bcol] = usize::MAX;
            self.status[q] = VarStatus::Basic;
            self.in_row[q] = r;
            self.basis[r] = q;
            self.iterations += 1;
            self.work += (self.m * self.m + 2 * self.m + self.n_total) as u64;
        }
    }

    /// Structural variable values at the current basis, clamped to bounds.
    fn extract_values(&self) -> Vec<f64> {
        (0..self.n)
            .map(|j| {
                let x = match self.status[j] {
                    VarStatus::AtLower => self.lower[j],
                    VarStatus::AtUpper => self.upper[j],
                    VarStatus::Basic => self.beta[self.in_row[j]],
                };
                x.clamp(self.lower[j], self.upper[j])
            })
            .collect()
    }

    /// Cheap exactness gate: the solution the engine reports must satisfy
    /// the original rows. Guards against silent numerical drift in `B⁻¹`.
    fn verify(&self, model: &Model, values: &[f64]) -> bool {
        model
            .constraints()
            .iter()
            .all(|c| c.is_satisfied(values, VERIFY_TOL))
    }

    fn snapshot(&self) -> Basis {
        Basis {
            cols: self.basis.clone(),
            status: self.status.clone(),
        }
    }
}

/// A reusable revised-simplex context.
///
/// Keeps the engine of the most recent *optimal* solve alive so that the
/// next solve can warm-start without refactorising when its warm basis is
/// the context's live basis — the common case in diving loops and
/// branch-and-bound plunges, where consecutive LPs differ by one or a few
/// bound changes.
#[derive(Default)]
pub(crate) struct LpContext {
    engine: Option<Engine>,
}

impl LpContext {
    /// Attempts a revised-simplex solve; `Err(spent_ticks)` means "use the
    /// dense fallback", with the deterministic work already burnt by the
    /// failed attempts so the caller can charge it anyway. On optimal
    /// solves the second tuple element carries the basis snapshot for
    /// warm-starting related solves.
    pub(crate) fn solve(
        &mut self,
        model: &Model,
        bounds: &[(f64, f64)],
        config: &LpConfig,
        warm: Option<&Basis>,
    ) -> Result<(LpResult, Option<Basis>), u64> {
        let mut carried_work = 0u64;

        // Hot path: the previous engine is exactly the requested basis.
        enum Hot {
            Miss,
            Done(Option<(LpResult, Option<Basis>)>, u64),
        }
        let hot = if let (Some(basis), Some(engine)) = (warm, self.engine.as_mut()) {
            if engine.age < REFACTOR_EVERY && engine.matches(model, basis) {
                engine.iterations = 0;
                engine.work = 0;
                let outcome = if engine.retarget_bounds(bounds) {
                    run(engine, model, config)
                } else {
                    // A bound change flipped a nonbasic column onto a dual
                    // infeasible side: must reinstall and reprice.
                    None
                };
                let spent = engine.work;
                Hot::Done(outcome, spent)
            } else {
                Hot::Miss
            }
        } else {
            Hot::Miss
        };
        match hot {
            Hot::Done(Some(out), spent) => {
                if out.0.status == LpStatus::Infeasible {
                    // A drifted B⁻¹ (rank-one updates + retarget deltas)
                    // can fabricate infeasibility, and branch-and-bound
                    // prunes on it permanently. Confirm with a freshly
                    // factorised install of the same snapshot below.
                    carried_work = spent;
                    self.engine = None;
                } else {
                    if out.0.status != LpStatus::Optimal {
                        self.engine = None;
                    }
                    return Ok(out);
                }
            }
            Hot::Done(None, spent) => {
                // Numerical drift (or an infeasible flip): discard and
                // restart below, carrying the spent work so deterministic
                // budgets stay honest.
                carried_work = spent;
                self.engine = None;
            }
            Hot::Miss => {}
        }

        // Warm path: reinstall the snapshot with a refactorisation.
        if let Some(basis) = warm {
            let mut engine = Engine::new(model, bounds);
            engine.work += carried_work;
            if engine.install(basis) {
                if let Some(out) = run(&mut engine, model, config) {
                    self.keep_if_optimal(engine, out.0.status);
                    return Ok(out);
                }
            }
            // Unusable or unstable warm basis: retry cold before giving
            // up, carrying the spent work so budgets stay honest.
            carried_work = engine.work;
        }

        // Cold path: all-slack dual-feasible start.
        let mut engine = Engine::new(model, bounds);
        engine.work += carried_work;
        if !engine.cold_start() {
            self.engine = None;
            return Err(engine.work);
        }
        match run(&mut engine, model, config) {
            Some(ok) => {
                self.keep_if_optimal(engine, ok.0.status);
                Ok(ok)
            }
            None => {
                self.engine = None;
                Err(engine.work)
            }
        }
    }

    fn keep_if_optimal(&mut self, engine: Engine, status: LpStatus) {
        self.engine = if status == LpStatus::Optimal {
            Some(engine)
        } else {
            None
        };
    }
}

/// One-shot convenience over [`LpContext::solve`] (no state reuse).
#[cfg(test)]
pub(crate) fn solve(
    model: &Model,
    bounds: &[(f64, f64)],
    config: &LpConfig,
    warm: Option<&Basis>,
) -> Option<(LpResult, Option<Basis>)> {
    LpContext::default().solve(model, bounds, config, warm).ok()
}

/// Runs the dual simplex and packages the outcome; `None` requests the
/// caller to fall back (numerical trouble or failed verification).
fn run(engine: &mut Engine, model: &Model, config: &LpConfig) -> Option<(LpResult, Option<Basis>)> {
    match engine.dual_simplex(config.max_iterations) {
        RunStatus::Optimal => {
            let values = engine.extract_values();
            if !engine.verify(model, &values) {
                return None;
            }
            let objective = model.objective_value(&values);
            let result = LpResult {
                status: LpStatus::Optimal,
                objective,
                values,
                iterations: engine.iterations,
                work_ticks: engine.work,
            };
            let basis = engine.snapshot();
            Some((result, Some(basis)))
        }
        RunStatus::Infeasible => Some((
            LpResult {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: engine.iterations,
                work_ticks: engine.work,
            },
            None,
        )),
        RunStatus::IterLimit => {
            let values = engine.extract_values();
            let objective = model.objective_value(&values);
            Some((
                LpResult {
                    status: LpStatus::IterLimit,
                    objective,
                    values,
                    iterations: engine.iterations,
                    work_ticks: engine.work,
                },
                None,
            ))
        }
        RunStatus::Unstable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_relaxation_warm;
    use crate::Model;

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    fn two_var_model() -> Model {
        // min -(x + y) s.t. x + 2y <= 4, 3x + y <= 6; optimum (1.6, 1.2).
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("c1", m.expr([(x, 1.0), (y, 2.0)]).leq(4.0));
        m.add_constraint("c2", m.expr([(x, 3.0), (y, 1.0)]).leq(6.0));
        m.set_objective(m.expr([(x, -1.0), (y, -1.0)]));
        m
    }

    #[test]
    fn cold_revised_matches_known_optimum() {
        let m = two_var_model();
        let bounds = vec![(0.0, 10.0), (0.0, 10.0)];
        let (res, basis) = solve(&m, &bounds, &cfg(), None).expect("revised path");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!(
            (res.objective + 14.0 / 5.0).abs() < 1e-6,
            "{}",
            res.objective
        );
        assert!(basis.expect("basis on optimal").is_consistent(2, 4));
    }

    #[test]
    fn warm_start_reoptimises_after_bound_change() {
        let m = two_var_model();
        let root = vec![(0.0, 10.0), (0.0, 10.0)];
        let (_, basis) = solve(&m, &root, &cfg(), None).expect("root solve");
        let basis = basis.expect("optimal basis");
        // Tighten x to [0, 1]: warm solve must agree with a cold solve.
        let child = vec![(0.0, 1.0), (0.0, 10.0)];
        let (warm_res, _) = solve(&m, &child, &cfg(), Some(&basis)).expect("warm path");
        let (cold_res, _) = solve(&m, &child, &cfg(), None).expect("cold path");
        assert_eq!(warm_res.status, LpStatus::Optimal);
        assert!((warm_res.objective - cold_res.objective).abs() < 1e-6);
    }

    #[test]
    fn hot_context_skips_refactorisation() {
        let m = two_var_model();
        let root = vec![(0.0, 10.0), (0.0, 10.0)];
        let mut ctx = LpContext::default();
        let (root_res, basis) = ctx.solve(&m, &root, &cfg(), None).expect("root");
        assert_eq!(root_res.status, LpStatus::Optimal);
        let basis = basis.expect("basis");
        // The context still holds the engine for `basis`: the child solve
        // must take the in-place path, whose ticks are far below a
        // refactorisation (m³ = 8 here, but the telltale is no m³ term —
        // compare against a fresh context's warm solve).
        let child = vec![(0.0, 1.0), (0.0, 10.0)];
        let (hot, _) = ctx.solve(&m, &child, &cfg(), Some(&basis)).expect("hot");
        let (refac, _) = solve(&m, &child, &cfg(), Some(&basis)).expect("refactor");
        assert_eq!(hot.status, LpStatus::Optimal);
        assert!((hot.objective - refac.objective).abs() < 1e-6);
        assert!(
            hot.work_ticks < refac.work_ticks,
            "{} vs {}",
            hot.work_ticks,
            refac.work_ticks
        );
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("need2", m.expr([(x, 1.0), (y, 1.0)]).geq(2.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let root = vec![(0.0, 1.0), (0.0, 1.0)];
        let out = solve_relaxation_warm(&m, &root, &cfg(), None);
        let basis = out.basis.expect("root optimal");
        // Fixing x = 0 makes the cover impossible.
        let child = vec![(0.0, 0.0), (0.0, 1.0)];
        let warm = solve_relaxation_warm(&m, &child, &cfg(), Some(&basis));
        assert_eq!(warm.result.status, LpStatus::Infeasible);
    }

    #[test]
    fn equality_rows_solved_without_phase_one() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("eq", m.expr([(x, 1.0), (y, 1.0)]).eq(3.0));
        m.set_objective(m.expr([(x, 1.0), (y, 1.0)]));
        let (res, _) = solve(&m, &[(0.0, 2.0), (0.0, 2.0)], &cfg(), None).expect("revised");
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bails_on_unbounded_direction() {
        // y has negative cost and no upper bound: no dual-feasible start.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", m.expr([(x, 1.0), (y, -1.0)]).leq(1.0));
        m.set_objective(m.expr([(y, -1.0)]));
        let bounds = vec![(0.0, f64::INFINITY); 2];
        assert!(solve(&m, &bounds, &cfg(), None).is_none());
    }
}
