//! The spiking network graph: neurons, synapses and adjacency queries.

use crate::{BuildNetworkError, EdgeId, NeuronId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Functional role of a neuron within the network.
///
/// Roles do not change mapping semantics (every neuron occupies a crossbar
/// output line), but the simulator injects stimulus only into
/// [`NodeRole::Input`] neurons and reads classifications from
/// [`NodeRole::Output`] neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Receives external spike trains.
    Input,
    /// Internal neuron.
    Hidden,
    /// Observed by the application (e.g. classification readout).
    Output,
}

impl NodeRole {
    /// Returns `true` for [`NodeRole::Input`].
    #[must_use]
    pub fn is_input(self) -> bool {
        matches!(self, NodeRole::Input)
    }

    /// Returns `true` for [`NodeRole::Output`].
    #[must_use]
    pub fn is_output(self) -> bool {
        matches!(self, NodeRole::Output)
    }
}

/// A single integrate-and-fire neuron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Role of the neuron in the application.
    pub role: NodeRole,
    /// Firing threshold: the neuron spikes when its membrane potential
    /// reaches or exceeds this value.
    pub threshold: f64,
    /// Per-timestep multiplicative leak in `[0, 1]`; `0.0` keeps the full
    /// charge (no leak), `1.0` discards all charge each step.
    pub leak: f64,
}

/// A directed synapse between two neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Pre-synaptic (source) neuron: the axon owner.
    pub source: NeuronId,
    /// Post-synaptic (target) neuron.
    pub target: NeuronId,
    /// Synaptic weight added to the target's membrane potential on arrival.
    pub weight: f64,
    /// Whole-timestep axonal delay (at least 1 in the simulator).
    pub delay: u32,
}

/// An immutable spiking neural network graph.
///
/// Construct with [`NetworkBuilder`]. The graph stores forward and reverse
/// adjacency so that both fan-out (`m_ik` rows) and fan-in queries used by
/// the ILP formulations are O(degree).
///
/// ```
/// use croxmap_snn::{NetworkBuilder, NodeRole};
/// # fn main() -> Result<(), croxmap_snn::BuildNetworkError> {
/// let mut b = NetworkBuilder::new();
/// let x = b.add_neuron(NodeRole::Input, 1.0, 0.0);
/// let y = b.add_neuron(NodeRole::Output, 1.0, 0.0);
/// b.add_edge(x, y, 0.5, 1)?;
/// let net = b.build()?;
/// assert!(net.has_edge(x, y));
/// assert_eq!(net.fan_out(x).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `out_adj[i]` lists edge ids with source `i`, ordered by target.
    out_adj: Vec<Vec<EdgeId>>,
    /// `in_adj[i]` lists edge ids with target `i`, ordered by source.
    in_adj: Vec<Vec<EdgeId>>,
}

impl Network {
    /// Number of neurons.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of synapses.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the neuron with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this network.
    #[must_use]
    pub fn node(&self, id: NeuronId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the synapse with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this network.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all neuron ids in index order.
    pub fn neuron_ids(&self) -> impl ExactSizeIterator<Item = NeuronId> + '_ {
        (0..self.nodes.len()).map(NeuronId::new)
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterates over the edges leaving `source` (its axonal fan-out).
    pub fn fan_out(&self, source: NeuronId) -> impl ExactSizeIterator<Item = &Edge> + '_ {
        self.out_adj[source.index()].iter().map(|&e| self.edge(e))
    }

    /// Iterates over the edges entering `target` (its synaptic fan-in).
    pub fn fan_in(&self, target: NeuronId) -> impl ExactSizeIterator<Item = &Edge> + '_ {
        self.in_adj[target.index()].iter().map(|&e| self.edge(e))
    }

    /// Out-degree of `source`.
    #[must_use]
    pub fn out_degree(&self, source: NeuronId) -> usize {
        self.out_adj[source.index()].len()
    }

    /// In-degree of `target`.
    #[must_use]
    pub fn in_degree(&self, target: NeuronId) -> usize {
        self.in_adj[target.index()].len()
    }

    /// Returns `true` if a synapse `source -> target` exists.
    #[must_use]
    pub fn has_edge(&self, source: NeuronId, target: NeuronId) -> bool {
        self.out_adj[source.index()]
            .binary_search_by_key(&target, |&e| self.edge(e).target)
            .is_ok()
    }

    /// Iterates over the ids of neurons with at least one outgoing synapse —
    /// the "axon sources" `k` for which placement variables `s_kj` exist.
    pub fn axon_sources(&self) -> impl Iterator<Item = NeuronId> + '_ {
        self.neuron_ids().filter(|&k| self.out_degree(k) > 0)
    }

    /// Ids of neurons flagged as network inputs.
    pub fn input_ids(&self) -> impl Iterator<Item = NeuronId> + '_ {
        self.neuron_ids().filter(|&i| self.node(i).role.is_input())
    }

    /// Ids of neurons flagged as network outputs.
    pub fn output_ids(&self) -> impl Iterator<Item = NeuronId> + '_ {
        self.neuron_ids().filter(|&i| self.node(i).role.is_output())
    }

    /// Computes the sparsity statistics reported in Table I of the paper.
    #[must_use]
    pub fn stats(&self) -> crate::NetworkStats {
        crate::NetworkStats::of(self)
    }
}

/// Incremental builder for [`Network`].
///
/// The builder assigns dense [`NeuronId`]s in insertion order and validates
/// edge endpoints and duplicate synapses on [`NetworkBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a neuron and returns its id.
    pub fn add_neuron(&mut self, role: NodeRole, threshold: f64, leak: f64) -> NeuronId {
        let id = NeuronId::new(self.nodes.len());
        self.nodes.push(Node {
            role,
            threshold,
            leak: leak.clamp(0.0, 1.0),
        });
        id
    }

    /// Adds a synapse.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetworkError::UnknownNeuron`] immediately if either
    /// endpoint has not been added yet. Duplicate detection is deferred to
    /// [`NetworkBuilder::build`].
    pub fn add_edge(
        &mut self,
        source: NeuronId,
        target: NeuronId,
        weight: f64,
        delay: u32,
    ) -> Result<EdgeId, BuildNetworkError> {
        for id in [source, target] {
            if id.index() >= self.nodes.len() {
                return Err(BuildNetworkError::UnknownNeuron {
                    id,
                    node_count: self.nodes.len(),
                });
            }
        }
        let eid = EdgeId::new(self.edges.len());
        self.edges.push(Edge {
            source,
            target,
            weight,
            delay: delay.max(1),
        });
        Ok(eid)
    }

    /// Number of neurons added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if an edge `source -> target` was already added.
    #[must_use]
    pub fn contains_edge(&self, source: NeuronId, target: NeuronId) -> bool {
        self.edges
            .iter()
            .any(|e| e.source == source && e.target == target)
    }

    /// Finalises the network.
    ///
    /// # Errors
    ///
    /// * [`BuildNetworkError::Empty`] if no neurons were added.
    /// * [`BuildNetworkError::DuplicateEdge`] if the same (source, target)
    ///   pair was added more than once.
    pub fn build(self) -> Result<Network, BuildNetworkError> {
        if self.nodes.is_empty() {
            return Err(BuildNetworkError::Empty);
        }
        let mut seen: HashSet<(NeuronId, NeuronId)> = HashSet::with_capacity(self.edges.len());
        for e in &self.edges {
            if !seen.insert((e.source, e.target)) {
                return Err(BuildNetworkError::DuplicateEdge {
                    source: e.source,
                    target: e.target,
                });
            }
        }
        let mut out_adj = vec![Vec::new(); self.nodes.len()];
        let mut in_adj = vec![Vec::new(); self.nodes.len()];
        for (idx, e) in self.edges.iter().enumerate() {
            out_adj[e.source.index()].push(EdgeId::new(idx));
            in_adj[e.target.index()].push(EdgeId::new(idx));
        }
        // Order adjacency for binary-search lookups and deterministic
        // iteration regardless of insertion order.
        for (i, adj) in out_adj.iter_mut().enumerate() {
            adj.sort_by_key(|&e| self.edges[e.index()].target);
            debug_assert!(
                adj.windows(2)
                    .all(|w| self.edges[w[0].index()].target < self.edges[w[1].index()].target),
                "out adjacency of n{i} not strictly sorted"
            );
        }
        for adj in &mut in_adj {
            adj.sort_by_key(|&e| self.edges[e.index()].source);
        }
        Ok(Network {
            nodes: self.nodes,
            edges: self.edges,
            out_adj,
            in_adj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let h = b.add_neuron(NodeRole::Hidden, 1.0, 0.0);
        let o = b.add_neuron(NodeRole::Output, 1.0, 0.0);
        b.add_edge(a, h, 1.0, 1).unwrap();
        b.add_edge(h, o, 1.0, 1).unwrap();
        b.add_edge(a, o, -0.5, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let net = triangle();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 3);
    }

    #[test]
    fn adjacency_queries() {
        let net = triangle();
        let a = NeuronId::new(0);
        let h = NeuronId::new(1);
        let o = NeuronId::new(2);
        assert_eq!(net.out_degree(a), 2);
        assert_eq!(net.in_degree(o), 2);
        assert!(net.has_edge(a, h));
        assert!(net.has_edge(a, o));
        assert!(!net.has_edge(o, a));
        let targets: Vec<_> = net.fan_out(a).map(|e| e.target).collect();
        assert_eq!(targets, vec![h, o]);
        let sources: Vec<_> = net.fan_in(o).map(|e| e.source).collect();
        assert_eq!(sources, vec![a, h]);
    }

    #[test]
    fn axon_sources_excludes_sinks() {
        let net = triangle();
        let sources: Vec<_> = net.axon_sources().collect();
        assert_eq!(sources, vec![NeuronId::new(0), NeuronId::new(1)]);
    }

    #[test]
    fn self_loop_is_allowed() {
        let mut b = NetworkBuilder::new();
        let n = b.add_neuron(NodeRole::Hidden, 1.0, 0.0);
        b.add_edge(n, n, 1.0, 1).unwrap();
        let net = b.build().unwrap();
        assert!(net.has_edge(n, n));
        assert_eq!(net.out_degree(n), 1);
        assert_eq!(net.in_degree(n), 1);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let y = b.add_neuron(NodeRole::Output, 1.0, 0.0);
        b.add_edge(x, y, 1.0, 1).unwrap();
        b.add_edge(x, y, 2.0, 1).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            BuildNetworkError::DuplicateEdge {
                source: x,
                target: y
            }
        );
    }

    #[test]
    fn unknown_neuron_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let ghost = NeuronId::new(5);
        let err = b.add_edge(x, ghost, 1.0, 1).unwrap_err();
        assert!(matches!(err, BuildNetworkError::UnknownNeuron { .. }));
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            NetworkBuilder::new().build().unwrap_err(),
            BuildNetworkError::Empty
        );
    }

    #[test]
    fn delay_clamped_to_one() {
        let mut b = NetworkBuilder::new();
        let x = b.add_neuron(NodeRole::Input, 1.0, 0.0);
        let y = b.add_neuron(NodeRole::Output, 1.0, 0.0);
        b.add_edge(x, y, 1.0, 0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.edge(EdgeId::new(0)).delay, 1);
    }

    #[test]
    fn leak_clamped_to_unit_interval() {
        let mut b = NetworkBuilder::new();
        let n = b.add_neuron(NodeRole::Hidden, 1.0, 2.5);
        let net = {
            let m = b.add_neuron(NodeRole::Hidden, 1.0, -1.0);
            let mut b = b;
            b.add_edge(n, m, 1.0, 1).unwrap();
            b.build().unwrap()
        };
        assert_eq!(net.node(NeuronId::new(0)).leak, 1.0);
        assert_eq!(net.node(NeuronId::new(1)).leak, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        // serde round trip via the derived impls through serde's test token
        // machinery would need serde_test; instead verify Clone+PartialEq.
        let net = triangle();
        let copy = net.clone();
        assert_eq!(net, copy);
    }

    #[test]
    fn roles_query() {
        let net = triangle();
        assert_eq!(net.input_ids().count(), 1);
        assert_eq!(net.output_ids().count(), 1);
    }
}
