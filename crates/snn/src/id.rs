//! Strongly typed identifiers for network elements.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a neuron inside a [`Network`](crate::Network).
///
/// Neuron ids are dense indices `0..node_count()` assigned in insertion
/// order by [`NetworkBuilder`](crate::NetworkBuilder). They are stable for
/// the lifetime of the network.
///
/// ```
/// use croxmap_snn::NeuronId;
/// let id = NeuronId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NeuronId(u32);

impl NeuronId {
    /// Creates a neuron id from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        // lint: allow(panic-path) — ids are u32 across the whole stack by design; 4 billion neurons is far beyond any crossbar instance and the message names the limit
        NeuronId(u32::try_from(index).expect("neuron index exceeds u32 range"))
    }

    /// Returns the dense index of this neuron.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NeuronId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NeuronId> for usize {
    fn from(id: NeuronId) -> usize {
        id.index()
    }
}

/// Identifier of a directed synapse (edge) inside a [`Network`](crate::Network).
///
/// Edge ids are dense indices `0..edge_count()` assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        // lint: allow(panic-path) — ids are u32 across the whole stack by design; 4 billion edges is far beyond any crossbar instance and the message names the limit
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// Returns the dense index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_id_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NeuronId::new(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(EdgeId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NeuronId::new(1) < NeuronId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NeuronId::new(5).to_string(), "n5");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
    }

    #[test]
    #[should_panic(expected = "neuron index exceeds u32 range")]
    fn neuron_id_overflow_panics() {
        let _ = NeuronId::new(u32::MAX as usize + 1);
    }
}
