//! # croxmap-snn — spiking neural network graph model
//!
//! This crate provides the network substrate used throughout `croxmap`: a
//! directed graph of integrate-and-fire neurons with weighted, delayed
//! synapses, together with the sparsity statistics the paper reports in
//! Table I (edge density, maximum fan-in, and the Gini sparsity index of the
//! in-/out-degree distributions).
//!
//! The model intentionally mirrors the TENNLab network abstraction the paper
//! builds on: every node is a neuron with a threshold and leak, nodes can be
//! flagged as network inputs and/or outputs, and edges carry an integer
//! delay plus a signed weight.
//!
//! ## Example
//!
//! ```
//! use croxmap_snn::{Network, NetworkBuilder, NodeRole};
//!
//! # fn main() -> Result<(), croxmap_snn::BuildNetworkError> {
//! let mut b = NetworkBuilder::new();
//! let a = b.add_neuron(NodeRole::Input, 1.0, 0.0);
//! let h = b.add_neuron(NodeRole::Hidden, 1.5, 0.1);
//! let o = b.add_neuron(NodeRole::Output, 1.0, 0.0);
//! b.add_edge(a, h, 1.0, 1)?;
//! b.add_edge(h, o, 2.0, 1)?;
//! let net: Network = b.build()?;
//! assert_eq!(net.node_count(), 3);
//! assert_eq!(net.edge_count(), 2);
//! let stats = net.stats();
//! assert_eq!(stats.max_fan_in, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod id;
mod network;
mod stats;

pub use error::BuildNetworkError;
pub use id::{EdgeId, NeuronId};
pub use network::{Edge, Network, NetworkBuilder, Node, NodeRole};
pub use stats::{gini_index, NetworkStats};
