//! Error types for network construction.

use crate::NeuronId;
use std::error::Error;
use std::fmt;

/// Error returned when [`NetworkBuilder`](crate::NetworkBuilder) is asked to
/// construct an invalid network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildNetworkError {
    /// An edge references a neuron id that was never added.
    UnknownNeuron {
        /// The offending id.
        id: NeuronId,
        /// Number of neurons actually present.
        node_count: usize,
    },
    /// The same (source, target) synapse was added twice.
    ///
    /// The crossbar mapping model treats the connectivity matrix `m_ik` as
    /// boolean, so parallel synapses must be merged by the caller first.
    DuplicateEdge {
        /// Source neuron.
        source: NeuronId,
        /// Target neuron.
        target: NeuronId,
    },
    /// The network has no neurons at all.
    Empty,
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetworkError::UnknownNeuron { id, node_count } => write!(
                f,
                "edge references neuron {id} but only {node_count} neurons exist"
            ),
            BuildNetworkError::DuplicateEdge { source, target } => {
                write!(f, "duplicate synapse from {source} to {target}")
            }
            BuildNetworkError::Empty => write!(f, "network contains no neurons"),
        }
    }
}

impl Error for BuildNetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = BuildNetworkError::DuplicateEdge {
            source: NeuronId::new(1),
            target: NeuronId::new(2),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("duplicate"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildNetworkError>();
    }
}
