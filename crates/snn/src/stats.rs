//! Network sparsity statistics (Table I of the paper).

use crate::Network;
use serde::{Deserialize, Serialize};

/// The per-network attributes the paper reports in Table I.
///
/// * `node_count`, `edge_count` — graph size,
/// * `max_fan_in` — the largest in-degree, which lower-bounds the number of
///   crossbar input lines any valid architecture must provide,
/// * `edge_density` — `edges / nodes²`, the fill ratio of the boolean
///   connectivity matrix `m_ik`,
/// * `gini_incoming` / `gini_outgoing` — the Gini sparsity index of the
///   in-/out-degree distributions (Goswami et al., reference \[40\] of the
///   paper). Higher values mean degree mass is concentrated on few neurons,
///   which is exactly the structure heterogeneous crossbars exploit.
///
/// ```
/// use croxmap_snn::{NetworkBuilder, NodeRole};
/// # fn main() -> Result<(), croxmap_snn::BuildNetworkError> {
/// let mut b = NetworkBuilder::new();
/// let n: Vec<_> = (0..4).map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0)).collect();
/// b.add_edge(n[0], n[3], 1.0, 1)?;
/// b.add_edge(n[1], n[3], 1.0, 1)?;
/// b.add_edge(n[2], n[3], 1.0, 1)?;
/// let stats = b.build()?.stats();
/// assert_eq!(stats.max_fan_in, 3);
/// assert!((stats.edge_density - 3.0 / 16.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of neurons.
    pub node_count: usize,
    /// Number of synapses.
    pub edge_count: usize,
    /// Maximum in-degree over all neurons.
    pub max_fan_in: usize,
    /// Maximum out-degree over all neurons.
    pub max_fan_out: usize,
    /// `edge_count / node_count²`.
    pub edge_density: f64,
    /// Gini sparsity index of the in-degree distribution.
    pub gini_incoming: f64,
    /// Gini sparsity index of the out-degree distribution.
    pub gini_outgoing: f64,
}

impl NetworkStats {
    /// Computes the statistics of `network`.
    #[must_use]
    pub fn of(network: &Network) -> Self {
        let n = network.node_count();
        let in_degrees: Vec<f64> = network
            .neuron_ids()
            .map(|i| network.in_degree(i) as f64)
            .collect();
        let out_degrees: Vec<f64> = network
            .neuron_ids()
            .map(|i| network.out_degree(i) as f64)
            .collect();
        NetworkStats {
            node_count: n,
            edge_count: network.edge_count(),
            max_fan_in: in_degrees.iter().fold(0.0f64, |a, &b| a.max(b)) as usize,
            max_fan_out: out_degrees.iter().fold(0.0f64, |a, &b| a.max(b)) as usize,
            edge_density: network.edge_count() as f64 / (n as f64 * n as f64),
            gini_incoming: gini_index(&in_degrees),
            gini_outgoing: gini_index(&out_degrees),
        }
    }
}

/// Computes the Gini index of a non-negative sample.
///
/// Uses the standard mean-absolute-difference formulation
/// `G = Σᵢ Σⱼ |xᵢ − xⱼ| / (2 n Σ x)`, evaluated in O(n log n) via the
/// sorted-rank identity. Returns `0.0` for empty or all-zero input
/// (a perfectly equal distribution).
///
/// ```
/// use croxmap_snn::gini_index;
/// assert_eq!(gini_index(&[1.0, 1.0, 1.0, 1.0]), 0.0);
/// // All mass on one element of n=4 gives G = 3/4.
/// assert!((gini_index(&[0.0, 0.0, 0.0, 8.0]) - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn gini_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    // lint: allow(panic-path) — inputs are fan-in/fan-out counts and synapse weights produced by the builders, which reject NaN at construction; the message states the contract
    sorted.sort_by(f64::total_cmp);
    // G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n  with 1-based ranks i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n as f64 * total)) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, NodeRole};

    #[test]
    fn gini_of_equal_distribution_is_zero() {
        assert!(gini_index(&[2.0; 10]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_empty_and_zero_is_zero() {
        assert_eq!(gini_index(&[]), 0.0);
        assert_eq!(gini_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 5.0, 13.0];
        let b: Vec<f64> = a.iter().map(|x| x * 42.0).collect();
        assert!((gini_index(&a) - gini_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn gini_is_permutation_invariant() {
        let a = [4.0, 1.0, 7.0, 2.0];
        let b = [7.0, 4.0, 2.0, 1.0];
        assert!((gini_index(&a) - gini_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_approaches_one() {
        let mut values = vec![0.0; 1000];
        values[0] = 1.0;
        let g = gini_index(&values);
        assert!(g > 0.99, "got {g}");
    }

    #[test]
    fn stats_of_star_graph() {
        // Hub receives from 4 leaves: max fan-in 4, high incoming Gini.
        let mut b = NetworkBuilder::new();
        let hub = b.add_neuron(NodeRole::Output, 1.0, 0.0);
        for _ in 0..4 {
            let leaf = b.add_neuron(NodeRole::Input, 1.0, 0.0);
            b.add_edge(leaf, hub, 1.0, 1).unwrap();
        }
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.node_count, 5);
        assert_eq!(stats.edge_count, 4);
        assert_eq!(stats.max_fan_in, 4);
        assert_eq!(stats.max_fan_out, 1);
        assert!((stats.edge_density - 4.0 / 25.0).abs() < 1e-12);
        assert!(stats.gini_incoming > stats.gini_outgoing);
    }

    #[test]
    fn stats_match_manual_density() {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..10)
            .map(|_| b.add_neuron(NodeRole::Hidden, 1.0, 0.0))
            .collect();
        for i in 0..9 {
            b.add_edge(n[i], n[i + 1], 1.0, 1).unwrap();
        }
        let stats = b.build().unwrap().stats();
        assert!((stats.edge_density - 9.0 / 100.0).abs() < 1e-12);
        assert_eq!(stats.max_fan_in, 1);
    }
}
