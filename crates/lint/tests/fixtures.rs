//! Fixture tests: every rule must catch its seeded violation, and every
//! exemption (strings, `cfg(test)`, aliases, waivers, the allowlist)
//! must hold. Sources are inline strings fed through [`scan_source`],
//! exactly the path the workspace scan takes per file.

use croxmap_lint::lexer::{lex, TokKind};
use croxmap_lint::waiver::Allowlist;
use croxmap_lint::{scan_source, Report, Rule};

fn scan(path: &str, src: &str) -> Report {
    scan_source(path, src, &Allowlist::default())
}

fn rules_of(report: &Report) -> Vec<Rule> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_strips_strings_and_comments() {
    let src = "fn f() { let s = \"HashMap.iter() thread::spawn Instant\"; // Instant here too\n /* and Relaxed\n in a block */ }";
    let lexed = lex(src);
    assert!(
        !lexed.tokens.iter().any(|t| t.text.contains("Instant")
            || t.text.contains("Relaxed")
            || t.text.contains("HashMap")),
        "string/comment contents must not become tokens"
    );
    assert_eq!(lexed.comments.len(), 2);
    assert!(!lexed.comments[0].own_line, "trailing comment");
    assert!(
        lexed.comments[1].own_line,
        "block comment alone on its line"
    );
}

#[test]
fn lexer_handles_raw_strings_and_chars() {
    let src = "let a = r#\"Instant \"quoted\" inside\"#; let b = b\"SystemTime\"; let c = '\\n'; let d: &'static str = \"x\";";
    let lexed = lex(src);
    assert!(
        !lexed
            .tokens
            .iter()
            .any(|t| t.text.contains("Instant") || t.text.contains("SystemTime")),
        "raw and byte string bodies must be stripped"
    );
    assert!(
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"),
        "lifetimes survive as tokens"
    );
}

#[test]
fn lexer_keeps_range_expressions_apart() {
    let lexed = lex("for i in 0..n { let x = 1e9; let y = 2.5; }");
    let nums: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(
        nums,
        ["0", "1e9", "2.5"],
        "`0..n` must not fuse into one number"
    );
}

#[test]
fn lexer_marks_cfg_test_regions() {
    let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
    let lexed = lex(src);
    let unwrap_tok = lexed
        .tokens
        .iter()
        .find(|t| t.text == "unwrap")
        .expect("unwrap token present");
    assert!(unwrap_tok.in_test, "tokens under #[cfg(test)] are marked");
    let lib2 = lexed.tokens.iter().find(|t| t.text == "lib2").unwrap();
    assert!(!lib2.in_test, "marking ends with the balanced brace");
}

#[test]
fn lexer_does_not_mark_cfg_not_test() {
    let src = "#[cfg(not(test))]\nfn real() { x.unwrap(); }";
    let lexed = lex(src);
    let unwrap_tok = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
    assert!(!unwrap_tok.in_test, "#[cfg(not(test))] is library code");
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_time_caught_and_alias_resolved() {
    let direct = scan(
        "crates/ilp/src/x.rs",
        "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
    );
    assert!(rules_of(&direct).contains(&Rule::DeterminismTime));

    let aliased = scan(
        "crates/ilp/src/x.rs",
        "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }",
    );
    assert!(
        rules_of(&aliased).contains(&Rule::DeterminismTime),
        "`use … as` rename must still be caught"
    );
}

#[test]
fn determinism_rng_caught() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "use rand::thread_rng;\nfn f() { let mut rng = thread_rng(); }",
    );
    assert!(rules_of(&r).contains(&Rule::DeterminismRng));
}

#[test]
fn string_mentioning_banned_names_is_clean() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f() -> &'static str { \"HashMap iteration and Instant and thread_rng\" }",
    );
    assert!(r.is_clean(), "strings are not code: {}", r.render());
}

#[test]
fn cfg_test_code_is_exempt() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    #[test]\n    fn t() { let _ = Instant::now(); x.unwrap(); }\n}",
    );
    assert!(r.is_clean(), "cfg(test) is exempt: {}", r.render());
}

#[test]
fn test_directory_files_are_exempt() {
    let r = scan(
        "crates/ilp/tests/determinism.rs",
        "use std::time::Instant;\nfn f() { let t = Instant::now(); x.unwrap(); }",
    );
    assert!(r.is_clean(), "tests/ files are exempt: {}", r.render());
}

// ------------------------------------------------------- hash iteration

#[test]
fn hash_iteration_methods_caught_lookups_legal() {
    let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {\n    let _ = m.get(&1);\n    let _ = m.len();\n    for k in m.keys() { let _ = k; }\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    let hits: Vec<u32> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::HashIteration)
        .map(|f| f.line)
        .collect();
    assert_eq!(
        hits,
        [5],
        "keys() flagged, get()/len() legal: {}",
        r.render()
    );
}

#[test]
fn hash_iteration_for_loop_caught() {
    let src = "use std::collections::HashSet;\nfn f() {\n    let mut s: HashSet<u32> = HashSet::new();\n    s.insert(1);\n    for v in &s { let _ = v; }\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    assert!(
        rules_of(&r).contains(&Rule::HashIteration),
        "`for … in &set` must be flagged: {}",
        r.render()
    );
}

#[test]
fn hash_iteration_through_alias_and_nested() {
    let aliased = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashMap as Map;\nfn f(m: Map<u32, u32>) { for v in m.values() { let _ = v; } }",
    );
    assert!(rules_of(&aliased).contains(&Rule::HashIteration));

    let nested = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashSet;\nfn f(adj: Vec<HashSet<u32>>) {\n    for v in adj[0].iter() { let _ = v; }\n}",
    );
    assert!(
        rules_of(&nested).contains(&Rule::HashIteration),
        "indexed element of a Vec<HashSet> must be flagged: {}",
        nested.render()
    );
}

#[test]
fn hash_iteration_inferred_binding_caught() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashMap;\nfn f() {\n    let m = HashMap::<u32, u32>::new();\n    let _: Vec<_> = m.drain().collect();\n}",
    );
    assert!(rules_of(&r).contains(&Rule::HashIteration));
}

#[test]
fn vec_iteration_is_legal() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(v: Vec<u32>) { for x in v.iter() { let _ = x; } for y in &v {} }",
    );
    assert!(r.is_clean(), "Vec traversal is fine: {}", r.render());
}

// ---------------------------------------------------------- concurrency

#[test]
fn relaxed_ordering_caught_bare_ident_legal() {
    let caught = scan(
        "crates/ilp/src/x.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }",
    );
    assert!(rules_of(&caught).contains(&Rule::RelaxedOrdering));

    let bare = scan(
        "crates/ilp/src/x.rs",
        "struct Relaxed;\nfn f() { let _ = Relaxed; }",
    );
    assert!(
        !rules_of(&bare).contains(&Rule::RelaxedOrdering),
        "only `…::Relaxed` path uses count"
    );
}

#[test]
fn thread_spawn_caught() {
    let r = scan(
        "crates/core/src/x.rs",
        "use std::thread;\nfn f() { thread::spawn(|| {}); }",
    );
    assert!(rules_of(&r).contains(&Rule::ThreadSpawn));
    let scoped = scan(
        "crates/core/src/x.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert!(rules_of(&scoped).contains(&Rule::ThreadSpawn));
}

// ----------------------------------------------------------- panic path

#[test]
fn panic_path_caught_unwrap_or_legal() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn h(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }",
    );
    let hits: Vec<u32> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .map(|f| f.line)
        .collect();
    assert_eq!(
        hits,
        [1],
        "unwrap() flagged, unwrap_or* legal: {}",
        r.render()
    );
}

// ------------------------------------------------------ ticks arithmetic

#[test]
fn ticks_arithmetic_caught_in_all_spellings() {
    for lit in [
        "1e9",
        "1E9",
        "1_000_000_000",
        "1000000000",
        "1_000_000_000u64",
    ] {
        let src = format!("fn f(n: u64) -> u64 {{ n * {lit} as u64 }}");
        let r = scan("crates/ilp/src/x.rs", &src);
        assert!(
            rules_of(&r).contains(&Rule::TicksArithmetic),
            "`{lit}` must be caught"
        );
    }
    let other = scan("crates/ilp/src/x.rs", "fn f() -> u64 { 2_000_000_000 }");
    assert!(other.is_clean(), "other constants stay legal");
}

// -------------------------------------------------------- forbid unsafe

#[test]
fn forbid_unsafe_required_in_crate_roots_only() {
    let missing = scan("crates/ilp/src/lib.rs", "//! docs\npub fn f() {}");
    assert_eq!(rules_of(&missing), [Rule::ForbidUnsafe]);
    assert_eq!(missing.findings[0].line, 1);

    let present = scan(
        "crates/ilp/src/lib.rs",
        "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}",
    );
    assert!(present.is_clean());

    let module = scan("crates/ilp/src/solver.rs", "pub fn f() {}");
    assert!(module.is_clean(), "non-root modules need no attribute");
}

// --------------------------------------------------------------- waivers

#[test]
fn same_line_waiver_suppresses_with_reason() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic-path) — x checked by caller",
    );
    assert!(r.is_clean(), "{}", r.render());
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.waived[0].1, "x checked by caller");
}

#[test]
fn own_line_waiver_covers_code_below_through_comment_block() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-path) — invariant: caller checked\n    // more commentary between waiver and code\n    x.unwrap()\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    assert!(
        r.is_clean(),
        "contiguous comment block must carry the waiver: {}",
        r.render()
    );
    assert_eq!(r.waived.len(), 1);
}

#[test]
fn waiver_does_not_cross_code_lines_or_rules() {
    let gap = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // lint: allow(panic-path) — only covers the next line\n    let a = x.unwrap();\n    a + y.unwrap()\n}",
    );
    assert_eq!(
        gap.findings.len(),
        1,
        "second unwrap stays flagged: {}",
        gap.render()
    );
    assert_eq!(gap.findings[0].line, 4);

    let wrong_rule = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(hash-iteration) — wrong rule",
    );
    assert_eq!(
        rules_of(&wrong_rule),
        [Rule::PanicPath],
        "a waiver only covers its own rule"
    );
}

#[test]
fn malformed_waivers_are_findings() {
    // Empty reason.
    let empty = scan(
        "crates/ilp/src/x.rs",
        "// lint: allow(panic-path)\nfn f() {}",
    );
    assert_eq!(rules_of(&empty), [Rule::MalformedWaiver]);
    // Unknown rule name.
    let unknown = scan(
        "crates/ilp/src/x.rs",
        "// lint: allow(no-such-rule) — reason\nfn f() {}",
    );
    assert_eq!(rules_of(&unknown), [Rule::MalformedWaiver]);
    // Not the allow(…) form at all.
    let garbled = scan(
        "crates/ilp/src/x.rs",
        "// lint: disable everything\nfn f() {}",
    );
    assert_eq!(rules_of(&garbled), [Rule::MalformedWaiver]);
    // Prose merely *mentioning* the marker is not a waiver attempt.
    let prose = scan(
        "crates/ilp/src/x.rs",
        "// the `lint:` marker is described here\nfn f() {}",
    );
    assert!(prose.is_clean(), "{}", prose.render());
}

// ------------------------------------------------------------- allowlist

#[test]
fn allowlist_covers_by_prefix_and_rule() {
    let toml = "[[allow]]\npath = \"crates/bench/\"\nrules = [\"determinism-time\"]\nreason = \"bench measures wall time by design\"\n";
    let allow = Allowlist::parse(toml).expect("valid allowlist");
    let covered = scan_source(
        "crates/bench/src/x.rs",
        "use std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        &allow,
    );
    assert!(covered.is_clean(), "{}", covered.render());
    assert!(covered.allowlisted >= 1);

    // Same source outside the prefix still fails.
    let outside = scan_source(
        "crates/ilp/src/x.rs",
        "use std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        &allow,
    );
    assert!(!outside.is_clean());

    // Same prefix, different rule still fails.
    let other_rule = scan_source(
        "crates/bench/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        &allow,
    );
    assert_eq!(rules_of(&other_rule), [Rule::PanicPath]);
}

#[test]
fn allowlist_wildcard_and_validation() {
    let wild = Allowlist::parse(
        "[[allow]]\npath = \"crates/compat/\"\nrules = [\"*\"]\nreason = \"offline stubs\"\n",
    )
    .expect("wildcard parses");
    let r = scan_source(
        "crates/compat/rand/src/lib.rs",
        "pub fn thread_rng() -> u32 { 4 }",
        &wild,
    );
    assert!(r.is_clean(), "{}", r.render());

    // Reason is mandatory.
    assert!(Allowlist::parse("[[allow]]\npath = \"x\"\nrules = [\"*\"]\nreason = \"\"\n").is_err());
    // Unknown rules are rejected.
    assert!(
        Allowlist::parse("[[allow]]\npath = \"x\"\nrules = [\"bogus\"]\nreason = \"r\"\n").is_err()
    );
    // Keys outside a block are rejected.
    assert!(Allowlist::parse("path = \"x\"\n").is_err());
}

// ------------------------------------------------------------ reporting

#[test]
fn report_carries_location_snippet_and_hint() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}",
    );
    assert_eq!(r.findings.len(), 1);
    let f = &r.findings[0];
    assert_eq!((f.file.as_str(), f.line), ("crates/ilp/src/x.rs", 2));
    assert_eq!(f.snippet, "x.unwrap()");
    let rendered = r.render();
    assert!(rendered.contains("crates/ilp/src/x.rs:2 [panic-path]"));
    assert!(
        rendered.contains("// lint: allow(panic-path)"),
        "waiver hint present"
    );
}

#[test]
fn rule_ids_round_trip() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
        assert!(!rule.describe().is_empty());
    }
    assert_eq!(Rule::from_id("not-a-rule"), None);
}
