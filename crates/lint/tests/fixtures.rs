//! Fixture tests: every rule must catch its seeded violation, and every
//! exemption (strings, `cfg(test)`, aliases, waivers, the allowlist)
//! must hold. Sources are inline strings fed through [`scan_source`],
//! exactly the path the workspace scan takes per file.

use croxmap_lint::lexer::{lex, TokKind};
use croxmap_lint::waiver::Allowlist;
use croxmap_lint::{scan_source, scan_sources, Report, Rule, ScanOutput};

fn scan(path: &str, src: &str) -> Report {
    scan_source(path, src, &Allowlist::default())
}

fn rules_of(report: &Report) -> Vec<Rule> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_strips_strings_and_comments() {
    let src = "fn f() { let s = \"HashMap.iter() thread::spawn Instant\"; // Instant here too\n /* and Relaxed\n in a block */ }";
    let lexed = lex(src);
    assert!(
        !lexed.tokens.iter().any(|t| t.text.contains("Instant")
            || t.text.contains("Relaxed")
            || t.text.contains("HashMap")),
        "string/comment contents must not become tokens"
    );
    assert_eq!(lexed.comments.len(), 2);
    assert!(!lexed.comments[0].own_line, "trailing comment");
    assert!(
        lexed.comments[1].own_line,
        "block comment alone on its line"
    );
}

#[test]
fn lexer_handles_raw_strings_and_chars() {
    let src = "let a = r#\"Instant \"quoted\" inside\"#; let b = b\"SystemTime\"; let c = '\\n'; let d: &'static str = \"x\";";
    let lexed = lex(src);
    assert!(
        !lexed
            .tokens
            .iter()
            .any(|t| t.text.contains("Instant") || t.text.contains("SystemTime")),
        "raw and byte string bodies must be stripped"
    );
    assert!(
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"),
        "lifetimes survive as tokens"
    );
}

#[test]
fn lexer_keeps_range_expressions_apart() {
    let lexed = lex("for i in 0..n { let x = 1e9; let y = 2.5; }");
    let nums: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(
        nums,
        ["0", "1e9", "2.5"],
        "`0..n` must not fuse into one number"
    );
}

#[test]
fn lexer_marks_cfg_test_regions() {
    let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
    let lexed = lex(src);
    let unwrap_tok = lexed
        .tokens
        .iter()
        .find(|t| t.text == "unwrap")
        .expect("unwrap token present");
    assert!(unwrap_tok.in_test, "tokens under #[cfg(test)] are marked");
    let lib2 = lexed.tokens.iter().find(|t| t.text == "lib2").unwrap();
    assert!(!lib2.in_test, "marking ends with the balanced brace");
}

#[test]
fn lexer_does_not_mark_cfg_not_test() {
    let src = "#[cfg(not(test))]\nfn real() { x.unwrap(); }";
    let lexed = lex(src);
    let unwrap_tok = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
    assert!(!unwrap_tok.in_test, "#[cfg(not(test))] is library code");
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_time_caught_and_alias_resolved() {
    let direct = scan(
        "crates/ilp/src/x.rs",
        "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
    );
    assert!(rules_of(&direct).contains(&Rule::DeterminismTime));

    let aliased = scan(
        "crates/ilp/src/x.rs",
        "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }",
    );
    assert!(
        rules_of(&aliased).contains(&Rule::DeterminismTime),
        "`use … as` rename must still be caught"
    );
}

#[test]
fn determinism_rng_caught() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "use rand::thread_rng;\nfn f() { let mut rng = thread_rng(); }",
    );
    assert!(rules_of(&r).contains(&Rule::DeterminismRng));
}

#[test]
fn string_mentioning_banned_names_is_clean() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f() -> &'static str { \"HashMap iteration and Instant and thread_rng\" }",
    );
    assert!(r.is_clean(), "strings are not code: {}", r.render());
}

#[test]
fn cfg_test_code_is_exempt() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    #[test]\n    fn t() { let _ = Instant::now(); x.unwrap(); }\n}",
    );
    assert!(r.is_clean(), "cfg(test) is exempt: {}", r.render());
}

#[test]
fn test_directory_files_are_exempt() {
    let r = scan(
        "crates/ilp/tests/determinism.rs",
        "use std::time::Instant;\nfn f() { let t = Instant::now(); x.unwrap(); }",
    );
    assert!(r.is_clean(), "tests/ files are exempt: {}", r.render());
}

// ------------------------------------------------------- hash iteration

#[test]
fn hash_iteration_methods_caught_lookups_legal() {
    let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {\n    let _ = m.get(&1);\n    let _ = m.len();\n    for k in m.keys() { let _ = k; }\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    let hits: Vec<u32> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::HashIteration)
        .map(|f| f.line)
        .collect();
    assert_eq!(
        hits,
        [5],
        "keys() flagged, get()/len() legal: {}",
        r.render()
    );
}

#[test]
fn hash_iteration_for_loop_caught() {
    let src = "use std::collections::HashSet;\nfn f() {\n    let mut s: HashSet<u32> = HashSet::new();\n    s.insert(1);\n    for v in &s { let _ = v; }\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    assert!(
        rules_of(&r).contains(&Rule::HashIteration),
        "`for … in &set` must be flagged: {}",
        r.render()
    );
}

#[test]
fn hash_iteration_through_alias_and_nested() {
    let aliased = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashMap as Map;\nfn f(m: Map<u32, u32>) { for v in m.values() { let _ = v; } }",
    );
    assert!(rules_of(&aliased).contains(&Rule::HashIteration));

    let nested = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashSet;\nfn f(adj: Vec<HashSet<u32>>) {\n    for v in adj[0].iter() { let _ = v; }\n}",
    );
    assert!(
        rules_of(&nested).contains(&Rule::HashIteration),
        "indexed element of a Vec<HashSet> must be flagged: {}",
        nested.render()
    );
}

#[test]
fn hash_iteration_inferred_binding_caught() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "use std::collections::HashMap;\nfn f() {\n    let m = HashMap::<u32, u32>::new();\n    let _: Vec<_> = m.drain().collect();\n}",
    );
    assert!(rules_of(&r).contains(&Rule::HashIteration));
}

#[test]
fn vec_iteration_is_legal() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(v: Vec<u32>) { for x in v.iter() { let _ = x; } for y in &v {} }",
    );
    assert!(r.is_clean(), "Vec traversal is fine: {}", r.render());
}

// ---------------------------------------------------------- concurrency

#[test]
fn relaxed_ordering_caught_bare_ident_legal() {
    let caught = scan(
        "crates/ilp/src/x.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }",
    );
    assert!(rules_of(&caught).contains(&Rule::RelaxedOrdering));

    let bare = scan(
        "crates/ilp/src/x.rs",
        "struct Relaxed;\nfn f() { let _ = Relaxed; }",
    );
    assert!(
        !rules_of(&bare).contains(&Rule::RelaxedOrdering),
        "only `…::Relaxed` path uses count"
    );
}

#[test]
fn thread_spawn_caught() {
    let r = scan(
        "crates/core/src/x.rs",
        "use std::thread;\nfn f() { thread::spawn(|| {}); }",
    );
    assert!(rules_of(&r).contains(&Rule::ThreadSpawn));
    let scoped = scan(
        "crates/core/src/x.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert!(rules_of(&scoped).contains(&Rule::ThreadSpawn));
}

// ----------------------------------------------------------- panic path

#[test]
fn panic_path_caught_unwrap_or_legal() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn h(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }",
    );
    let hits: Vec<u32> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PanicPath)
        .map(|f| f.line)
        .collect();
    assert_eq!(
        hits,
        [1],
        "unwrap() flagged, unwrap_or* legal: {}",
        r.render()
    );
}

// ------------------------------------------------------ ticks arithmetic

#[test]
fn ticks_arithmetic_caught_in_all_spellings() {
    for lit in [
        "1e9",
        "1E9",
        "1_000_000_000",
        "1000000000",
        "1_000_000_000u64",
    ] {
        let src = format!("fn f(n: u64) -> u64 {{ n * {lit} as u64 }}");
        let r = scan("crates/ilp/src/x.rs", &src);
        assert!(
            rules_of(&r).contains(&Rule::TicksArithmetic),
            "`{lit}` must be caught"
        );
    }
    let other = scan("crates/ilp/src/x.rs", "fn f() -> u64 { 2_000_000_000 }");
    assert!(other.is_clean(), "other constants stay legal");
}

// -------------------------------------------------------- forbid unsafe

#[test]
fn forbid_unsafe_required_in_crate_roots_only() {
    let missing = scan("crates/ilp/src/lib.rs", "//! docs\npub fn f() {}");
    assert_eq!(rules_of(&missing), [Rule::ForbidUnsafe]);
    assert_eq!(missing.findings[0].line, 1);

    let present = scan(
        "crates/ilp/src/lib.rs",
        "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}",
    );
    assert!(present.is_clean());

    let module = scan("crates/ilp/src/solver.rs", "pub fn f() {}");
    assert!(module.is_clean(), "non-root modules need no attribute");
}

// --------------------------------------------------------------- waivers

#[test]
fn same_line_waiver_suppresses_with_reason() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic-path) — x checked by caller",
    );
    assert!(r.is_clean(), "{}", r.render());
    assert_eq!(r.waived.len(), 1);
    assert_eq!(r.waived[0].1, "x checked by caller");
}

#[test]
fn own_line_waiver_covers_code_below_through_comment_block() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-path) — invariant: caller checked\n    // more commentary between waiver and code\n    x.unwrap()\n}";
    let r = scan("crates/ilp/src/x.rs", src);
    assert!(
        r.is_clean(),
        "contiguous comment block must carry the waiver: {}",
        r.render()
    );
    assert_eq!(r.waived.len(), 1);
}

#[test]
fn waiver_does_not_cross_code_lines_or_rules() {
    let gap = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // lint: allow(panic-path) — only covers the next line\n    let a = x.unwrap();\n    a + y.unwrap()\n}",
    );
    assert_eq!(
        gap.findings.len(),
        1,
        "second unwrap stays flagged: {}",
        gap.render()
    );
    assert_eq!(gap.findings[0].line, 4);

    let wrong_rule = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(hash-iteration) — wrong rule",
    );
    assert_eq!(
        rules_of(&wrong_rule),
        [Rule::PanicPath],
        "a waiver only covers its own rule"
    );
}

#[test]
fn malformed_waivers_are_findings() {
    // Empty reason.
    let empty = scan(
        "crates/ilp/src/x.rs",
        "// lint: allow(panic-path)\nfn f() {}",
    );
    assert_eq!(rules_of(&empty), [Rule::MalformedWaiver]);
    // Unknown rule name.
    let unknown = scan(
        "crates/ilp/src/x.rs",
        "// lint: allow(no-such-rule) — reason\nfn f() {}",
    );
    assert_eq!(rules_of(&unknown), [Rule::MalformedWaiver]);
    // Not the allow(…) form at all.
    let garbled = scan(
        "crates/ilp/src/x.rs",
        "// lint: disable everything\nfn f() {}",
    );
    assert_eq!(rules_of(&garbled), [Rule::MalformedWaiver]);
    // Prose merely *mentioning* the marker is not a waiver attempt.
    let prose = scan(
        "crates/ilp/src/x.rs",
        "// the `lint:` marker is described here\nfn f() {}",
    );
    assert!(prose.is_clean(), "{}", prose.render());
}

// ------------------------------------------------------------- allowlist

#[test]
fn allowlist_covers_by_prefix_and_rule() {
    let toml = "[[allow]]\npath = \"crates/bench/\"\nrules = [\"determinism-time\"]\nreason = \"bench measures wall time by design\"\n";
    let allow = Allowlist::parse(toml).expect("valid allowlist");
    let covered = scan_source(
        "crates/bench/src/x.rs",
        "use std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        &allow,
    );
    assert!(covered.is_clean(), "{}", covered.render());
    assert!(!covered.allowlisted.is_empty());

    // Same source outside the prefix still fails.
    let outside = scan_source(
        "crates/ilp/src/x.rs",
        "use std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        &allow,
    );
    assert!(!outside.is_clean());

    // Same prefix, different rule still fails.
    let other_rule = scan_source(
        "crates/bench/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        &allow,
    );
    assert_eq!(rules_of(&other_rule), [Rule::PanicPath]);
}

#[test]
fn allowlist_wildcard_and_validation() {
    let wild = Allowlist::parse(
        "[[allow]]\npath = \"crates/compat/\"\nrules = [\"*\"]\nreason = \"offline stubs\"\n",
    )
    .expect("wildcard parses");
    let r = scan_source(
        "crates/compat/rand/src/lib.rs",
        "pub fn thread_rng() -> u32 { 4 }",
        &wild,
    );
    assert!(r.is_clean(), "{}", r.render());

    // Reason is mandatory.
    assert!(Allowlist::parse("[[allow]]\npath = \"x\"\nrules = [\"*\"]\nreason = \"\"\n").is_err());
    // Unknown rules are rejected.
    assert!(
        Allowlist::parse("[[allow]]\npath = \"x\"\nrules = [\"bogus\"]\nreason = \"r\"\n").is_err()
    );
    // Keys outside a block are rejected.
    assert!(Allowlist::parse("path = \"x\"\n").is_err());
}

// ------------------------------------------------------------ reporting

#[test]
fn report_carries_location_snippet_and_hint() {
    let r = scan(
        "crates/ilp/src/x.rs",
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}",
    );
    assert_eq!(r.findings.len(), 1);
    let f = &r.findings[0];
    assert_eq!((f.file.as_str(), f.line), ("crates/ilp/src/x.rs", 2));
    assert_eq!(f.snippet, "x.unwrap()");
    let rendered = r.render();
    assert!(rendered.contains("crates/ilp/src/x.rs:2 [panic-path]"));
    assert!(
        rendered.contains("// lint: allow(panic-path)"),
        "waiver hint present"
    );
}

// -------------------------------------------------------- float-equality

#[test]
fn float_equality_flags_eq_ne_and_partial_cmp() {
    let eq = scan(
        "crates/ilp/src/x.rs",
        "fn f(a: f64, b: f64) -> bool { a == b }",
    );
    assert_eq!(rules_of(&eq), [Rule::FloatEquality]);

    let ne = scan("crates/ilp/src/x.rs", "fn f(c: f64) -> bool { c != 2.5 }");
    assert_eq!(rules_of(&ne), [Rule::FloatEquality]);

    // NaN silently compares Equal here, corrupting the sort order.
    let pc = scan(
        "crates/ilp/src/x.rs",
        "fn f(xs: &mut [f64]) { xs.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal)); }",
    );
    assert_eq!(rules_of(&pc), [Rule::FloatEquality]);
}

#[test]
fn float_equality_exemptions_and_waiver() {
    // `x == 0.0` is the structural-zero test sparse kernels rest on.
    let zero = scan("crates/ilp/src/x.rs", "fn f(a: f64) -> bool { a == 0.0 }");
    assert!(zero.is_clean(), "{}", zero.render());

    // ±INFINITY is the exact no-bound sentinel.
    let inf = scan(
        "crates/ilp/src/x.rs",
        "fn f(a: f64) -> bool { a == f64::INFINITY || a != f64::NEG_INFINITY }",
    );
    assert!(inf.is_clean(), "{}", inf.render());

    // `total_cmp` is the sanctioned comparator.
    let tc = scan(
        "crates/ilp/src/x.rs",
        "fn f(xs: &mut [f64]) { xs.sort_by(|p, q| p.total_cmp(q)); }",
    );
    assert!(tc.is_clean(), "{}", tc.render());

    // A `.`-chain past an index ends in a call — untyped, not flagged
    // (`to_bits` comparisons must stay legal).
    let bits = scan(
        "crates/ilp/src/x.rs",
        "fn f(xs: &[f64], y: f64) -> bool { xs[0].to_bits() == y.to_bits() }",
    );
    assert!(bits.is_clean(), "{}", bits.render());

    // Test code may compare exactly.
    let test = scan(
        "crates/ilp/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    fn t(a: f64) -> bool { a == 1.5 }\n}",
    );
    assert!(test.is_clean(), "{}", test.render());

    let waived = scan(
        "crates/ilp/src/x.rs",
        "fn f(a: f64, b: f64) -> bool { a == b } // lint: allow(float-equality) — bit-identity check on a cached copy",
    );
    assert!(waived.is_clean(), "{}", waived.render());
    assert_eq!(waived.waived.len(), 1);
}

// ------------------------------------------------------- tolerance-drift

#[test]
fn tolerance_drift_flags_band_by_value() {
    let lit = scan("crates/ilp/src/x.rs", "const T: f64 = 1e-6;");
    assert_eq!(rules_of(&lit), [Rule::ToleranceDrift]);

    // Evaluated by value: `1_000e-9f64` is 1e-6, squarely in band,
    // even though no single digit pair says so.
    let fused = scan("crates/ilp/src/x.rs", "const T: f64 = 1_000e-9f64;");
    assert_eq!(rules_of(&fused), [Rule::ToleranceDrift]);
}

#[test]
fn tolerance_drift_exemptions_and_waiver() {
    // Out of band on both sides (1e-3 itself is legal: half-open band).
    let out = scan(
        "crates/ilp/src/x.rs",
        "const A: f64 = 0.5;\nconst B: f64 = 5e3;\nconst C: f64 = 1e-13;\nconst D: f64 = 1e-3;",
    );
    assert!(out.is_clean(), "{}", out.render());

    // Integers are not tolerances.
    let int = scan("crates/ilp/src/x.rs", "const N: usize = 100;");
    assert!(int.is_clean(), "{}", int.render());

    let waived = scan(
        "crates/ilp/src/x.rs",
        "// lint: allow(tolerance-drift) — sampling guard, not a solver tolerance\nconst T: f64 = 1e-6;",
    );
    assert!(waived.is_clean(), "{}", waived.render());
    assert_eq!(waived.waived.len(), 1);

    // The `tol.rs` definition site is exempted via the allowlist.
    let toml = "[[allow]]\npath = \"crates/ilp/src/tol.rs\"\nrules = [\"tolerance-drift\"]\nreason = \"single definition site of every solver tolerance\"\n";
    let allow = Allowlist::parse(toml).expect("valid allowlist");
    let tol = scan_source(
        "crates/ilp/src/tol.rs",
        "pub const FEAS: f64 = 1e-6;",
        &allow,
    );
    assert!(tol.is_clean(), "{}", tol.render());
    assert_eq!(tol.allowlisted.len(), 1);
}

// ----------------------------------------------------- lock-order (flow)

fn scan_files(files: &[(&str, &str)]) -> ScanOutput {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect();
    scan_sources(&owned, &Allowlist::default())
}

#[test]
fn lock_order_cycle_across_files_is_a_finding() {
    // a.rs takes queue_a before queue_b; b.rs takes them in the
    // opposite order — a deadlock no scheduler can rule out.
    let a = "pub struct Exchange { pub queue_a: Mutex<Vec<u32>>, pub queue_b: Mutex<Vec<u32>> }\n\
             fn drain_ab(ex: &Exchange) {\n    let g = ex.queue_a.lock().unwrap_or_else(|e| e.into_inner());\n    let h = ex.queue_b.lock().unwrap_or_else(|e| e.into_inner());\n    drop((g, h));\n}";
    let b = "fn drain_ba(ex: &Exchange) {\n    let g = ex.queue_b.lock().unwrap_or_else(|e| e.into_inner());\n    let h = ex.queue_a.lock().unwrap_or_else(|e| e.into_inner());\n    drop((g, h));\n}";
    let out = scan_files(&[("crates/ilp/src/a.rs", a), ("crates/ilp/src/b.rs", b)]);
    assert!(out.lock_graph.find_cycle().is_some());
    assert!(out.lock_graph.topological_order().is_none());
    assert!(
        rules_of(&out.report).contains(&Rule::LockOrder),
        "{}",
        out.report.render()
    );
    assert!(out.lock_graph.render_contract().contains("CYCLE"));
}

#[test]
fn lock_order_consistent_nesting_is_clean() {
    let a = "pub struct Exchange { pub queue_a: Mutex<Vec<u32>>, pub queue_b: Mutex<Vec<u32>> }\n\
             fn drain_ab(ex: &Exchange) {\n    let g = ex.queue_a.lock().unwrap_or_else(|e| e.into_inner());\n    let h = ex.queue_b.lock().unwrap_or_else(|e| e.into_inner());\n    drop((g, h));\n}";
    let b = "fn also_ab(ex: &Exchange) {\n    let g = ex.queue_a.lock().unwrap_or_else(|e| e.into_inner());\n    let h = ex.queue_b.lock().unwrap_or_else(|e| e.into_inner());\n    drop((g, h));\n}";
    let out = scan_files(&[("crates/ilp/src/a.rs", a), ("crates/ilp/src/b.rs", b)]);
    assert!(out.report.is_clean(), "{}", out.report.render());
    assert_eq!(
        out.lock_graph.topological_order(),
        Some(vec!["queue_a".to_string(), "queue_b".to_string()])
    );
    let contract = out.lock_graph.render_contract();
    assert!(contract.contains("`queue_a` → `queue_b`"), "{contract}");
}

#[test]
fn lock_order_temporary_guard_drops_at_statement_end() {
    // Statement temporaries release at `;`: sequential acquisitions in
    // separate statements are not nested and produce no edge.
    let src = "pub struct S { pub qa: Mutex<Vec<u32>>, pub qb: Mutex<Vec<u32>> }\n\
               fn f(s: &S) {\n    s.qa.lock().unwrap_or_else(|e| e.into_inner()).push(1);\n    s.qb.lock().unwrap_or_else(|e| e.into_inner()).push(2);\n}";
    let out = scan_files(&[("crates/ilp/src/a.rs", src)]);
    assert!(
        out.lock_graph.edges.is_empty(),
        "{:?}",
        out.lock_graph.edges
    );
}

#[test]
fn lock_order_edge_through_direct_callee() {
    let src = "pub struct S { pub qa: Mutex<Vec<u32>>, pub qb: Mutex<Vec<u32>> }\n\
               fn outer(s: &S) {\n    let g = s.qa.lock().unwrap_or_else(|e| e.into_inner());\n    inner(s);\n    drop(g);\n}\n\
               fn inner(s: &S) {\n    s.qb.lock().unwrap_or_else(|e| e.into_inner()).push(1);\n}";
    let out = scan_files(&[("crates/ilp/src/a.rs", src)]);
    assert!(
        out.lock_graph.edges.iter().any(|e| e.held == "qa"
            && e.acquired == "qb"
            && e.via_call.as_deref() == Some("inner")),
        "{:?}",
        out.lock_graph.edges
    );
}

#[test]
fn lock_order_waiver_suppresses_witness() {
    let src = "pub struct S { pub qa: Mutex<Vec<u32>>, pub qb: Mutex<Vec<u32>> }\n\
fn ab(s: &S) {\n    let g = s.qa.lock().unwrap_or_else(|e| e.into_inner());\n    let h = s.qb.lock().unwrap_or_else(|e| e.into_inner()); // lint: allow(lock-order) — ab and ba are phase-exclusive\n    drop((g, h));\n}\n\
fn ba(s: &S) {\n    let g = s.qb.lock().unwrap_or_else(|e| e.into_inner());\n    let h = s.qa.lock().unwrap_or_else(|e| e.into_inner()); // lint: allow(lock-order) — ab and ba are phase-exclusive\n    drop((g, h));\n}";
    let out = scan_files(&[("crates/ilp/src/a.rs", src)]);
    assert!(out.report.is_clean(), "{}", out.report.render());
    assert_eq!(out.report.waived.len(), 2);
}

// ----------------------------------------------------- tick-charge (flow)

#[test]
fn tick_charge_flags_uncharged_kernel_loop() {
    let src = "fn solve(n: usize) {\n    for _ in 0..n {\n        ftran_dense();\n    }\n}\nfn ftran_dense() {}";
    let r = scan("crates/ilp/src/revised.rs", src);
    assert_eq!(rules_of(&r), [Rule::TickCharge]);
    assert_eq!(r.findings[0].line, 2, "finding sits on the loop line");
}

#[test]
fn tick_charge_exemptions_and_waiver() {
    // Charged inline.
    let inline = scan(
        "crates/ilp/src/revised.rs",
        "fn solve(n: usize, clock: &mut Clock) {\n    for _ in 0..n {\n        ftran_dense();\n        clock.charge(4);\n    }\n}\nfn ftran_dense() {}",
    );
    assert!(inline.is_clean(), "{}", inline.render());

    // Charged through a direct callee that meters work.
    let callee = scan(
        "crates/ilp/src/revised.rs",
        "fn solve(n: usize) {\n    for _ in 0..n {\n        ftran_dense();\n        note_progress();\n    }\n}\nfn ftran_dense() {}\nfn note_progress() { let work = 1; let _ = work; }",
    );
    assert!(callee.is_clean(), "{}", callee.render());

    // Outside the hot-path file set the rule does not apply.
    let outside = scan(
        "crates/ilp/src/model.rs",
        "fn solve(n: usize) {\n    for _ in 0..n {\n        ftran_dense();\n    }\n}\nfn ftran_dense() {}",
    );
    assert!(outside.is_clean(), "{}", outside.render());

    let waived = scan(
        "crates/ilp/src/revised.rs",
        "fn solve(n: usize) {\n    // lint: allow(tick-charge) — cold path: runs once per refactorisation\n    for _ in 0..n {\n        ftran_dense();\n    }\n}\nfn ftran_dense() {}",
    );
    assert!(waived.is_clean(), "{}", waived.render());
    assert_eq!(waived.waived.len(), 1);
}

#[test]
fn rule_ids_round_trip() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
        assert!(!rule.describe().is_empty());
    }
    assert_eq!(Rule::from_id("not-a-rule"), None);
}
