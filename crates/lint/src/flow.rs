//! Flow-aware scope machinery: brace-matched function and loop spans,
//! expression-level binding tracking, and the two workspace-level
//! analyses built on top — the cross-file **lock-acquisition graph**
//! (`lock-order`) and the **hot-loop tick-charge** check (`tick-charge`).
//!
//! Everything here stays name-based (no type inference), like the token
//! rules: a lock is a binding/field whose *written* type names
//! `Mutex`/`RwLock`, a kernel is a call whose name matches the
//! FTRAN/BTRAN/pivot/separation families, a charge is a call into the
//! deterministic work accounting. What the name level cannot see (guards
//! smuggled through generics, trait objects, early `drop()`s) is out of
//! scope by design; the runtime suites stay the backstop.
//!
//! ## Guard lifetimes
//!
//! The lock pass models three guard lifetimes, matching the temporary
//! rules the workspace compiles under:
//!
//! * `let g = m.lock().unwrap();` — **held to the end of the enclosing
//!   block** (the chain after the acquisition is only guard-preserving
//!   `unwrap`/`expect`/`unwrap_or_else` calls, so the binding *is* the
//!   guard).
//! * `if let … = m.lock().unwrap().pop() { … }` — scrutinee temporaries
//!   live for the whole `if`/`while`/`match` body: **held across the
//!   body**.
//! * `m.lock().unwrap().push(x);` — a plain statement temporary: held
//!   to the statement's `;` (still long enough to catch a second
//!   acquisition nested in the same expression).
//!
//! While a guard is held, every later acquisition in its span adds a
//! `held → acquired` edge, and every call resolves through the
//! workspace function map to the locks the *direct callee* touches.
//! Any cycle in the resulting graph is a deadlock the scheduler cannot
//! rule out — a [`Rule::LockOrder`](crate::Rule) finding. The acyclic
//! graph's topological order is the documented lock-order contract
//! (`croxmap-lint --lock-graph`, committed as `docs/lock_order.md`).

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// A brace-matched `fn` item.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the matching `}` (inclusive span end).
    pub body_close: usize,
}

/// A brace-matched loop body (`for` / `while` / `loop`).
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
}

/// Returns the index of the `}` matching the `{` at `open` (or the last
/// token if the file is unbalanced — spans must never run past the end).
#[must_use]
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Every `fn` item with a brace body (trait-method declarations ending
/// in `;` are skipped). Nested functions produce overlapping spans; the
/// analyses attribute their contents to both, which is conservative.
#[must_use]
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Body: the first `{` before any `;` (a `;` first means a
        // bodiless trait-method declaration).
        let mut j = i + 2;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "{" => {
                    body_open = Some(j);
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        out.push(FnSpan {
            name: name_tok.text.clone(),
            line: toks[i].line,
            body_open: open,
            body_close: match_brace(toks, open),
        });
    }
    out
}

/// Every loop body inside `[start, end]`. The loop body is the first
/// `{` after the keyword (Rust forbids brace expressions in loop
/// headers without parentheses).
#[must_use]
pub fn loop_spans(toks: &[Tok], start: usize, end: usize) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // `break 'label loop`-style uses and `for` in `impl Fn(..)`
            // bounds have no body brace before the next `;`.
            let mut j = i + 1;
            let mut body_open = None;
            while let Some(n) = toks.get(j) {
                match n.text.as_str() {
                    "{" => {
                        body_open = Some(j);
                        break;
                    }
                    ";" | "}" => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_open {
                out.push(LoopSpan {
                    line: t.line,
                    body_open: open,
                    body_close: match_brace(toks, open),
                });
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Binding tracking
// ---------------------------------------------------------------------

/// Bindings whose written type involves one of a set of tracked type
/// names — the `hash-iteration` pass's tracked-binding approach,
/// generalized so the float and lock passes share it.
#[derive(Debug, Default)]
pub struct TrackedBindings {
    /// Bindings whose type *is* a tracked type (`m: HashMap<..>`,
    /// `bound: f64`), mapped to the first declaration line.
    pub direct: BTreeMap<String, u32>,
    /// Bindings whose type *contains* a tracked type under a container
    /// (`adj: Vec<HashSet<..>>`, `deques: Vec<Mutex<..>>`).
    pub nested: BTreeMap<String, u32>,
}

impl TrackedBindings {
    /// Whether `name` is tracked at all (direct or nested).
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.direct.contains_key(name) || self.nested.contains_key(name)
    }
}

/// Collects `name: Type…` bindings (lets, struct fields, fn params,
/// struct-literal fields) and `name = Type::…` inferred bindings whose
/// head or nested type names appear in `type_names`.
#[must_use]
pub fn track_bindings(toks: &[Tok], type_names: &BTreeSet<String>) -> TrackedBindings {
    let mut tracked = TrackedBindings::default();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: <type…>` — terminated by `=`, `;`, `{`, `)`, `,` or an
        // unbalanced `>` at angle depth 0.
        let colon_type = toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text != ":")
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_none_or(|t| t.text != ":");
        if colon_type {
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut first_ident: Option<&str> = None;
            let mut any_hit = false;
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        if angle == 0 {
                            break;
                        }
                        angle -= 1;
                    }
                    "=" | ";" | "{" | "}" | ")" if angle == 0 => break,
                    "," if angle == 0 => break,
                    // Qualifiers before the head type name.
                    "mut" | "dyn" | "impl" | "ref" => {}
                    _ => {
                        if t.kind == TokKind::Ident {
                            if first_ident.is_none() {
                                first_ident = Some(&t.text);
                            }
                            if type_names.contains(&t.text) {
                                any_hit = true;
                            }
                        }
                    }
                }
                j += 1;
            }
            if let Some(first) = first_ident {
                if type_names.contains(first) {
                    tracked
                        .direct
                        .entry(toks[i].text.clone())
                        .or_insert(toks[i].line);
                } else if any_hit {
                    tracked
                        .nested
                        .entry(toks[i].text.clone())
                        .or_insert(toks[i].line);
                }
            }
        }
        // `name = Type::new()` — inferred-type bindings.
        if toks.get(i + 1).is_some_and(|t| t.text == "=")
            && toks
                .get(i + 2)
                .is_some_and(|t| type_names.contains(&t.text))
            && toks.get(i + 3).is_some_and(|t| t.text == ":")
        {
            tracked
                .direct
                .entry(toks[i].text.clone())
                .or_insert(toks[i].line);
        }
    }
    tracked
}

/// Direct calls inside `[start, end]`: an identifier followed by `(`,
/// excluding declarations (`fn name(`), macro invocations (`name!(`)
/// and control keywords. Returns `(token index, callee name, line)`.
#[must_use]
pub fn calls_in(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, String, u32)> {
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "let" | "move" | "in"
        ) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if i >= 1 && toks[i - 1].text == "fn" {
            continue;
        }
        out.push((i, t.text.clone(), t.line));
    }
    out
}

// ---------------------------------------------------------------------
// Per-file flow facts
// ---------------------------------------------------------------------

/// One lock acquisition with the span over which its guard is held.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock name (the receiver binding/field).
    pub lock: String,
    /// Token index of the `lock`/`read`/`write` call.
    pub tok: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Last token index over which the guard is considered held.
    pub span_end: usize,
}

/// Flow facts for one function body.
#[derive(Debug)]
pub struct FnFacts {
    /// Function name.
    pub name: String,
    /// Every acquisition in the body (held or temporary).
    pub acquires: Vec<Acquire>,
    /// Direct calls in the body.
    pub calls: Vec<(usize, String, u32)>,
    /// Whether the body contains a deterministic-work charge or budget
    /// check (see [`is_charge_marker`]).
    pub charges: bool,
    /// Loop bodies in the function.
    pub loops: Vec<LoopSpan>,
}

/// Flow facts for one file, as consumed by [`LockGraph::build`]:
/// `(rel_path, per-function facts, lock decls: name → (line, nested))`.
pub type FileFacts = (String, Vec<FnFacts>, BTreeMap<String, (u32, bool)>);

/// Names whose written type marks a binding as a lock.
fn lock_type_names() -> BTreeSet<String> {
    ["Mutex", "RwLock"].map(String::from).into()
}

/// Phase A: lock declarations in one file (the global lock-name set is
/// the union over all files, so a lock declared in `parallel.rs` is
/// recognised when acquired anywhere).
#[must_use]
pub fn collect_lock_decls(toks: &[Tok]) -> BTreeMap<String, (u32, bool)> {
    let tracked = track_bindings(toks, &lock_type_names());
    let mut out = BTreeMap::new();
    for (name, line) in tracked.direct {
        out.insert(name, (line, false));
    }
    for (name, line) in tracked.nested {
        out.entry(name).or_insert((line, true));
    }
    out
}

/// Deterministic-work charge / budget-check marker: the names through
/// which solver code meters or bounds work. A loop (or callee body)
/// containing any of these is considered charged.
#[must_use]
pub fn is_charge_marker(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return false;
    }
    match t.text.as_str() {
        // DeterministicClock::charge / LuFactors::take_work call sites.
        "charge" | "take_work" => toks.get(i + 1).is_some_and(|n| n.text == "("),
        // Work accounting fields and limits (`self.work += ops`,
        // `self.work >= work_limit`, `work_ticks`, `refactor_ticks`).
        "work" | "work_limit" | "work_ticks" | "refactor_ticks" => true,
        other => other.contains("budget"),
    }
}

/// Whether any token in `[start, end]` is a charge marker.
fn range_charges(toks: &[Tok], start: usize, end: usize) -> bool {
    (start..=end.min(toks.len().saturating_sub(1))).any(|i| is_charge_marker(toks, i))
}

/// Phase B: per-function flow facts for one file, given the global lock
/// name set.
#[must_use]
pub fn collect_fn_facts(toks: &[Tok], global_locks: &BTreeSet<String>) -> Vec<FnFacts> {
    let spans = fn_spans(toks);
    let mut out = Vec::with_capacity(spans.len());
    for span in &spans {
        let (start, end) = (span.body_open, span.body_close);
        let mut acquires = Vec::new();
        for i in start..=end.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !matches!(t.text.as_str(), "lock" | "read" | "write")
                || i < 2
                || toks[i - 1].text != "."
            {
                continue;
            }
            // Zero-argument call only: `RwLock::read()`/`write()` and
            // `Mutex::lock()` take no arguments; `out.write(buf)` does.
            if !(toks.get(i + 1).is_some_and(|n| n.text == "(")
                && toks.get(i + 2).is_some_and(|n| n.text == ")"))
            {
                continue;
            }
            // Receiver: the identifier before the `.`, skipping one
            // balanced `[…]` index (`deques[id].lock()`).
            let mut r = i - 2;
            if toks[r].text == "]" {
                let mut depth = 0i32;
                loop {
                    match toks[r].text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if r == 0 {
                        break;
                    }
                    r -= 1;
                }
                r = r.saturating_sub(1);
            }
            let recv = &toks[r];
            if recv.kind != TokKind::Ident || !global_locks.contains(&recv.text) {
                continue;
            }
            let span_end = guard_span_end(toks, r, i, start, end);
            acquires.push(Acquire {
                lock: recv.text.clone(),
                tok: i,
                line: t.line,
                span_end,
            });
        }
        out.push(FnFacts {
            name: span.name.clone(),
            acquires,
            calls: calls_in(toks, start, end),
            charges: range_charges(toks, start, end),
            loops: loop_spans(toks, start, end),
        });
    }
    out
}

/// Over which span is the guard acquired at token `acq` (receiver at
/// `recv`) held? See the module docs for the three lifetime shapes.
fn guard_span_end(
    toks: &[Tok],
    recv: usize,
    acq: usize,
    body_open: usize,
    body_close: usize,
) -> usize {
    // Statement start: the token after the nearest `;`/`{`/`}` before
    // the receiver.
    let mut s = recv;
    while s > body_open && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }
    let starter = toks[s].text.as_str();
    // `if let` / `while let` / `match` scrutinee: the guard temporary
    // lives for the whole construct body.
    if matches!(starter, "if" | "while" | "match") {
        let mut j = s + 1;
        while j < body_close {
            match toks[j].text.as_str() {
                "{" => {
                    if acq < j {
                        return match_brace(toks, j);
                    }
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
    }
    if starter == "let" {
        // Walk the chain after the acquisition's `()`: guard-preserving
        // unwraps keep the binding a guard; anything else consumes it.
        let mut j = acq + 3; // past `lock ( )`
        loop {
            if toks.get(j).is_some_and(|t| t.text == ".")
                && toks.get(j + 1).is_some_and(|t| {
                    matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                })
                && toks.get(j + 2).is_some_and(|t| t.text == "(")
            {
                let close = matching_paren(toks, j + 2, body_close);
                j = close + 1;
                continue;
            }
            break;
        }
        if toks.get(j).is_some_and(|t| t.text == ";") {
            // The binding *is* the guard: held to the enclosing block's
            // closing brace.
            return enclosing_block_close(toks, s, body_open, body_close);
        }
    }
    // Statement temporary: held to the statement's `;`.
    let mut j = acq;
    while j < body_close && toks[j].text != ";" {
        j += 1;
    }
    j
}

/// Index of the `)` matching the `(` at `open`, bounded by `limit`.
fn matching_paren(toks: &[Tok], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i <= limit && i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Closing brace of the innermost block containing token `at`.
fn enclosing_block_close(toks: &[Tok], at: usize, body_open: usize, body_close: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    for i in body_open..=at.min(body_close) {
        match toks[i].text.as_str() {
            "{" => stack.push(i),
            "}" => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
        .last()
        .map_or(body_close, |&open| match_brace(toks, open))
}

// ---------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------

/// One `held → acquired` edge with a witness site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held when the second acquisition happens.
    pub held: String,
    /// Lock acquired while `held` is held.
    pub acquired: String,
    /// Witness file.
    pub file: String,
    /// Witness line (the second acquisition or the call that reaches it).
    pub line: u32,
    /// `Some(callee)` when the edge goes through a direct callee.
    pub via_call: Option<String>,
}

/// The workspace lock-acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every lock: name → (declaring file, line).
    pub locks: BTreeMap<String, (String, u32)>,
    /// Acquisition-order edges.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Builds the graph from per-file facts. Direct callees are
    /// resolved by name through the workspace function map; a callee
    /// sharing the enclosing function's name is skipped (trait-impl
    /// delivery methods would otherwise read as self-deadlocks).
    #[must_use]
    pub fn build(files: &[FileFacts]) -> LockGraph {
        let mut graph = LockGraph::default();
        // fn name → union of locks its bodies acquire (collisions merge,
        // which is conservative).
        let mut fn_locks: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (path, fns, decls) in files {
            for (name, &(line, _)) in decls {
                graph
                    .locks
                    .entry(name.clone())
                    .or_insert_with(|| (path.clone(), line));
            }
            for f in fns {
                let entry = fn_locks.entry(f.name.as_str()).or_default();
                for a in &f.acquires {
                    entry.insert(a.lock.as_str());
                }
            }
        }
        for (path, fns, _) in files {
            for f in fns {
                for held in &f.acquires {
                    // Later acquisitions inside the hold span.
                    for other in &f.acquires {
                        if other.tok > held.tok && other.tok <= held.span_end {
                            graph.edges.push(LockEdge {
                                held: held.lock.clone(),
                                acquired: other.lock.clone(),
                                file: path.clone(),
                                line: other.line,
                                via_call: None,
                            });
                        }
                    }
                    // Calls inside the hold span resolve to the locks
                    // their direct callee touches.
                    for (tok, callee, line) in &f.calls {
                        if *tok <= held.tok || *tok > held.span_end || callee == &f.name {
                            continue;
                        }
                        if let Some(locks) = fn_locks.get(callee.as_str()) {
                            for l in locks {
                                graph.edges.push(LockEdge {
                                    held: held.lock.clone(),
                                    acquired: (*l).to_string(),
                                    file: path.clone(),
                                    line: *line,
                                    via_call: Some(callee.clone()),
                                });
                            }
                        }
                    }
                }
            }
        }
        graph.edges.sort_by(|a, b| {
            (&a.held, &a.acquired, &a.file, a.line).cmp(&(&b.held, &b.acquired, &b.file, b.line))
        });
        graph
            .edges
            .dedup_by(|a, b| a.held == b.held && a.acquired == b.acquired);
        graph
    }

    /// Finds a cycle, returned as the lock names along it (first ==
    /// last), or `None` when the graph is acyclic.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut nodes: BTreeSet<&str> = self.locks.keys().map(String::as_str).collect();
        for e in &self.edges {
            adj.entry(e.held.as_str())
                .or_default()
                .push(e.acquired.as_str());
            nodes.insert(e.held.as_str());
            nodes.insert(e.acquired.as_str());
        }
        // Iterative DFS with colors: 0 = unseen, 1 = on stack, 2 = done.
        let mut color: BTreeMap<&str, u8> = nodes.iter().map(|&n| (n, 0u8)).collect();
        for &start in &nodes {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            color.insert(start, 1);
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let succs = adj.get(node).map_or(&[][..], Vec::as_slice);
                if *next < succs.len() {
                    let succ = succs[*next];
                    *next += 1;
                    match color[succ] {
                        0 => {
                            color.insert(succ, 1);
                            stack.push((succ, 0));
                            path.push(succ);
                        }
                        1 => {
                            // Found: slice the path from succ onward.
                            let at = path.iter().position(|&p| p == succ).unwrap_or(0);
                            let mut cycle: Vec<String> =
                                path[at..].iter().map(|&s| s.to_string()).collect();
                            cycle.push(succ.to_string());
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// Topological order of the lock nodes (acquisition order: a lock
    /// may only be taken while holding locks strictly earlier in the
    /// list). `None` when the graph has a cycle. Ties break
    /// alphabetically so the artifact is deterministic.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<String>> {
        if self.find_cycle().is_some() {
            return None;
        }
        let mut nodes: BTreeSet<String> = self.locks.keys().cloned().collect();
        for e in &self.edges {
            nodes.insert(e.held.clone());
            nodes.insert(e.acquired.clone());
        }
        let mut indeg: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
        for e in &self.edges {
            *indeg.entry(e.acquired.as_str()).or_insert(0) += 1;
        }
        let mut order = Vec::with_capacity(nodes.len());
        let mut ready: Vec<&str> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        while let Some(&n) = ready.first() {
            ready.remove(0);
            order.push(n.to_string());
            for e in self.edges.iter().filter(|e| e.held == n) {
                let d = indeg.get_mut(e.acquired.as_str()).map(|d| {
                    *d -= 1;
                    *d
                });
                if d == Some(0) {
                    ready.push(e.acquired.as_str());
                    ready.sort_unstable();
                }
            }
        }
        Some(order)
    }

    /// Renders the committed lock-order contract: every lock with its
    /// declaration site, every edge with its witness, the proven order,
    /// and a DOT block for visualisation.
    #[must_use]
    pub fn render_contract(&self) -> String {
        let mut s = String::new();
        s.push_str("# Workspace lock-order contract\n\n");
        s.push_str(
            "Generated by `croxmap-lint --lock-graph`; regenerated and checked by\n\
             `tests/lint_clean.rs`. The lock-order pass tracks every `Mutex`/`RwLock`\n\
             guard binding, builds the cross-file acquisition graph (including through\n\
             direct callees), and fails the build on any cycle.\n\n",
        );
        s.push_str("## Locks\n\n");
        for (name, (file, line)) in &self.locks {
            s.push_str(&format!("- `{name}` — declared at {file}:{line}\n"));
        }
        s.push_str("\n## Acquisition edges (held → acquired)\n\n");
        if self.edges.is_empty() {
            s.push_str(
                "*(none — no workspace code path acquires a second lock while holding\n\
                 one; every critical section is lock-free apart from its own guard)*\n",
            );
        } else {
            for e in &self.edges {
                let via = e
                    .via_call
                    .as_deref()
                    .map_or(String::new(), |c| format!(" via `{c}()`"));
                s.push_str(&format!(
                    "- `{}` → `{}` at {}:{}{}\n",
                    e.held, e.acquired, e.file, e.line, via
                ));
            }
        }
        s.push_str("\n## Proven acquisition order\n\n");
        match self.topological_order() {
            Some(order) if order.is_empty() => s.push_str("*(no locks declared)*\n"),
            Some(order) => {
                s.push_str(
                    "A thread holding a lock may only acquire locks strictly later in\n\
                     this list:\n\n",
                );
                for (i, name) in order.iter().enumerate() {
                    s.push_str(&format!("{}. `{name}`\n", i + 1));
                }
            }
            None => s.push_str("**CYCLE — the graph is not a valid order.**\n"),
        }
        s.push_str("\n## DOT\n\n```dot\ndigraph lock_order {\n");
        for name in self.locks.keys() {
            s.push_str(&format!("    \"{name}\";\n"));
        }
        for e in &self.edges {
            s.push_str(&format!("    \"{}\" -> \"{}\";\n", e.held, e.acquired));
        }
        s.push_str("}\n```\n");
        s
    }
}

// ---------------------------------------------------------------------
// Tick-charge
// ---------------------------------------------------------------------

/// File names the tick-charge rule covers: the solver hot path, where a
/// loop driving FTRAN/BTRAN/pivot/separation kernels without charging
/// the deterministic clock would silently invalidate every
/// `PhaseBreakdown`, bench row and det-budget guarantee.
pub const TICK_CHARGE_FILES: [&str; 4] = ["revised.rs", "factor.rs", "cuts.rs", "solver.rs"];

/// Whether `rel_path` is inside the tick-charge scope.
#[must_use]
pub fn in_tick_charge_scope(rel_path: &str) -> bool {
    rel_path
        .rsplit('/')
        .next()
        .is_some_and(|f| TICK_CHARGE_FILES.contains(&f))
}

/// Whether a call name is a work kernel (FTRAN/BTRAN solve, pivot
/// selection/application, factorisation, cut separation).
#[must_use]
pub fn is_kernel_name(name: &str) -> bool {
    name.starts_with("ftran")
        || name.starts_with("btran")
        || name.starts_with("separate")
        || name.contains("pivot")
        || name == "factorize"
}

/// Tick-charge findings for one file: `(line, loop line)` pairs where a
/// loop body calls a kernel but neither the body nor any direct callee
/// charges the deterministic clock or checks a budget.
#[must_use]
pub fn uncharged_kernel_loops(
    toks: &[Tok],
    fns: &[FnFacts],
    charging_fns: &BTreeSet<String>,
) -> Vec<u32> {
    let mut out = Vec::new();
    for f in fns {
        for lp in &f.loops {
            let calls = calls_in(toks, lp.body_open, lp.body_close);
            let kernel = calls
                .iter()
                .find(|(i, name, _)| is_kernel_name(name) && !toks[*i].in_test);
            if kernel.is_none() {
                continue;
            }
            let charged_inline = range_charges(toks, lp.body_open, lp.body_close);
            let charged_via_callee = calls.iter().any(|(_, name, _)| charging_fns.contains(name));
            if !charged_inline && !charged_via_callee {
                out.push(lp.line);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}
