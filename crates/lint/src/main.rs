//! `croxmap-lint` CLI: scans the workspace and prints the findings
//! report. `--deny` exits non-zero on any unwaived finding (the CI
//! mode); `--root PATH` overrides workspace-root autodetection;
//! `--json` emits the machine-readable report (also the baseline file
//! format); `--baseline PATH` fails `--deny` only on findings not in
//! the committed baseline; `--lock-graph` prints the lock-order
//! contract artifact instead of the report.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut lock_graph = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--lock-graph" => lock_graph = true,
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("croxmap-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
            }
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("croxmap-lint: --baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                println!(
                    "usage: croxmap-lint [--deny] [--root PATH] [--json] [--baseline PATH] [--lock-graph]"
                );
                println!("  --deny        exit 1 if any unwaived finding remains (CI mode)");
                println!("  --root        workspace root (default: walk up from cwd)");
                println!("  --json        machine-readable report (the lint-baseline.json format)");
                println!("  --baseline    with --deny, fail only on findings not in this baseline");
                println!("  --lock-graph  print the lock-order contract (docs/lock_order.md)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("croxmap-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                // lint: allow(panic-path) — no cwd means nothing to scan; abort with the OS error
                panic!("croxmap-lint: cannot read current dir: {e}")
            });
            match croxmap_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("croxmap-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let out = match croxmap_lint::scan_workspace_full(&root) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("croxmap-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if lock_graph {
        print!("{}", out.lock_graph.render_contract());
        return ExitCode::SUCCESS;
    }
    if json {
        print!("{}", croxmap_lint::baseline::report_to_json(&out.report));
        return if deny && !out.report.is_clean() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let report = out.report;
    // With a baseline, only findings absent from it count against --deny.
    let denied = match baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("croxmap-lint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match croxmap_lint::baseline::Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("croxmap-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let (new, old) = base.partition(&report.findings);
            print!("{}", report.render());
            if !old.is_empty() {
                println!(
                    "{} finding(s) matched the baseline ({}) and do not fail --deny",
                    old.len(),
                    path.display()
                );
            }
            for f in &new {
                println!("NEW: {f}");
            }
            new.len()
        }
        None => {
            print!("{}", report.render());
            report.findings.len()
        }
    };
    if deny && denied > 0 {
        eprintln!("croxmap-lint: denying {denied} finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
