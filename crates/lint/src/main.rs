//! `croxmap-lint` CLI: scans the workspace and prints the findings
//! report. `--deny` exits non-zero on any unwaived finding (the CI
//! mode); `--root PATH` overrides workspace-root autodetection.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("croxmap-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                println!("usage: croxmap-lint [--deny] [--root PATH]");
                println!("  --deny   exit 1 if any unwaived finding remains (CI mode)");
                println!("  --root   workspace root (default: walk up from cwd)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("croxmap-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                // lint: allow(panic-path) — no cwd means nothing to scan; abort with the OS error
                panic!("croxmap-lint: cannot read current dir: {e}")
            });
            match croxmap_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("croxmap-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match croxmap_lint::scan_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if deny && !report.is_clean() {
                eprintln!("croxmap-lint: denying {} finding(s)", report.findings.len());
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("croxmap-lint: {e}");
            ExitCode::from(2)
        }
    }
}
