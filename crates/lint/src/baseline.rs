//! Machine-readable report output (`--json`) and the baseline diff
//! mode (`--baseline lint-baseline.json`).
//!
//! The baseline file *is* a previous `--json` output, committed at the
//! workspace root: CI fails only on findings not present in it, so a
//! rule can be introduced (or tightened) before every historical site
//! is fixed, without letting new violations ride in behind the old
//! ones. A finding matches a baseline entry on `(file, rule, snippet)`
//! — not line number, so unrelated edits shifting code around do not
//! invalidate the baseline.
//!
//! Both the writer and the reader are hand-rolled on `std` like every
//! parser in this workspace (the build image has no registry access).
//! The reader accepts general JSON syntax but only extracts the shape
//! the writer emits.

use crate::{Finding, Report};
use std::collections::BTreeMap;

/// Serialises a report to the committed JSON shape:
///
/// ```json
/// {
///   "findings": [ {"file": "...", "line": 3, "rule": "...", "snippet": "..."} ],
///   "waived": 12, "allowlisted": 34, "files": 56
/// }
/// ```
#[must_use]
pub fn report_to_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}}}",
            escape(&f.file),
            f.line,
            escape(f.rule.id()),
            escape(&f.snippet)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"waived\": {},\n  \"allowlisted\": {},\n  \"files\": {}\n}}\n",
        report.waived.len(),
        report.allowlisted.len(),
        report.files
    ));
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed baseline: a multiset of `(file, rule, snippet)` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses a baseline from a previous `--json` output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect for malformed JSON or a
    /// findings entry missing `file`/`rule`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = JsonParser::new(text).parse()?;
        let Json::Object(top) = value else {
            return Err("baseline: top level is not an object".into());
        };
        let Some(Json::Array(findings)) = top.get("findings") else {
            return Err("baseline: missing \"findings\" array".into());
        };
        let mut base = Baseline::default();
        for entry in findings {
            let Json::Object(obj) = entry else {
                return Err("baseline: findings entry is not an object".into());
            };
            let get = |key: &str| -> Result<String, String> {
                match obj.get(key) {
                    Some(Json::String(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline: findings entry missing \"{key}\"")),
                }
            };
            let key = (
                get("file")?,
                get("rule")?,
                get("snippet").unwrap_or_default(),
            );
            *base.keys.entry(key).or_insert(0) += 1;
        }
        Ok(base)
    }

    /// Splits `findings` into `(new, baselined)`: each finding consumes
    /// at most one matching baseline entry, so *additional* occurrences
    /// of a baselined pattern still count as new.
    #[must_use]
    pub fn partition<'f>(&self, findings: &'f [Finding]) -> (Vec<&'f Finding>, Vec<&'f Finding>) {
        let mut remaining = self.keys.clone();
        let mut new = Vec::new();
        let mut old = Vec::new();
        for f in findings {
            let key = (f.file.clone(), f.rule.id().to_string(), f.snippet.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    old.push(f);
                }
                _ => new.push(f),
            }
        }
        (new, old)
    }
}

/// The JSON subset the baseline reader understands.
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    /// Numbers and booleans are validated but never read — the baseline
    /// consumer only extracts strings out of the findings array.
    Number,
    Bool,
    Null,
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(format!("baseline: trailing data at byte {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool),
            Some(b'f') => self.lit("false", Json::Bool),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("baseline: unexpected byte at {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("baseline: bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| Json::Number)
            .ok_or_else(|| format!("baseline: bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    format!("baseline: bad \\u escape at byte {}", self.i)
                                })?;
                            out.push(hex);
                            self.i += 4;
                        }
                        _ => return Err(format!("baseline: bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "baseline: invalid utf-8".to_string())?;
                    let ch = rest.chars().next().unwrap_or('\u{fffd}');
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
        Err("baseline: unterminated string".into())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // {
        let mut map = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("baseline: expected `:` at byte {}", self.i));
            }
            self.i += 1;
            let v = self.value()?;
            map.insert(key, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("baseline: expected `,`/`}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("baseline: expected `,`/`]` at byte {}", self.i)),
            }
        }
    }
}
