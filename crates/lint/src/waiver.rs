//! Waiver and allowlist machinery.
//!
//! Two fix-site mechanisms suppress a finding:
//!
//! * **Inline waiver** — `// lint: allow(<rule>) — <reason>` on the
//!   finding's line (trailing comment) or on a comment-only line in the
//!   contiguous comment block directly above it. The reason is
//!   mandatory; an empty reason or an unknown rule name is itself a
//!   finding ([`Rule::MalformedWaiver`](crate::Rule)).
//! * **Allowlist** — a committed `lint.toml` at the workspace root with
//!   `[[allow]]` blocks naming a path prefix, the rules it is exempt
//!   from (or `"*"`), and a reason. Meant for whole files or crates
//!   whose *purpose* conflicts with a rule (the bench harness measures
//!   wall time; `DeterministicClock` defines the tick rate).

use crate::lexer::Comment;
use crate::Rule;
use std::collections::BTreeSet;

/// One parsed inline waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Rule it waives.
    pub rule: Rule,
    /// Mandatory justification.
    pub reason: String,
    /// Whether the comment is alone on its line (may then cover the
    /// next code line below the comment block).
    pub own_line: bool,
}

/// Result of scanning a file's comments for waivers.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Lines carrying a `lint:` marker that failed to parse, with the
    /// failure cause (reported as `malformed-waiver` findings).
    pub malformed: Vec<(u32, String)>,
}

/// Extracts every waiver from a file's comment stream.
#[must_use]
pub fn parse_waivers(comments: &[Comment]) -> WaiverSet {
    let mut set = WaiverSet::default();
    for c in comments {
        // Only a comment *starting* with `lint:` is a waiver attempt;
        // prose that merely mentions the marker (like these docs) is not.
        let Some(rest) = c.text.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            set.malformed
                .push((c.line, "expected `allow(<rule>)` after `lint:`".into()));
            continue;
        };
        let Some(close) = args.find(')') else {
            set.malformed
                .push((c.line, "unclosed `allow(` in waiver".into()));
            continue;
        };
        let rule_name = args[..close].trim();
        let Some(rule) = Rule::from_id(rule_name) else {
            set.malformed
                .push((c.line, format!("unknown rule `{rule_name}` in waiver")));
            continue;
        };
        // Reason: everything after the `)`, shorn of separator dashes.
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', '–'])
            .trim()
            .to_string();
        if reason.is_empty() {
            set.malformed.push((
                c.line,
                format!("waiver for `{rule_name}` carries no reason"),
            ));
            continue;
        }
        set.waivers.push(Waiver {
            line: c.line,
            rule,
            reason,
            own_line: c.own_line,
        });
    }
    set
}

/// Looks up a waiver covering `rule` at `line`: either a trailing
/// comment on the same line, or an own-line waiver in the contiguous
/// run of comment-only lines directly above.
#[must_use]
pub fn find_waiver<'w>(
    set: &'w WaiverSet,
    comment_lines: &BTreeSet<u32>,
    rule: Rule,
    line: u32,
) -> Option<&'w Waiver> {
    if let Some(w) = set
        .waivers
        .iter()
        .find(|w| w.rule == rule && w.line == line)
    {
        return Some(w);
    }
    // Walk up through the contiguous comment-only block above.
    let mut l = line;
    while l > 1 && comment_lines.contains(&(l - 1)) {
        l -= 1;
        if let Some(w) = set
            .waivers
            .iter()
            .find(|w| w.rule == rule && w.line == l && w.own_line)
        {
            return Some(w);
        }
    }
    None
}

/// One `[[allow]]` block of the committed allowlist.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path prefix (forward slashes).
    pub path: String,
    /// Rule ids exempted under the prefix; `"*"` exempts everything.
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed `lint.toml` allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order (order is irrelevant: any match exempts).
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Does the allowlist exempt `rule` for the file at `rel_path`?
    #[must_use]
    pub fn covers(&self, rel_path: &str, rule: Rule) -> bool {
        self.entries.iter().any(|e| {
            rel_path.starts_with(&e.path)
                && e.rules
                    .iter()
                    .any(|r| r == "*" || Rule::from_id(r) == Some(rule))
        })
    }

    /// Parses the `lint.toml` format: `[[allow]]` blocks of
    /// `key = "value"` / `key = ["a", "b"]` lines, `#` comments.
    /// Hand-rolled like every parser in this workspace (no registry
    /// access), accepting exactly the subset the committed file uses.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// that subset, an entry missing `path`/`rules`, or an empty
    /// `reason` — an allowlist exemption without a reason is as illegal
    /// as an inline waiver without one.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut cur: Option<AllowEntry> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = cur.take() {
                    entries.push(validate(e, ln)?);
                }
                cur = Some(AllowEntry {
                    path: String::new(),
                    rules: Vec::new(),
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml line {}: expected `key = value`", ln + 1));
            };
            let Some(e) = cur.as_mut() else {
                return Err(format!(
                    "lint.toml line {}: key outside an [[allow]] block",
                    ln + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "path" => e.path = parse_str(value, ln)?,
                "reason" => e.reason = parse_str(value, ln)?,
                "rules" => e.rules = parse_list(value, ln)?,
                other => {
                    return Err(format!("lint.toml line {}: unknown key `{other}`", ln + 1));
                }
            }
        }
        if let Some(e) = cur.take() {
            entries.push(validate(e, text.lines().count())?);
        }
        Ok(Allowlist { entries })
    }
}

fn validate(e: AllowEntry, ln: usize) -> Result<AllowEntry, String> {
    if e.path.is_empty() {
        return Err(format!(
            "lint.toml entry ending line {}: missing `path`",
            ln
        ));
    }
    if e.rules.is_empty() {
        return Err(format!(
            "lint.toml entry `{}`: missing `rules` (line {ln})",
            e.path
        ));
    }
    for r in &e.rules {
        if r != "*" && Rule::from_id(r).is_none() {
            return Err(format!("lint.toml entry `{}`: unknown rule `{r}`", e.path));
        }
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "lint.toml entry `{}`: every exemption needs a non-empty `reason`",
            e.path
        ));
    }
    Ok(e)
}

fn parse_str(value: &str, ln: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml line {}: expected a quoted string", ln + 1))
}

fn parse_list(value: &str, ln: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml line {}: expected `[ … ]`", ln + 1))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_str(s, ln))
        .collect()
}
