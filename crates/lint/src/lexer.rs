//! A minimal Rust lexer for rule passes: produces an identifier /
//! number / punctuation token stream with string, char and comment
//! bodies stripped, plus the comment stream (for waiver parsing) and a
//! per-line map of `#[cfg(test)]` scopes.
//!
//! This is deliberately *not* a full Rust lexer — it only has to be
//! right about the token boundaries the rule passes match on, and to
//! never report a match from inside a string literal, comment or doc
//! comment. Raw strings (`r"…"`, `r#"…"#`, byte/raw-byte variants),
//! nested block comments, escapes and lifetimes-vs-char-literals are
//! all handled; macro expansion and type inference are (intentionally)
//! not.

/// What a token is, as far as the rule passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `r#async`).
    Ident,
    /// Numeric literal (`1e9`, `1_000_000_000`, `0x1F`, `2.5`).
    Num,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// Lifetime (`'a`, `'static`); kept so token adjacency stays real.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text; for `Punct` a single character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Whether the token sits inside a `#[cfg(test)]` item or a
    /// `#[test]` function body (filled by the test-region marking pass
    /// inside [`lex`]).
    pub in_test: bool,
}

/// One comment (line or block), with its starting line. Doc comments
/// are included — they are comments to the rule passes either way.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Body text, without the `//` / `/*` markers.
    pub text: String,
    /// True for `//`-style comments that are the only thing on their
    /// line (after whitespace) — the positions a waiver may occupy
    /// besides trailing a code line.
    pub own_line: bool,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with strings/comments stripped.
    pub tokens: Vec<Tok>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments, then marks `cfg(test)` scopes.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut lexed = raw_lex(src);
    mark_test_regions(&mut lexed.tokens);
    lexed
}

fn raw_lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_code = false;
    let mut out = Lexed::default();
    let push = |out: &mut Lexed, text: String, line: u32, kind: TokKind| {
        out.tokens.push(Tok {
            text,
            line,
            kind,
            in_test: false,
        });
    };
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //! doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1u32;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: b[start..end].iter().collect(),
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }
        line_has_code = true;
        // Raw strings / raw identifiers: r"…", r#"…"#, br#"…"#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (r_at, prefix_ok) = if c == 'r' {
                (i, true)
            } else {
                // b"…" byte string, br"…" raw byte string.
                (i + 1, b[i + 1] == 'r' || b[i + 1] == '"')
            };
            if prefix_ok && c == 'b' && b[i + 1] == '"' {
                i = skip_string(&b, i + 1, &mut line);
                continue;
            }
            if prefix_ok && r_at < n && b[r_at] == 'r' {
                let mut j = r_at + 1;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw string: read until `"` + `hashes` hashes.
                    j += 1;
                    'raw: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                        } else if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                if hashes == 1 && j < n && is_ident_start(b[j]) {
                    // Raw identifier r#foo: lex as the identifier foo.
                    let (word, k) = read_ident(&b, j);
                    push(&mut out, word, line, TokKind::Ident);
                    i = k;
                    continue;
                }
            }
        }
        if c == '"' {
            i = skip_string(&b, i, &mut line);
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: skip to closing quote.
                let mut j = i + 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                i += 3; // plain char literal 'x'
                continue;
            }
            // Lifetime: 'ident.
            let (word, j) = read_ident(&b, i + 1);
            push(&mut out, format!("'{word}"), line, TokKind::Lifetime);
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let (word, j) = read_ident(&b, i);
            push(&mut out, word, line, TokKind::Ident);
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            // Numeric literal: digits, `_`, hex/alpha suffixes, a `.`
            // only when followed by a digit (so `0..n` stays three
            // tokens), and an exponent sign directly after e/E — so
            // `1_000e-6f64` and `2.5E-8` stay single tokens the
            // tolerance rules can evaluate. Radix-prefixed literals
            // (`0xE`, `0b1`, `0o7`) have no exponent: a sign after them
            // is an operator (`0xE-1` must stay three tokens).
            let radix_prefixed =
                c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'b' | 'B' | 'o' | 'O');
            let mut j = i;
            let mut text = String::new();
            while j < n {
                let d = b[j];
                let continues = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && j + 1 < n && b[j + 1].is_ascii_digit())
                    || ((d == '+' || d == '-')
                        && !radix_prefixed
                        && matches!(text.chars().last(), Some('e' | 'E'))
                        && j + 1 < n
                        && b[j + 1].is_ascii_digit());
                if !continues {
                    break;
                }
                text.push(d);
                j += 1;
            }
            push(&mut out, text, line, TokKind::Num);
            i = j;
            continue;
        }
        push(&mut out, c.to_string(), line, TokKind::Punct);
        i += 1;
    }
    out
}

/// Evaluates a [`TokKind::Num`] token's text as a *float* literal:
/// strips `_` separators and an `f32`/`f64` suffix, then parses —
/// returning `None` for integer-shaped literals (no fraction dot or
/// exponent) and for radix-prefixed ones (`0x1F`). This is what lets
/// the tolerance rules see `1_000e-6f64` and `2.5E-8` as the values
/// `1e-3` and `2.5e-8` rather than as opaque spellings.
#[must_use]
pub fn float_value(text: &str) -> Option<f64> {
    let plain: String = text.chars().filter(|&c| c != '_').collect();
    if plain.len() >= 2
        && plain.starts_with('0')
        && matches!(plain.as_bytes()[1], b'x' | b'X' | b'b' | b'B' | b'o' | b'O')
    {
        return None;
    }
    let plain = plain
        .strip_suffix("f64")
        .or_else(|| plain.strip_suffix("f32"))
        .unwrap_or(&plain);
    if !plain.contains(['.', 'e', 'E']) {
        return None;
    }
    plain.parse::<f64>().ok()
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote, counting newlines into `line`.
fn skip_string(b: &[char], at: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = at + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn read_ident(b: &[char], at: usize) -> (String, usize) {
    let mut j = at;
    let mut s = String::new();
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        s.push(b[j]);
        j += 1;
    }
    (s, j)
}

/// Marks every token inside a `#[cfg(test)]` item body or a `#[test]`
/// function body as `in_test`. The scope of a test attribute is the
/// next balanced `{ … }` block; `#[cfg(not(test))]` is explicitly *not*
/// a test scope.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut attr: Vec<usize> = Vec::new();
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => attr.push(j),
                }
                j += 1;
            }
            if attr_is_test(toks, &attr) {
                // Scope: the next balanced brace block after the
                // attribute (skipping further attributes, signatures…).
                let mut k = j + 1;
                while k < toks.len() && toks[k].text != "{" {
                    if toks[k].text == ";" {
                        break; // `#[cfg(test)] mod tests;` — no body here
                    }
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let mut bdepth = 0i32;
                    let mut e = k;
                    while e < toks.len() {
                        match toks[e].text.as_str() {
                            "{" => bdepth += 1,
                            "}" => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        e += 1;
                    }
                    let end = e.min(toks.len() - 1);
                    for t in &mut toks[k..=end] {
                        t.in_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Does an attribute token list mean "test-only code"? True for
/// `#[test]` and any `#[cfg(…)]` containing `test` *not* under `not(`.
fn attr_is_test(toks: &[Tok], attr: &[usize]) -> bool {
    for (pos, &ti) in attr.iter().enumerate() {
        if toks[ti].text == "test" && toks[ti].kind == TokKind::Ident {
            let negated =
                pos >= 2 && toks[attr[pos - 1]].text == "(" && toks[attr[pos - 2]].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::{float_value, lex, TokKind};

    /// Lexes `src` and returns the Num tokens' texts.
    fn nums(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn exponent_floats_are_single_tokens() {
        assert_eq!(nums("let a = 1e-6;"), ["1e-6"]);
        assert_eq!(nums("let a = 2.5E-8;"), ["2.5E-8"]);
        assert_eq!(nums("let a = 1e+9;"), ["1e+9"]);
    }

    #[test]
    fn underscores_and_suffixes_stay_in_the_token() {
        assert_eq!(nums("let a = 1_000e-6f64;"), ["1_000e-6f64"]);
        assert_eq!(nums("let a = 1_000_000_000u64;"), ["1_000_000_000u64"]);
        assert_eq!(nums("let a = 2.5e-8_f32;"), ["2.5e-8_f32"]);
    }

    #[test]
    fn operators_after_literals_are_not_exponents() {
        // `1e` is not followed by a digit after the sign-less `-`… the
        // minus binds as subtraction when the mantissa has no e/E tail.
        assert_eq!(nums("let a = 1 - 6;"), ["1", "6"]);
        // Hex digits end in `E` but radix-prefixed literals have no
        // exponent: `0xE-1` must stay a subtraction.
        assert_eq!(nums("let a = 0xE-1;"), ["0xE", "1"]);
        assert_eq!(nums("let r = 0..9;"), ["0", "9"]);
    }

    #[test]
    fn float_value_evaluates_spellings() {
        assert_eq!(float_value("1e-6"), Some(1e-6));
        assert_eq!(float_value("1_000e-6f64"), Some(1e-3));
        assert_eq!(float_value("2.5E-8"), Some(2.5e-8));
        assert_eq!(float_value("0.0"), Some(0.0));
        assert_eq!(float_value("1e+9"), Some(1e9));
        // Integer-shaped and radix literals are not float literals.
        assert_eq!(float_value("42"), None);
        assert_eq!(float_value("1_000u64"), None);
        assert_eq!(float_value("0x1F"), None);
    }
}
