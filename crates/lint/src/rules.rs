//! The rule passes: each walks a file's token stream (strings and
//! comments already stripped by [`crate::lexer`]) and reports raw
//! `(rule, line)` findings, before waivers and the allowlist are
//! applied.
//!
//! The passes are *name-based* static analysis — no type inference.
//! `use`-alias tracking resolves renamed imports (`use std::time::Instant
//! as Clock`), and hash-container bindings are tracked through `let`
//! bindings, struct fields and function parameters whose written type
//! names a hash container. Anything the name-level analysis cannot see
//! (a `&HashMap` passed through a generic, a trait object) is out of
//! scope by design: the runtime determinism suites remain the backstop,
//! this pass catches the overwhelmingly common spellings before review.

use crate::flow;
use crate::lexer::{self, Tok, TokKind};
use crate::Rule;
use std::collections::BTreeSet;

/// Per-file context the passes need.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Under a `tests/`, `benches/` or `examples/` directory — whole
    /// file is test/demo context.
    pub is_test_file: bool,
    /// `src/lib.rs` or `src/main.rs` — must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Import aliases resolved from `use` statements, plus the built-in
/// names each rule matches.
struct Aliases {
    /// Names meaning `std::time::Instant` / `SystemTime`.
    time: BTreeSet<String>,
    /// Names meaning entropy-seeded randomness.
    rng: BTreeSet<String>,
    /// Names meaning `std::collections::HashMap` / `HashSet`.
    hash: BTreeSet<String>,
}

/// Iterator-producing methods banned on hash containers. Keyed lookups
/// (`get`, `contains`, `insert`, `remove`, `entry`, `len`, `is_empty`,
/// `clear`) stay legal: only *order-exposing* traversal is the hazard.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Runs every token-level rule over one file.
#[must_use]
pub fn run(toks: &[Tok], ctx: &FileCtx<'_>) -> Vec<(Rule, u32)> {
    let mut out: Vec<(Rule, u32)> = Vec::new();
    let aliases = resolve_aliases(toks);
    if !ctx.is_test_file {
        determinism_names(toks, &aliases, &mut out);
        hash_iteration(toks, &aliases, &mut out);
        relaxed_ordering(toks, &mut out);
        thread_spawn(toks, &mut out);
        panic_path(toks, &mut out);
        ticks_arithmetic(toks, &mut out);
        float_equality(toks, &mut out);
        tolerance_drift(toks, &mut out);
    }
    if ctx.is_crate_root {
        forbid_unsafe(toks, &mut out);
    }
    out.sort_by_key(|&(r, l)| (l, r.id()));
    out.dedup();
    out
}

/// Resolves `use` statements into the alias sets. Handles nested
/// groups (`use std::collections::{HashMap, HashSet};`), renames
/// (`as`), and ignores globs.
fn resolve_aliases(toks: &[Tok]) -> Aliases {
    let mut bindings: Vec<(String, String)> = Vec::new(); // (full path, local name)
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            i = parse_use_tree(toks, i + 1, &mut Vec::new(), &mut bindings);
        } else {
            i += 1;
        }
    }
    let mut aliases = Aliases {
        time: ["Instant", "SystemTime"].map(String::from).into(),
        rng: ["thread_rng", "from_entropy", "ThreadRng"]
            .map(String::from)
            .into(),
        hash: ["HashMap", "HashSet"].map(String::from).into(),
    };
    for (path, name) in bindings {
        if path.ends_with("time::Instant") || path.ends_with("time::SystemTime") {
            aliases.time.insert(name);
        } else if path.ends_with("::thread_rng") || path.ends_with("::ThreadRng") {
            aliases.rng.insert(name);
        } else if path.ends_with("collections::HashMap") || path.ends_with("collections::HashSet") {
            aliases.hash.insert(name);
        }
    }
    aliases
}

/// Parses one use-tree starting at `i` (after `use` or a group comma),
/// appending `(full_path, bound_name)` pairs; returns the index past
/// the tree's end.
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<(String, String)>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "as") => {
                // `path as name`: rebind the just-pushed segment chain.
                if let Some(alias) = toks.get(i + 1) {
                    out.push((prefix.join("::"), alias.text.clone()));
                }
                prefix.truncate(depth_at_entry);
                i += 2;
            }
            (TokKind::Ident, _) => {
                prefix.push(t.text.clone());
                // Leaf unless followed by `::`.
                let is_path_sep = toks.get(i + 1).is_some_and(|n| n.text == ":")
                    && toks.get(i + 2).is_some_and(|n| n.text == ":");
                if is_path_sep {
                    i += 3;
                } else if toks.get(i + 1).is_some_and(|n| n.text == "as") {
                    i += 1; // handled by the `as` arm next iteration
                } else {
                    out.push((prefix.join("::"), t.text.clone()));
                    prefix.truncate(depth_at_entry);
                    i += 1;
                }
            }
            (_, "{") => {
                i += 1;
                loop {
                    i = parse_use_tree(toks, i, prefix, out);
                    match toks.get(i).map(|t| t.text.as_str()) {
                        Some(",") => i += 1,
                        Some("}") => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(depth_at_entry);
            }
            (_, "*") => i += 1,
            _ => {
                // `;`, `,`, `}` — end of this tree.
                prefix.truncate(depth_at_entry);
                return i;
            }
        }
        // After a leaf or group we are done unless a separator keeps us
        // inside (handled by the group loop / caller).
        if matches!(
            toks.get(i).map(|t| t.text.as_str()),
            Some(";" | "," | "}") | None
        ) {
            prefix.truncate(depth_at_entry);
            return i;
        }
    }
    i
}

/// `determinism-time` / `determinism-rng`: wall-clock types and
/// entropy-seeded RNG constructors are banned outright — solver results
/// must be functions of (model, config, seed) alone.
fn determinism_names(toks: &[Tok], aliases: &Aliases, out: &mut Vec<(Rule, u32)>) {
    for t in toks.iter().filter(|t| !t.in_test) {
        if t.kind != TokKind::Ident {
            continue;
        }
        if aliases.time.contains(&t.text) {
            out.push((Rule::DeterminismTime, t.line));
        }
        if aliases.rng.contains(&t.text) {
            out.push((Rule::DeterminismRng, t.line));
        }
    }
}

/// `hash-iteration`: iterating a `HashMap`/`HashSet` observes the
/// hasher's bucket order — nondeterministic across std versions and, if
/// anyone ever swaps the hasher, across runs. Keyed lookups stay legal;
/// traversal must go through a sorted structure instead.
fn hash_iteration(toks: &[Tok], aliases: &Aliases, out: &mut Vec<(Rule, u32)>) {
    // Bindings whose written type *is* a hash container (`direct`), or a
    // container *of* hash containers (`nested` — flag indexed traversal).
    // The tracking itself lives in [`flow::track_bindings`], shared with
    // the float and lock passes.
    let tracked = flow::track_bindings(toks, &aliases.hash);
    let direct = &tracked.direct;
    let nested = &tracked.nested;
    if direct.is_empty() && nested.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if direct.contains_key(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == ".")
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.text == "(")
        {
            out.push((Rule::HashIteration, t.line));
        }
        // `nested[idx].iter()` — indexing into a Vec of hash sets.
        if nested.contains_key(&t.text) && toks.get(i + 1).is_some_and(|n| n.text == "[") {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(n) = toks.get(j) {
                match n.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if toks.get(j + 1).is_some_and(|n| n.text == ".")
                && toks
                    .get(j + 2)
                    .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
                && toks.get(j + 3).is_some_and(|n| n.text == "(")
            {
                out.push((Rule::HashIteration, t.line));
            }
        }
        // `for … in [&][mut] name {` — direct for-loop traversal.
        if t.text == "for" {
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != "in" && toks[j].text != "{" {
                j += 1;
            }
            if toks.get(j).is_some_and(|n| n.text == "in") {
                let mut expr: Vec<&Tok> = Vec::new();
                let mut k = j + 1;
                while let Some(n) = toks.get(k) {
                    if n.text == "{" {
                        break;
                    }
                    expr.push(n);
                    k += 1;
                }
                let names: Vec<&str> = expr
                    .iter()
                    .filter(|n| !matches!(n.text.as_str(), "&" | "mut"))
                    .map(|n| n.text.as_str())
                    .collect();
                if let [name] = names.as_slice() {
                    if direct.contains_key(*name) {
                        out.push((Rule::HashIteration, toks[j].line));
                    }
                }
            }
        }
    }
}

/// `relaxed-ordering`: every `Ordering::Relaxed` use must carry a
/// waiver explaining why the weakest ordering is sound at that site
/// (monotone counter, happens-before provided elsewhere, …).
/// Conservative by construction: the analysis cannot tell which loads
/// feed control flow, so all of them justify themselves.
fn relaxed_ordering(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || t.text != "Relaxed" {
            continue;
        }
        // Only as a path segment (`…::Relaxed`) — a local identifier
        // named `Relaxed` alone is not an atomic ordering.
        let path_prefixed = i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":";
        if path_prefixed {
            out.push((Rule::RelaxedOrdering, t.line));
        }
    }
}

/// `thread-spawn`: thread creation lives in `parallel.rs` (allowlisted
/// there); anywhere else it needs a waiver — ad-hoc threads bypass the
/// deterministic scheduling and clock-aggregation machinery.
fn thread_spawn(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if toks[i].text == "thread"
            && toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.text == "spawn" || t.text == "scope")
        {
            out.push((Rule::ThreadSpawn, toks[i + 3].line));
        }
    }
}

/// `panic-path`: `unwrap()`/`expect()` in library code needs a waiver
/// stating the invariant that makes it unreachable (or should become a
/// real error path). `unwrap_or*` / `expect_err` etc. do not match.
fn panic_path(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            out.push((Rule::PanicPath, t.line));
        }
    }
}

/// `ticks-arithmetic`: the tick↔second exchange rate is defined once in
/// `DeterministicClock` (`TICKS_PER_SECOND`, `ticks_to_seconds`,
/// `seconds_to_ticks`). Hand-rolled `1e9` conversions drift when the
/// rate changes; the literal is banned outside `clock.rs`.
fn ticks_arithmetic(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    for t in toks.iter().filter(|t| !t.in_test) {
        if t.kind != TokKind::Num {
            continue;
        }
        let mut plain: String = t.text.chars().filter(|&c| c != '_').collect();
        // A type suffix (`1_000_000_000u64`) must not hide the literal.
        for suffix in [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
            "f32", "f64",
        ] {
            if let Some(stripped) = plain.strip_suffix(suffix) {
                plain = stripped.to_string();
                break;
            }
        }
        if matches!(
            plain.as_str(),
            "1e9" | "1E9" | "1e+9" | "1000000000" | "1000000000.0"
        ) {
            out.push((Rule::TicksArithmetic, t.line));
        }
    }
}

/// What an `==`/`!=` operand is, as far as `float-equality` cares.
#[derive(PartialEq)]
enum Operand {
    /// A float literal with value exactly zero — the idiomatic
    /// structural-zero check on sparse data; exempts the comparison.
    ZeroLit,
    /// An `INFINITY`/`NEG_INFINITY` path — the exact sentinel for "no
    /// bound"; equality against it is intentional, exempts likewise.
    Sentinel,
    /// A non-zero float literal.
    FloatLit,
    /// An identifier (or field/index chain ending in one) whose written
    /// type is `f32`/`f64`.
    FloatIdent,
    /// Anything the name-level analysis cannot type.
    Unknown,
}

/// Classifies the operand ending at `toks[end]` (the token directly
/// before the operator). Walks back over one balanced `[…]` index.
fn classify_left(toks: &[Tok], end: usize, floats: &flow::TrackedBindings) -> Operand {
    let mut e = end;
    let mut indexed = false;
    if toks[e].text == "]" {
        let mut depth = 0i32;
        loop {
            match toks[e].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if e == 0 {
                return Operand::Unknown;
            }
            e -= 1;
        }
        if e == 0 {
            return Operand::Unknown;
        }
        e -= 1;
        indexed = true;
    }
    let t = &toks[e];
    match t.kind {
        TokKind::Num => match lexer::float_value(&t.text) {
            Some(0.0) => Operand::ZeroLit,
            Some(_) => Operand::FloatLit,
            None => Operand::Unknown,
        },
        TokKind::Ident if is_infinity_path(&t.text) => Operand::Sentinel,
        TokKind::Ident if indexed && floats.contains(&t.text) => Operand::FloatIdent,
        TokKind::Ident if !indexed && floats.direct.contains_key(&t.text) => Operand::FloatIdent,
        _ => Operand::Unknown,
    }
}

/// `INFINITY`/`NEG_INFINITY` — the last segment of `f64::INFINITY` etc.
fn is_infinity_path(text: &str) -> bool {
    matches!(text, "INFINITY" | "NEG_INFINITY")
}

/// Classifies the operand starting at `toks[start]` (directly after the
/// operator): skips unary `-`/`&`, follows a `.`-chain to its last
/// identifier (a trailing `(` makes it a call — untyped).
fn classify_right(toks: &[Tok], mut start: usize, floats: &flow::TrackedBindings) -> Operand {
    while toks
        .get(start)
        .is_some_and(|t| t.text == "-" || t.text == "&")
    {
        start += 1;
    }
    let Some(t) = toks.get(start) else {
        return Operand::Unknown;
    };
    match t.kind {
        TokKind::Num => match lexer::float_value(&t.text) {
            Some(0.0) => Operand::ZeroLit,
            Some(_) => Operand::FloatLit,
            None => Operand::Unknown,
        },
        TokKind::Ident => {
            // Follow `a.b.c` / `f64::INFINITY` / `a.b[i].c` to the last
            // segment, skipping balanced `[…]` index expressions.
            let mut last = start;
            let mut j = start + 1;
            let mut indexed = false;
            loop {
                if toks.get(j).is_some_and(|n| n.text == ".")
                    && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    last = j + 1;
                    j += 2;
                } else if toks.get(j).is_some_and(|n| n.text == ":")
                    && toks.get(j + 1).is_some_and(|n| n.text == ":")
                    && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    last = j + 2;
                    j += 3;
                } else if toks.get(j).is_some_and(|n| n.text == "[") {
                    let mut depth = 0i32;
                    while let Some(n) = toks.get(j) {
                        match n.text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                    indexed = true;
                } else {
                    break;
                }
            }
            if is_infinity_path(&toks[last].text) {
                return Operand::Sentinel;
            }
            match toks.get(j).map(|n| n.text.as_str()) {
                Some("(") => Operand::Unknown, // method/function call
                _ if indexed && floats.contains(&toks[last].text) => Operand::FloatIdent,
                _ if !indexed && floats.direct.contains_key(&toks[last].text) => {
                    Operand::FloatIdent
                }
                _ => Operand::Unknown,
            }
        }
        _ => Operand::Unknown,
    }
}

/// `float-equality`: `==`/`!=` where either side is a non-zero float
/// literal or an f32/f64-typed binding — and NaN-unaware comparator
/// chains (`partial_cmp(..).unwrap()` and friends). Bitwise equality on
/// floats conflates "same value" with "same rounding history", and a
/// single NaN makes `partial_cmp` panic or silently collapse an order;
/// `total_cmp` / `to_bits` state the intent. Comparisons against a
/// *zero* literal are exempt — `x == 0.0` is the structural-zero test
/// the sparse kernels are built on — as are comparisons against the
/// `±INFINITY` no-bound sentinel, which is exact by construction.
fn float_equality(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    let floats = flow::track_bindings(toks, &["f32", "f64"].map(String::from).into());
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        // `partial_cmp(…).unwrap()` — NaN panics; `.unwrap_or(Equal)`
        // — NaN silently compares equal to everything, corrupting sorts.
        if t.text == "partial_cmp"
            && t.kind == TokKind::Ident
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            let close = matching_paren_at(toks, i + 1);
            if toks.get(close + 1).is_some_and(|n| n.text == ".")
                && toks.get(close + 2).is_some_and(|n| {
                    matches!(
                        n.text.as_str(),
                        "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
                    )
                })
            {
                out.push((Rule::FloatEquality, t.line));
            }
        }
        // `==` (at the first `=`) and `!=`.
        let is_eq = t.text == "="
            && toks.get(i + 1).is_some_and(|n| n.text == "=")
            && toks.get(i + 2).is_some_and(|n| n.text != "=")
            && i >= 1
            && !matches!(toks[i - 1].text.as_str(), "=" | "!" | "<" | ">");
        let is_ne = t.text == "!"
            && toks.get(i + 1).is_some_and(|n| n.text == "=")
            && toks.get(i + 2).is_some_and(|n| n.text != "=");
        if (is_eq || is_ne) && i >= 1 {
            let left = classify_left(toks, i - 1, &floats);
            let right = classify_right(toks, i + 2, &floats);
            let exempt = matches!(left, Operand::ZeroLit | Operand::Sentinel)
                || matches!(right, Operand::ZeroLit | Operand::Sentinel);
            let floaty = matches!(left, Operand::FloatLit | Operand::FloatIdent)
                || matches!(right, Operand::FloatLit | Operand::FloatIdent);
            if floaty && !exempt {
                out.push((Rule::FloatEquality, t.line));
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open` (saturating).
fn matching_paren_at(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// `tolerance-drift`: any float literal whose magnitude sits in the
/// tolerance band (`1e-12 ≤ |v| < 1e-3`) outside `croxmap_ilp::tol` is
/// an unnamed tolerance. PR 5 had to reconcile a 1e-7 vs 1e-6 mismatch
/// between two modules by hand; naming every tolerance once makes that
/// class of drift unrepresentable. The band is evaluated by *value*, so
/// `1_000e-6f64` (= 1e-3) is legal and `2.5E-8` is not.
fn tolerance_drift(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    for t in toks.iter().filter(|t| !t.in_test) {
        if t.kind != TokKind::Num {
            continue;
        }
        let Some(v) = lexer::float_value(&t.text) else {
            continue;
        };
        // lint: allow(tolerance-drift) — the band definition itself
        if (1e-12..1e-3).contains(&v.abs()) {
            out.push((Rule::ToleranceDrift, t.line));
        }
    }
}

/// `forbid-unsafe`: every crate root carries `#![forbid(unsafe_code)]`.
fn forbid_unsafe(toks: &[Tok], out: &mut Vec<(Rule, u32)>) {
    let want = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = toks
        .windows(want.len())
        .any(|w| w.iter().zip(want.iter()).all(|(t, s)| t.text == *s));
    if !found {
        out.push((Rule::ForbidUnsafe, 1));
    }
}
