//! # croxmap-lint — workspace determinism & concurrency static analysis
//!
//! The stack's cardinal guarantee — bit-identical results at
//! `threads = 1`, byte-identical deterministic-mode traces, seed-derived
//! randomness everywhere — was protected only by runtime pinning tests,
//! which catch a violation *after* someone introduces one, and only on a
//! workload that happens to exercise it. This crate turns the
//! determinism discipline into machine-checked rules that run over the
//! whole workspace source in tier-1 (`tests/lint_clean.rs`) and CI
//! (`cargo run -p croxmap-lint -- --deny`).
//!
//! Like `crates/compat` and the trace toolchain, everything here is
//! hand-rolled on `std` (the build image has no registry access): a
//! real lexer ([`lexer`]) strips comments, strings and doc comments,
//! resolves `use` aliases and `#[cfg(test)]` scopes, and the rule
//! passes ([`rules`]) walk the token stream per file.
//!
//! ## Rules
//!
//! | id | what it catches |
//! |----|-----------------|
//! | `determinism-time` | `std::time::Instant` / `SystemTime` (wall clock) in solver code |
//! | `determinism-rng` | `thread_rng` / `from_entropy` (entropy-seeded randomness) |
//! | `hash-iteration` | iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`, `for … in &map`) — keyed lookups stay legal |
//! | `relaxed-ordering` | any `Ordering::Relaxed` atomic access — must justify why relaxed is sound |
//! | `thread-spawn` | `thread::spawn` / `thread::scope` outside `parallel.rs` |
//! | `panic-path` | `unwrap()` / `expect()` in library (non-test) code |
//! | `ticks-arithmetic` | hand-rolled `1e9` / `1_000_000_000` tick↔second conversion outside `DeterministicClock` |
//! | `forbid-unsafe` | crate root missing `#![forbid(unsafe_code)]` |
//! | `malformed-waiver` | a `lint:` marker that fails to parse, names an unknown rule, or carries no reason |
//!
//! ## Waivers
//!
//! A finding is suppressed by an inline waiver on the same line or in
//! the comment block directly above —
//!
//! ```text
//! // lint: allow(panic-path) — mutex poisoning propagates the panic
//! ```
//!
//! — or by a `[[allow]]` entry in the committed `lint.toml` for whole
//! files/crates whose purpose conflicts with a rule. Both mechanisms
//! require a non-empty reason; an empty one is itself a finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod waiver;

use rules::FileCtx;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use waiver::{find_waiver, parse_waivers, Allowlist};

/// Every rule the pass enforces. Ids are the names used in waivers and
/// `lint.toml`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock types (`Instant`, `SystemTime`) in solver code.
    DeterminismTime,
    /// Entropy-seeded randomness (`thread_rng`, `from_entropy`).
    DeterminismRng,
    /// Iteration over `HashMap`/`HashSet` contents.
    HashIteration,
    /// `Ordering::Relaxed` atomic access without justification.
    RelaxedOrdering,
    /// Thread creation outside the sanctioned `parallel.rs`.
    ThreadSpawn,
    /// `unwrap()`/`expect()` in library code.
    PanicPath,
    /// Hand-rolled tick↔second arithmetic outside `DeterministicClock`.
    TicksArithmetic,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A `lint:` waiver that does not parse or has no reason.
    MalformedWaiver,
}

impl Rule {
    /// All enforceable rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::DeterminismTime,
        Rule::DeterminismRng,
        Rule::HashIteration,
        Rule::RelaxedOrdering,
        Rule::ThreadSpawn,
        Rule::PanicPath,
        Rule::TicksArithmetic,
        Rule::ForbidUnsafe,
        Rule::MalformedWaiver,
    ];

    /// The kebab-case id used in waivers, `lint.toml` and reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::DeterminismTime => "determinism-time",
            Rule::DeterminismRng => "determinism-rng",
            Rule::HashIteration => "hash-iteration",
            Rule::RelaxedOrdering => "relaxed-ordering",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::PanicPath => "panic-path",
            Rule::TicksArithmetic => "ticks-arithmetic",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::MalformedWaiver => "malformed-waiver",
        }
    }

    /// Resolves an id back to the rule.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line description for reports.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Rule::DeterminismTime => {
                "wall-clock time in solver code; results must depend on (model, config, seed) only"
            }
            Rule::DeterminismRng => {
                "entropy-seeded randomness; derive every RNG stream from the solver seed"
            }
            Rule::HashIteration => {
                "iteration order of a hash container is not deterministic; traverse a sorted structure instead"
            }
            Rule::RelaxedOrdering => {
                "Relaxed atomic access must justify why no happens-before edge is needed"
            }
            Rule::ThreadSpawn => {
                "thread creation outside parallel.rs bypasses deterministic scheduling and clock aggregation"
            }
            Rule::PanicPath => {
                "library unwrap()/expect() must state its invariant or become an error path"
            }
            Rule::TicksArithmetic => {
                "tick<->second conversion is defined once in DeterministicClock; use ticks_to_seconds/seconds_to_ticks"
            }
            Rule::ForbidUnsafe => "crate roots must carry #![forbid(unsafe_code)]",
            Rule::MalformedWaiver => "waiver does not parse, names an unknown rule, or has no reason",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One unwaived finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// Scan result for one file or a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings neither waived nor allowlisted — these fail `--deny`.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline waiver, with the reason.
    pub waived: Vec<(Finding, String)>,
    /// Findings suppressed by the `lint.toml` allowlist.
    pub allowlisted: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// Whether the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings report: `file:line [rule] snippet` plus the
    /// waiver hint per finding, then a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!("{f}\n"));
            s.push_str(&format!("    {}\n", f.rule.describe()));
            if f.rule != Rule::MalformedWaiver && f.rule != Rule::ForbidUnsafe {
                s.push_str(&format!(
                    "    waive with: // lint: allow({}) — <reason>\n",
                    f.rule.id()
                ));
            }
        }
        s.push_str(&format!(
            "{} finding(s), {} waived, {} allowlisted, {} files scanned\n",
            self.findings.len(),
            self.waived.len(),
            self.allowlisted,
            self.files
        ));
        s
    }

    fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.waived.extend(other.waived);
        self.allowlisted += other.allowlisted;
        self.files += other.files;
    }
}

/// Classifies and scans one file's source text against `allowlist`.
/// `rel_path` must use forward slashes. This is the unit the fixture
/// tests drive directly.
#[must_use]
pub fn scan_source(rel_path: &str, text: &str, allowlist: &Allowlist) -> Report {
    let lexed = lexer::lex(text);
    let ctx = FileCtx {
        rel_path,
        is_test_file: rel_path
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "fixtures")),
        is_crate_root: rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs"),
    };
    let mut raw = rules::run(&lexed.tokens, &ctx);
    let wset = parse_waivers(&lexed.comments);
    for &(line, _) in &wset.malformed {
        raw.push((Rule::MalformedWaiver, line));
    }
    let comment_lines: BTreeSet<u32> = lexed
        .comments
        .iter()
        .filter(|c| c.own_line)
        .map(|c| c.line)
        .collect();
    let lines: Vec<&str> = text.lines().collect();
    let mut report = Report {
        files: 1,
        ..Report::default()
    };
    for (rule, line) in raw {
        if allowlist.covers(rel_path, rule) {
            report.allowlisted += 1;
            continue;
        }
        let finding = Finding {
            file: rel_path.to_string(),
            line,
            rule,
            snippet: lines
                .get(line as usize - 1)
                .map_or(String::new(), |l| l.trim().to_string()),
        };
        // Malformed waivers cannot themselves be waived — fix the waiver.
        if rule != Rule::MalformedWaiver {
            if let Some(w) = find_waiver(&wset, &comment_lines, rule, line) {
                report.waived.push((finding, w.reason.clone()));
                continue;
            }
        }
        report.findings.push(finding);
    }
    report
}

/// Scans every `.rs` file under `root` (skipping `target/` and hidden
/// directories) against the root's `lint.toml` allowlist.
///
/// # Errors
///
/// Returns a message if `lint.toml` fails to parse or the tree cannot
/// be read.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let allowlist = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let mut files: Vec<PathBuf> = Vec::new();
    walk(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let mut report = Report::default();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        report.merge(scan_source(&rel, &text, &allowlist));
    }
    Ok(report)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if std::path::Path::new(&name)
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("rs"))
        {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory holding a `lint.toml` or a `Cargo.toml` with a
/// `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
